#!/usr/bin/env python3
"""Diff and trend EclipseMR bench JSON results across commits.

The bench harnesses (``benchmarks/test_cluster_dataplane.py``) write
their numbers to a committed JSON file (``BENCH_cluster_dataplane.json``)
so performance travels with history.  This tool compares two snapshots of
that file -- working tree vs a git rev, rev vs rev, or file vs file --
and prints a per-metric delta table, plus an optional sparkline trend
over the file's commit history.

Typical uses::

    # fresh bench run vs what is committed at HEAD
    python tools/bench_diff.py BENCH_cluster_dataplane.json

    # one rev against another
    python tools/bench_diff.py --base v1.0 --new HEAD BENCH_cluster_dataplane.json

    # trend of every metric over the last 8 commits touching the file
    python tools/bench_diff.py --history 8 BENCH_cluster_dataplane.json

Exit status is 0 unless ``--max-regression PCT`` is given, in which case
any metric that *worsened* by more than PCT percent makes it 1 (crashes
and unreadable inputs are 2).  Direction is inferred from the metric
name: latencies/durations are better lower, everything else better
higher.  Standard library only; CI runs it as a non-blocking step.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Iterable, Optional

SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def flatten(tree: dict[str, Any], prefix: str = "") -> dict[str, float]:
    """Nested dicts of scalars -> one flat ``{"a.b.c": value}`` mapping.

    Only real numbers survive (bools and strings are bench metadata such
    as ``quick``, not metrics)."""
    out: dict[str, float] = {}
    for key, value in tree.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{dotted}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[dotted] = float(value)
    return out


def lower_is_better(metric: str) -> bool:
    """Direction heuristic from the metric's leaf name.

    Rates (``*_per_s``, ``*_mb_s``, speedups, ratios), cache hit rates,
    achieved reductions, and speculation wins (a backup copy beating the
    straggler) are better higher; latencies, percentiles, durations
    (``*_s``/``*_ms``/``*_us``), shuffle/wire byte volumes, and recovery
    costs (work redone or recopied after a failure, retry and failure
    counts, overhead ratios) are better lower, as are membership handoff
    volumes, join disruption, and straggler-defense churn (copies
    speculated, losing copies, quarantine trips and reroutes).  Anything
    else defaults to higher-is-better."""
    leaf = metric.rsplit(".", 1)[-1]
    if ("per_s" in leaf or leaf.endswith("_mb_s") or "speedup" in leaf
            or "_vs_" in leaf or "hit_rate" in leaf or "hit_ratio" in leaf
            or "reduction" in leaf or "speculation_wins" in leaf):
        return False
    if any(frag in leaf for frag in ("latency", "seek", "wall_clock",
                                     "p50", "p90", "p99",
                                     "reexecuted", "rereplicated", "recopied",
                                     "overhead", "retries", "failures",
                                     "makespan", "spread", "wait",
                                     "rejected",
                                     "wire_bytes", "bytes_shuffled",
                                     "evictions",
                                     "handed_off", "handoff_batches",
                                     "disruption",
                                     "speculated", "speculation_losses",
                                     "quarantine")):
        return True
    return leaf.endswith(("_s", "_ms", "_us"))


def load_json(source: str, path: str, repo: Optional[Path] = None) -> dict[str, Any]:
    """Read the bench JSON from a source: ``WORKTREE`` (the file on disk),
    a git rev (via ``git show rev:path``), or a plain file path."""
    if source == "WORKTREE":
        return json.loads(Path(path).read_text())
    candidate = Path(source)
    if candidate.is_file():
        return json.loads(candidate.read_text())
    return json.loads(git_show(source, path, repo))


def git_show(rev: str, path: str, repo: Optional[Path] = None) -> str:
    try:
        return subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            cwd=repo, check=True, capture_output=True, text=True,
        ).stdout
    except subprocess.CalledProcessError as exc:
        raise FileNotFoundError(
            f"cannot read {path!r} at rev {rev!r}: {exc.stderr.strip()}"
        ) from exc


def revs_touching(path: str, limit: int, repo: Optional[Path] = None) -> list[str]:
    """Newest-first commits that touched ``path``."""
    out = subprocess.run(
        ["git", "log", "-n", str(limit), "--format=%h", "--", path],
        cwd=repo, check=True, capture_output=True, text=True,
    ).stdout.split()
    return out


def diff_metrics(base: dict[str, float], new: dict[str, float]) -> list[dict[str, Any]]:
    """Per-metric rows for every key present on either side."""
    rows = []
    for metric in sorted(set(base) | set(new)):
        b, n = base.get(metric), new.get(metric)
        row: dict[str, Any] = {"metric": metric, "base": b, "new": n,
                               "pct": None, "verdict": ""}
        if b is None:
            row["verdict"] = "added"
        elif n is None:
            row["verdict"] = "removed"
        elif b == 0:
            row["verdict"] = "flat" if n == 0 else "added"
        else:
            pct = (n - b) / abs(b) * 100.0
            row["pct"] = pct
            if abs(pct) < 1e-9:
                row["verdict"] = "flat"
            else:
                improved = (pct < 0) if lower_is_better(metric) else (pct > 0)
                row["verdict"] = "better" if improved else "worse"
        rows.append(row)
    return rows


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_table(rows: Iterable[dict[str, Any]]) -> str:
    table = [("metric", "base", "new", "delta", "")]
    for row in rows:
        pct = "" if row["pct"] is None else f"{row['pct']:+.1f}%"
        table.append((row["metric"], _fmt(row["base"]), _fmt(row["new"]),
                      pct, row["verdict"]))
    widths = [max(len(r[i]) for r in table) for i in range(5)]
    lines = []
    for i, r in enumerate(table):
        lines.append("  ".join(col.ljust(w) for col, w in zip(r, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def sparkline(values: list[Optional[float]]) -> str:
    """Oldest-to-newest trend as unicode block characters (``.`` = absent)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append(".")
        elif span == 0:
            out.append(SPARK_BLOCKS[0])
        else:
            idx = int((v - lo) / span * (len(SPARK_BLOCKS) - 1))
            out.append(SPARK_BLOCKS[idx])
    return "".join(out)


def render_history(path: str, limit: int, repo: Optional[Path] = None) -> str:
    revs = revs_touching(path, limit, repo)
    if not revs:
        return f"no commits touch {path!r}"
    snapshots: list[tuple[str, dict[str, float]]] = []
    for rev in reversed(revs):  # oldest first
        try:
            snapshots.append((rev, flatten(json.loads(git_show(rev, path, repo)))))
        except (FileNotFoundError, json.JSONDecodeError):
            snapshots.append((rev, {}))
    metrics = sorted({m for _, snap in snapshots for m in snap})
    width = max((len(m) for m in metrics), default=0)
    lines = [f"{path}: {len(snapshots)} commits, oldest -> newest "
             f"({snapshots[0][0]} .. {snapshots[-1][0]})"]
    for metric in metrics:
        series = [snap.get(metric) for _, snap in snapshots]
        latest = next((v for v in reversed(series) if v is not None), None)
        lines.append(f"{metric.ljust(width)}  {sparkline(series)}  "
                     f"latest={_fmt(latest)}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("path", nargs="?", default="BENCH_cluster_dataplane.json",
                        help="bench JSON path, repo-relative (default: %(default)s)")
    parser.add_argument("--base", default="HEAD",
                        help="baseline: git rev or file path (default: %(default)s)")
    parser.add_argument("--new", dest="new", default="WORKTREE",
                        help="comparison side: WORKTREE, git rev, or file path "
                             "(default: the file on disk)")
    parser.add_argument("--history", type=int, metavar="N",
                        help="instead of a diff, sparkline the last N commits")
    parser.add_argument("--max-regression", type=float, metavar="PCT",
                        help="exit 1 if any metric worsens by more than PCT%%")
    args = parser.parse_args(argv)

    try:
        if args.history:
            print(render_history(args.path, args.history))
            return 0
        base = flatten(load_json(args.base, args.path))
        new = flatten(load_json(args.new, args.path))
    except (FileNotFoundError, json.JSONDecodeError, subprocess.CalledProcessError) as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2

    rows = diff_metrics(base, new)
    print(f"{args.path}: {args.base} -> {args.new}")
    print(render_table(rows))
    worst = [r for r in rows
             if r["verdict"] == "worse" and args.max_regression is not None
             and abs(r["pct"]) > args.max_regression]
    if worst:
        names = ", ".join(r["metric"] for r in worst)
        print(f"bench_diff: regression over {args.max_regression}%: {names}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
