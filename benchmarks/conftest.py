"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's figures through the
discrete-event performance model.  The figure tables are printed at the
end of the session so ``pytest benchmarks/ --benchmark-only`` doubles as
the experiment report generator (EXPERIMENTS.md quotes this output).
"""

import pytest

_REPORTS: list[str] = []


def record_report(title: str, body: str) -> None:
    _REPORTS.append(f"\n{'#' * 70}\n# {title}\n{'#' * 70}\n{body}")


@pytest.fixture
def report():
    return record_report


def pytest_terminal_summary(terminalreporter):
    if _REPORTS:
        terminalreporter.write("\n".join(_REPORTS) + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    burns wall-clock, so every bench uses a single round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
