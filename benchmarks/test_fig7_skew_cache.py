"""Fig. 7 bench: load balance vs locality under skew, cache-size sweep."""

from repro.common.units import GB
from benchmarks.conftest import run_once
from repro.experiments.fig7_load_balance import format_table, run


def test_fig7_skew_and_cache_sweep(benchmark, report):
    times, hits, points = run_once(
        benchmark,
        run,
        cache_sizes=(0, int(0.5 * GB), 1 * GB, int(1.5 * GB)),
        num_jobs=6,
        tasks_per_job=150,
        blocks=96,
    )
    report("Fig. 7: skewed grep, cache sweep", format_table((times, hits, points)))

    laf = times.series["LAF a=0.001"]
    laf1 = times.series["LAF a=1"]
    delay = times.series["Delay"]

    # 7(a): delay scheduling is substantially slower than LAF at every
    # cache size (paper: up to 2.86x).
    for l, d in zip(laf, delay):
        assert d > 1.2 * l
    # Execution time falls (or at worst stays flat) as the cache grows:
    # LAF's balance already hides most of the miss latency, so its curve
    # is shallow; delay's is steep.
    assert laf[-1] <= laf[0] * 1.02
    assert delay[-1] < delay[0]

    # 7(b): with caches enabled, hit ratio grows with cache size.
    laf_hits = hits.series["LAF a=0.001"]
    assert laf_hits[-1] > laf_hits[1] >= laf_hits[0]

    # Balance: LAF's tasks-per-slot stddev is far below delay's
    # (paper: 4.07 vs 13.07).
    laf_pts = [p for p in points if p.policy == "LAF a=0.001"]
    delay_pts = [p for p in points if p.policy == "Delay"]
    assert laf_pts[-1].stddev_tasks_per_slot < 0.6 * delay_pts[-1].stddev_tasks_per_slot
