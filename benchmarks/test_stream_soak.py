"""Stream soak: bounded memory under repeated large streamed responses.

Hammers the streaming transport with reduce-sized payloads and records
what the bounded-memory claim is actually about -- peak process RSS and
the transport's own gauges:

* **stream soak** -- one RPC server whose handler streams a multi-MB
  paged response; the client pulls it ``N_ROUNDS`` times back to back.
  Peak RSS is sampled before and after: a transport that buffered whole
  responses (or leaked page buffers across rounds) would grow RSS round
  over round, while the paged path should plateau after the first round.
* **backpressure soak** -- a burst of pipelined calls against a small
  ``max_in_flight`` window; the ``rpc.in_flight`` peak must equal the
  window, never exceed it.

Results land in ``STREAM_SOAK.json`` at the repo root so CI can archive
them.  ``BENCH_QUICK=1`` shrinks the payloads for smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_stream_soak.py -q
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

from benchmarks.conftest import record_report
from repro.common.config import NetConfig
from repro.common.units import MB
from repro.net.framing import paginate
from repro.net.rpc import RpcClient, RpcServer, Stream
from repro.sim.metrics import MetricsRegistry

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "STREAM_SOAK.json"

PAYLOAD_BYTES = (8 if QUICK else 64) * MB
PAGE_BYTES = 256 * 1024
N_ROUNDS = 4 if QUICK else 10
WINDOW = 8
N_BURST = 200 if QUICK else 1000


def _peak_rss_mb() -> float:
    """ru_maxrss is KiB on Linux (bytes on macOS; we only run Linux CI)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _soak_streaming() -> dict:
    net = NetConfig(max_frame_bytes=1 * MB, stream_page_bytes=PAGE_BYTES)
    payload = os.urandom(PAGE_BYTES) * (PAYLOAD_BYTES // PAGE_BYTES)

    def stream_payload():
        return Stream(paginate(payload, PAGE_BYTES),
                      value={"bytes": len(payload)})

    srv = RpcServer({"stream_payload": stream_payload}, net=net).start()
    metrics = MetricsRegistry()
    client = RpcClient(srv.host, srv.port, net, metrics)
    rss_per_round = []
    try:
        started = time.perf_counter()
        for _ in range(N_ROUNDS):
            result = client.call("stream_payload", timeout=120.0)
            assert result.value["bytes"] == len(payload)
            assert len(result) == len(payload) // PAGE_BYTES
            # Drop the pages before the next round, like the cluster
            # does once the output dict is rebuilt.
            del result
            rss_per_round.append(round(_peak_rss_mb(), 1))
        elapsed = time.perf_counter() - started
    finally:
        client.close()
        srv.stop()
    moved = N_ROUNDS * len(payload)
    return {
        "payload_mb": len(payload) / MB,
        "rounds": N_ROUNDS,
        "pages_per_round": len(payload) // PAGE_BYTES,
        "throughput_mb_s": round(moved / MB / elapsed, 1),
        "peak_rss_mb_per_round": rss_per_round,
        "peak_rss_mb": rss_per_round[-1],
        "rss_growth_after_first_round_mb":
            round(rss_per_round[-1] - rss_per_round[0], 1),
        "peak_stream_pages": metrics.peak("rpc.stream_pages"),
        "streams_completed": metrics.counters["rpc.streams_completed"].value,
    }


def _soak_backpressure() -> dict:
    net = NetConfig(max_in_flight=WINDOW)

    def echo(value):
        return value

    srv = RpcServer({"echo": echo}, net=net).start()
    metrics = MetricsRegistry()
    client = RpcClient(srv.host, srv.port, net, metrics)
    try:
        started = time.perf_counter()
        futures = [client.call_async("echo", {"value": i})
                   for i in range(N_BURST)]
        results = [f.result(60.0) for f in futures]
        elapsed = time.perf_counter() - started
    finally:
        client.close()
        srv.stop()
    assert results == list(range(N_BURST))
    return {
        "burst_calls": N_BURST,
        "window": WINDOW,
        "peak_in_flight": metrics.peak("rpc.in_flight"),
        "calls_per_s": round(N_BURST / elapsed, 1),
    }


def test_stream_soak(benchmark):
    def run() -> dict:
        return {
            "quick": QUICK,
            "streaming": _soak_streaming(),
            "backpressure": _soak_backpressure(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Stream soak", json.dumps(results, indent=2))

    # The window is a hard ceiling, and the soak must actually fill it.
    assert results["backpressure"]["peak_in_flight"] == WINDOW
    # Bounded memory: after the first round established the plateau,
    # later rounds must not keep growing peak RSS by anything close to
    # a whole payload (that would mean responses are being retained).
    growth = results["streaming"]["rss_growth_after_first_round_mb"]
    assert growth < results["streaming"]["payload_mb"]
