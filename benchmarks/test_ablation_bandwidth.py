"""Ablation: box-KDE bandwidth k and histogram bin count.

Algorithm 1 credits 1/k to k adjacent bins per access: larger k smooths
the PDF (wider hot ranges, gentler boundary moves), smaller k tracks the
skew more sharply.  Bin count trades resolution against scheduler memory.
The bench measures how well the resulting equal-probability partition
balances a bimodal stream.
"""

import numpy as np

from benchmarks.conftest import record_report, run_once
from repro.common.config import SchedulerConfig
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.experiments.common import ExperimentResult, format_rows
from repro.scheduler.laf import LAFScheduler


def _balance_for(num_bins: int, bandwidth: int, tasks: int = 3000) -> float:
    """Coefficient of variation of per-server assignments (lower=better)."""
    space = HashSpace(1 << 20)
    servers = [f"s{i}" for i in range(10)]
    cfg = SchedulerConfig(alpha=0.05, window_tasks=64, num_bins=num_bins, kde_bandwidth=bandwidth)
    laf = LAFScheduler(space, servers, cfg)
    rng = derive_rng(23, "kde", num_bins, bandwidth)
    half = tasks // 2
    keys = np.concatenate([
        rng.normal(0.3 * space.size, 0.05 * space.size, size=half),
        rng.normal(0.7 * space.size, 0.05 * space.size, size=tasks - half),
    ]).astype(np.int64) % space.size
    for k in keys:
        a = laf.assign(hash_key=int(k))
        laf.notify_start(a.server)
        laf.notify_finish(a.server)
    counts = np.array(list(laf.assigned_counts.values()), dtype=float)
    return float(counts.std() / counts.mean())


def sweep():
    bandwidths = (1, 4, 16, 64)
    bins = (64, 256, 1024)
    result = ExperimentResult(
        title="Ablation: KDE bandwidth x histogram bins (assignment CV, lower=better)",
        x_label="bandwidth k",
        x_values=list(bandwidths),
    )
    for nb in bins:
        result.add(f"{nb} bins", [_balance_for(nb, min(k, nb)) for k in bandwidths])
    return result


def test_ablation_kde(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: KDE bandwidth / bins", format_rows(result, unit=""))
    # A well-configured LAF (moderate k, fine bins) balances the bimodal
    # stream far better than a static split (CV ~1.5 for this stream).
    assert min(result.series["1024 bins"]) < 0.4
    # Degenerate configs (kernel as wide as the whole histogram) smear the
    # PDF toward uniform and balance worse than the tuned ones.
    coarse_worst = max(result.series["64 bins"])
    fine_best = min(result.series["1024 bins"])
    assert fine_best <= coarse_worst
