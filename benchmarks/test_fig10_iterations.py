"""Fig. 10 bench: per-iteration times, EclipseMR vs Spark, 10 iterations."""

from benchmarks.conftest import run_once
from repro.experiments.fig10_iterative import format_table, run


def test_fig10_per_iteration(benchmark, report):
    results = run_once(benchmark, run, iterations=10, blocks=96, pagerank_blocks=120)
    report("Fig. 10: per-iteration times", format_table(results))

    for app in ("kmeans", "logreg"):
        ecl = results[app].series["EclipseMR"]
        spk = results[app].series["Spark"]
        # Spark's first iteration is much slower than its steady state
        # (RDD construction + cold reads).
        assert spk[0] > 1.5 * spk[1]
        # EclipseMR's steady-state iterations are much faster than Spark's
        # (paper: ~3x; assert > 1.5x).
        ecl_steady = sum(ecl[1:]) / (len(ecl) - 1)
        spk_steady = sum(spk[1:]) / (len(spk) - 1)
        assert spk_steady > 1.5 * ecl_steady, app
        # Warm iterations beat the cold first one (inputs cached).  A LAF
        # re-cut can blip a single iteration with a few cache misplacements,
        # so compare the best warm iteration.
        assert min(ecl[1:]) < ecl[0]

    pr_ecl = results["pagerank"].series["EclipseMR"]
    pr_spk = results["pagerank"].series["Spark"]
    # Steady-state page rank: Spark is faster (EclipseMR persists the
    # rank vector every iteration) but EclipseMR stays within ~80%
    # (paper: at most 30% slower; our band is wider).
    ecl_steady = sum(pr_ecl[1:-1]) / (len(pr_ecl) - 2)
    spk_steady = sum(pr_spk[1:-1]) / (len(pr_spk) - 2)
    assert spk_steady < ecl_steady
    assert ecl_steady < 1.8 * spk_steady
    # Spark's final iteration pays the output write: slower than its own
    # steady state.
    assert pr_spk[-1] > spk_steady
