"""Supplementary bench: failure recovery cost vs cluster size."""

from benchmarks.conftest import record_report, run_once
from repro.experiments.supp_recovery import format_table, run


def test_recovery_cost(benchmark):
    result = run_once(benchmark, run, node_counts=(10, 20, 40), data_blocks=160)
    record_report("Supplementary: recovery cost", format_table(result))

    times = result.series["recovery time (s)"]
    volumes = result.series["bytes recopied (MB)"]

    # Something real moved: a failed node's primaries plus lost replicas.
    assert all(v > 0 for v in volumes)
    # A node's share shrinks as the cluster grows, and the repair spreads
    # over more disks, so recovery gets *cheaper* with more nodes.
    assert times[-1] < times[0]
    assert volumes[-1] < volumes[0] * 1.2
