"""Failover recovery bench: batched re-replication and surgical re-runs.

Measures the live cluster's two recovery costs against real worker
processes on localhost:

* **re-replication**: SIGKILL a worker holding a share of an uploaded
  file, then time ``Coordinator.mark_dead`` end to end -- arc merge,
  batched ``call_many`` re-copies sourced from the least-loaded
  survivors, and the ring re-broadcast.  Reported as wall clock, MB
  recopied, recovery MB/s, and batching shape (copies per wire round);
* **surgical re-execution**: the same wordcount run twice -- failure-free
  baseline vs a worker killed halfway through the map phase -- reporting
  the wall-clock overhead and the salvage split (completed maps kept vs
  re-executed).  The headline claim at bench scale: the re-run count
  stays strictly below the completed-map count.

Results land in ``BENCH_failover_recovery.json`` at the repo root;
``tools/bench_diff.py`` diffs them across commits (recovery costs are
direction-annotated lower-is-better).  ``BENCH_QUICK=1`` shrinks the
workload for CI smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_failover_recovery.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import record_report
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, text_corpus
from repro.cluster.runtime import ClusterRuntime
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.units import MB

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_failover_recovery.json"

N_WORKERS = 4
BLOCK_SIZE = 128 * 1024
UPLOAD_BYTES = (2 if QUICK else 8) * MB
WC_BLOCK_SIZE = 16 * 1024
WC_BLOCKS = 24 if QUICK else 64


def _cluster_config(block_size: int) -> ClusterConfig:
    return ClusterConfig(
        dfs=DFSConfig(block_size=block_size),
        net=NetConfig(heartbeat_interval=0.5, heartbeat_miss_threshold=8),
    )


def _bench_rereplication() -> dict:
    """Time the coordinator's whole failover of one block-holding worker."""
    data = os.urandom(UPLOAD_BYTES)
    with ClusterRuntime(N_WORKERS, _cluster_config(BLOCK_SIZE)) as rt:
        rt.upload("recover.bin", data)
        victim = rt.worker_ids[0]
        rt.kill_worker(victim)
        started = time.perf_counter()
        rt.coordinator.mark_dead(victim)
        recovery_s = time.perf_counter() - started
        m = rt.metrics
        blocks = m.counter("failover.blocks_rereplicated").value
        nbytes = m.counter("failover.bytes_rereplicated").value
        batches = m.counter("failover.rereplication_batches").value
        assert blocks > 0 and nbytes == \
            m.histogram("failover.rereplication_batch_bytes").total()
        # Every block is back at full replication on the survivors.
        targets = set(rt.worker_ids)
        assert all(set(holders) <= targets and len(holders) == 3
                   for holders in rt.coordinator.holders.values())
    return {
        "upload_mb": UPLOAD_BYTES / MB,
        "block_kb": BLOCK_SIZE / 1024,
        "recovery_s": round(recovery_s, 4),
        "mb_recopied": round(nbytes / MB, 2),
        "recovery_mb_s": round(nbytes / MB / recovery_s, 1),
        "blocks_rereplicated": blocks,
        "batches": batches,
        "copies_per_batch": round(blocks / batches, 1),
    }


def _aligned_corpus() -> tuple[bytes, int]:
    """One distinct word per block, so each map's spills land on exactly
    one destination worker.  This is the workload where surgery pays:
    a wide-vocabulary block spills to *every* worker, making every
    completed map's output touch the victim (nothing to salvage) -- with
    partition-aligned keys only the victim-owned share re-executes.
    Returns ``(data, words_per_block)``."""
    words = [f"w{i:03d}" for i in range(WC_BLOCKS)]
    per_block = WC_BLOCK_SIZE // (len(words[0]) + 1) - 1
    data = pack_records(
        [((w + " ") * per_block).encode() for w in words], WC_BLOCK_SIZE
    )
    assert len(data) == WC_BLOCKS * WC_BLOCK_SIZE
    return data, per_block


def _run_wordcount(kill_at: int | None) -> tuple[dict, float, dict]:
    data, per_block = _aligned_corpus()
    with ClusterRuntime(N_WORKERS, _cluster_config(WC_BLOCK_SIZE)) as rt:
        rt.upload("wc.txt", data)
        killed = []
        if kill_at is not None:
            def chaos(done_maps):
                if done_maps == kill_at and not killed:
                    victim = rt.worker_ids[-1]
                    rt.kill_worker(victim)
                    killed.append(victim)
            rt.on_map_complete = chaos
        started = time.perf_counter()
        result = rt.run(wordcount_job("wc.txt", app_id="bench-failover"))
        elapsed = time.perf_counter() - started
        assert sum(result.output.values()) == WC_BLOCKS * per_block
        assert bool(killed) == (kill_at is not None)
        counters = {
            "tasks_salvaged": rt.metrics.counter("failover.tasks_salvaged").value,
            "tasks_reexecuted":
                rt.metrics.counter("cluster.tasks_reexecuted").value,
        }
    return result.output, elapsed, counters


def _bench_surgical_job() -> dict:
    baseline_output, baseline_s, _ = _run_wordcount(kill_at=None)
    kill_at = max(1, WC_BLOCKS // 2)
    failover_output, failover_s, counters = _run_wordcount(kill_at=kill_at)
    assert failover_output == baseline_output  # bit-equal despite the kill
    # Surgical: the maps done before the kill are mostly kept; only the
    # victim's spill-holdings re-execute.
    assert counters["tasks_salvaged"] > 0
    assert counters["tasks_reexecuted"] < WC_BLOCKS
    return {
        "map_tasks": WC_BLOCKS,
        "words_per_map": _aligned_corpus()[1],
        "killed_after_maps": kill_at,
        "baseline_wall_clock_s": round(baseline_s, 3),
        "failover_wall_clock_s": round(failover_s, 3),
        "overhead_pct": round((failover_s - baseline_s) / baseline_s * 100, 1),
        "tasks_salvaged": counters["tasks_salvaged"],
        "tasks_reexecuted": counters["tasks_reexecuted"],
    }


def test_failover_recovery(benchmark):
    def run() -> dict:
        return {
            "quick": QUICK,
            "workers": N_WORKERS,
            "rereplication": _bench_rereplication(),
            "surgical_job": _bench_surgical_job(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Failover recovery", json.dumps(results, indent=2))

    # The batching claim: strictly fewer wire rounds than block copies
    # (one call_many batch per surviving target, not one RPC per copy).
    rr = results["rereplication"]
    assert rr["batches"] < rr["blocks_rereplicated"]
    # The surgical claim: work already done mostly stays done.
    sj = results["surgical_job"]
    assert sj["tasks_reexecuted"] < sj["map_tasks"]
