"""Supplementary bench: Poisson job stream over shared datasets."""

from benchmarks.conftest import record_report, run_once
from repro.experiments.supp_timeseries import format_table, run


def test_timeseries_stream(benchmark):
    result = run_once(benchmark, run, num_jobs=16, interarrivals=(20.0, 1.0))
    record_report("Supplementary: Poisson job stream", format_table(result))

    def col(series):
        return dict(zip(result.x_values, result.series[series]))

    # Re-read streams are EclipseMR's home turf: most input reads hit the
    # distributed cache under either consistent-hashing policy.
    for sched in ("LAF", "Delay"):
        for v in result.series[f"{sched} hit ratio %"]:
            assert v > 40.0
    # Uncontended regime: LAF's ring-seeded ranges preserve the same cache
    # affinity as static ranges (within 10%).
    idle = result.x_values[0]
    assert col("LAF mean latency (s)")[idle] <= col("Delay mean latency (s)")[idle] * 1.10
    # Loaded regime: LAF is at least as good on the mean and no worse on
    # the tail (no 5 s stalls).
    loaded = result.x_values[1]
    assert col("LAF mean latency (s)")[loaded] <= col("Delay mean latency (s)")[loaded] * 1.05
    assert col("LAF p95 latency (s)")[loaded] <= col("Delay p95 latency (s)")[loaded] * 1.05
