"""Ablations on the distributed cache: replication and misplaced-entry
migration (the §II-E option the paper implements but disables).
"""

from benchmarks.conftest import record_report, run_once
from repro.cache.distributed import DistributedCache
from repro.common.config import CacheConfig
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.experiments.common import ExperimentResult, format_rows
from repro.scheduler.partition import SpacePartition


def _misplacement_experiment(migrate: bool, shifts: int = 6, entries: int = 400):
    """Cache entries under drifting partitions: how many land misplaced,
    and how many lookups their home server can still serve."""
    space = HashSpace(1 << 20)
    servers = [f"s{i}" for i in range(8)]
    cfg = CacheConfig(capacity_per_server=1 << 22, migrate_misplaced=migrate)
    dc = DistributedCache(servers, cfg, space)
    rng = derive_rng(17, "migration", migrate)
    keys = [int(k) for k in rng.integers(0, space.size, size=entries)]
    for k in keys:
        home = dc.home_of(k)
        dc.worker(home).put_input(("blk", k), None, size=1024, hash_key=k)
    # Drift the boundaries: rotate each cut by a few percent per shift.
    hits = 0
    lookups = 0
    for step in range(1, shifts + 1):
        offset = (space.size // 50) * step
        bounds = [0] + [
            min(space.size, max(0, space.size * i // 8 + offset)) for i in range(1, 8)
        ] + [space.size]
        bounds = sorted(bounds)
        dc.set_partition(SpacePartition(space, servers, bounds))
        for k in keys[:100]:
            home = dc.home_of(k)
            hit, _ = dc.worker(home).get_input(("blk", k))
            hits += hit
            lookups += 1
    misplaced = sum(dc.misplaced_entries().values())
    return hits / lookups, misplaced, dc.migrated_entries


def sweep():
    result = ExperimentResult(
        title="Ablation: misplaced-cache migration on/off under range drift",
        x_label="migration",
        x_values=["off (paper default)", "on"],
    )
    off = _misplacement_experiment(False)
    on = _misplacement_experiment(True)
    result.add("home-server hit ratio", [off[0], on[0]])
    result.add("misplaced entries", [off[1], on[1]])
    result.add("entries migrated", [off[2], on[2]])
    return result


def test_ablation_cache_migration(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: cache migration", format_rows(result, unit=""))
    off_hit, on_hit = result.series["home-server hit ratio"]
    off_misplaced, on_misplaced = result.series["misplaced entries"]
    migrated = result.series["entries migrated"][1]
    # Migration keeps entries reachable from their current home server.
    assert on_hit > off_hit
    assert on_misplaced < off_misplaced
    assert migrated > 0
