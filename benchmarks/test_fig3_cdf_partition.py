"""Fig. 3 bench: equally probable CDF partitioning of the key space."""

from benchmarks.conftest import run_once
from repro.experiments.fig3_cdf import format_table, run


def test_fig3_cdf_partition(benchmark, report):
    result = run_once(benchmark, run)
    report("Fig. 3: CDF partitioning", format_table(result))

    widths = result.series["range width"]
    masses = result.series["probability"]
    # Every range carries ~equal probability...
    assert all(abs(m - 1 / 5) < 0.05 for m in masses)
    # ...and the ranges covering the popular keys (40 and 90) are narrower
    # than the widest (cold) range.
    starts = result.series["range start"]
    ends = result.series["range end"]
    owner_40 = next(i for i in range(5) if starts[i] <= 40 < ends[i])
    owner_90 = next(i for i in range(5) if starts[i] <= 90 < ends[i])
    assert widths[owner_40] < max(widths)
    assert widths[owner_90] < max(widths)
    # The partition tiles [0, 140) exactly.
    assert starts[0] == 0 and ends[-1] == 140
    assert all(ends[i] == starts[i + 1] for i in range(4))
