"""Straggler-defense bench: speculation vs a delayed worker.

Runs the same wordcount three times against real worker processes on
localhost:

* **baseline**: no fault injected, defense off -- the honest makespan;
* **spec_off**: one worker serves its first map ``DELAY`` seconds late
  and nothing defends -- the whole job stalls behind the straggler;
* **spec_on**: the same delay with ``spec.*``/``health.*`` enabled -- a
  backup copy wins on a healthy worker and the job finishes near the
  baseline, after which the loser's late deliveries are retracted from
  the already-swept stores (duplicate-result hygiene).

The headline claims at bench scale: the stalled run pays the full
injected delay, the defended run stays within 1.5x the no-fault
baseline, and every spill the loser re-inserted is pulled back.

Results land in ``BENCH_straggler.json`` at the repo root;
``tools/bench_diff.py`` diffs them across commits (makespans and
speculation churn are direction-annotated lower-is-better, wins
higher-is-better).  ``BENCH_QUICK=1`` shrinks the workload for CI
smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_straggler_defense.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import record_report
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records
from repro.cluster.runtime import ClusterRuntime
from repro.common.config import (ChaosConfig, ClusterConfig, DFSConfig,
                                 FaultRule, HealthConfig, NetConfig,
                                 SpecConfig)

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_straggler.json"

N_WORKERS = 4
WC_BLOCK_SIZE = 16 * 1024
WC_BLOCKS = 24 if QUICK else 64
DELAY_S = 3.0 if QUICK else 6.0


def _corpus() -> tuple[bytes, int]:
    """One distinct word per block (the failover bench's aligned corpus):
    deterministic output and spills spread over every destination."""
    words = [f"w{i:03d}" for i in range(WC_BLOCKS)]
    per_block = WC_BLOCK_SIZE // (len(words[0]) + 1) - 1
    data = pack_records(
        [((w + " ") * per_block).encode() for w in words], WC_BLOCK_SIZE
    )
    assert len(data) == WC_BLOCKS * WC_BLOCK_SIZE
    return data, per_block


def _config(victim: str | None, defended: bool) -> ClusterConfig:
    rules = ()
    if victim is not None:
        rules = (FaultRule(op="delay", site="serve", dst=victim,
                           method="run_map", count=1, delay_s=DELAY_S),)
    return ClusterConfig(
        dfs=DFSConfig(block_size=WC_BLOCK_SIZE),
        net=NetConfig(heartbeat_interval=0.5, heartbeat_miss_threshold=8),
        chaos=ChaosConfig(seed=0, rules=rules),
        # The bench's maps are milliseconds long, so the backup-copy
        # floor drops below the default to keep the reaction visible
        # against a sub-second baseline.
        spec=SpecConfig(enabled=defended, min_runtime_s=0.1),
        health=HealthConfig(enabled=defended),
    )


def _run_leg(victim: str | None, defended: bool) -> tuple[dict, float, dict]:
    data, per_block = _corpus()
    with ClusterRuntime(N_WORKERS, _config(victim, defended)) as rt:
        rt.upload("wc.txt", data)
        started = time.perf_counter()
        result = rt.run(wordcount_job("wc.txt", app_id="bench-straggler"))
        makespan = time.perf_counter() - started
        assert sum(result.output.values()) == WC_BLOCKS * per_block
        counters = {
            "maps_per_worker": {
                wid: rt._call_worker(wid, "get_stats", {})
                .get("worker.maps_run", 0)
                for wid in rt.worker_ids
            }
        }
        if defended:
            m = rt.metrics
            # The loser is still sleeping out its serve delay when the
            # job completes; wait for it to settle so the retraction
            # accounting makes it into the report.
            deadline = time.monotonic() + DELAY_S + 10.0
            while (time.monotonic() < deadline
                   and m.counter("sched.late_spills_retracted").value == 0):
                time.sleep(0.05)
            held = sum(
                rt._call_worker(wid, "get_stats", {}).get("spills_held", 0)
                for wid in rt.worker_ids
            )
            counters.update({
                "tasks_speculated": m.counter("sched.tasks_speculated").value,
                "speculation_wins": m.counter("sched.speculation_wins").value,
                "speculation_losses":
                    m.counter("sched.speculation_losses").value,
                "late_spills_retracted":
                    m.counter("sched.late_spills_retracted").value,
                "spills_left_behind": held,
                "quarantines": m.counter("health.quarantines").value,
                "quarantine_reroutes":
                    m.counter("sched.quarantine_reroutes").value,
            })
    return result.output, makespan, counters


def _bench_straggler() -> dict:
    baseline_out, baseline_s, base = _run_leg(victim=None, defended=False)
    # LAF placement decides who maps what; the straggler must be a
    # worker that actually gets a map, so pick the busiest one.
    placement = base["maps_per_worker"]
    victim = max(placement, key=placement.get)
    stalled_out, stalled_s, _ = _run_leg(victim=victim, defended=False)
    defended_out, defended_s, counters = _run_leg(victim=victim, defended=True)
    assert stalled_out == baseline_out and defended_out == baseline_out
    counters.pop("maps_per_worker", None)
    return {
        "map_tasks": WC_BLOCKS,
        "victim_maps": placement[victim],
        "injected_delay_s": DELAY_S,
        "baseline": {"makespan_s": round(baseline_s, 3)},
        "spec_off": {"makespan_s": round(stalled_s, 3)},
        "spec_on": {
            "makespan_s": round(defended_s, 3),
            "overhead_vs_baseline_pct":
                round((defended_s - baseline_s) / baseline_s * 100, 1),
        },
        "speedup_vs_stalled": round(stalled_s / defended_s, 2),
        **counters,
    }


def test_straggler_defense(benchmark):
    def run() -> dict:
        return {
            "quick": QUICK,
            "workers": N_WORKERS,
            "straggler": _bench_straggler(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Straggler defense", json.dumps(results, indent=2))

    s = results["straggler"]
    # The undefended run pays the full injected delay...
    assert s["spec_off"]["makespan_s"] >= DELAY_S
    # ...the defended run stays near the no-fault baseline.  Quick
    # mode's sub-second job makes a pure ratio too tight -- the fixed
    # ~0.15s detect-and-copy reaction dominates -- so it gets that
    # reaction as an absolute grace on top...
    grace = 0.3 if QUICK else 0.0
    assert (s["spec_on"]["makespan_s"]
            <= 1.5 * s["baseline"]["makespan_s"] + grace)
    # ...because a backup copy actually won the race...
    assert s["speculation_wins"] >= 1
    # ...and the loser's late deliveries were all pulled back.
    assert s["late_spills_retracted"] >= 1
    assert s["spills_left_behind"] == 0
