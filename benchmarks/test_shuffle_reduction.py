"""Shuffle-reduction bench: wire compression, cross-spill combining,
cost-aware eviction.

Prices the three seams this repo grew to shrink data movement:

* **wire** -- the 4-worker cluster wordcount run with ``net.compression``
  off and then ``zlib``: wire bytes vs logical bytes on the out-of-band
  payload path (spill pushes, block frames, stream pages), and the MB/s
  cost of compressing them;
* **cross_spill** -- a combiner-bearing wordcount with a small spill
  buffer, run with ``cross_spill_combine`` off and on, on all three
  execution planes: how much ``bytes_shuffled`` shrinks at the source,
  and that every plane reports the identical post-combining accounting;
* **eviction** -- a skewed hot-file + cold-scan grep workload and an
  iterative repeated-scan workload on a memory-constrained functional
  runtime, under ``cache.eviction = lru`` vs ``cost``: iCache hit rates.

Results land in ``BENCH_shuffle_reduction.json`` at the repo root.
``BENCH_QUICK=1`` shrinks the workloads for smoke runs (CI); numbers are
then indicative only.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_shuffle_reduction.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import record_report
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, NetConfig
from repro.common.units import MB
from repro.cluster.runtime import ClusterRuntime
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ParallelEclipseMRRuntime
from repro.mapreduce.runtime import EclipseMRRuntime

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shuffle_reduction.json"

N_WORKERS = 4
WIRE_WORDS = 60_000 if QUICK else 400_000
WIRE_BLOCK = 256 * 1024 if QUICK else 1 * MB
COMB_WORDS = 20_000 if QUICK else 80_000
EVICT_ROUNDS = 3 if QUICK else 6


def _wordcount_job(app_id: str, input_file: str, combiner: bool = False,
                   cross_spill: bool = False,
                   spill_buffer: int = 32 * MB) -> MapReduceJob:
    def map_fn(data):
        for word in bytes(data).decode().split():
            yield word, 1

    def reduce_fn(key, values):
        return sum(values)

    def combine_fn(key, values):
        return [sum(values)]

    return MapReduceJob(app_id=app_id, input_file=input_file,
                        map_fn=map_fn, reduce_fn=reduce_fn,
                        combiner=combine_fn if combiner else None,
                        cross_spill_combine=cross_spill,
                        spill_buffer_bytes=spill_buffer)


def _corpus(words: int, vocab: int) -> bytes:
    vocabulary = [f"word{i:04d}" for i in range(vocab)]
    return " ".join(vocabulary[i % vocab] for i in range(words)).encode()


# -- wire compression on the cluster plane -----------------------------------------


def _net(compression: str) -> NetConfig:
    return NetConfig(heartbeat_interval=0.5, heartbeat_miss_threshold=8,
                     compression=compression)


def _run_wire(compression: str) -> dict:
    """One cluster wordcount; returns throughput + the wire/logical split."""
    cfg = ClusterConfig(dfs=DFSConfig(block_size=WIRE_BLOCK), net=_net(compression))
    data = _corpus(WIRE_WORDS, vocab=100)
    with ClusterRuntime(N_WORKERS, cfg) as rt:
        rt.upload("wire.txt", data)
        started = time.perf_counter()
        result = rt.run(_wordcount_job(f"bench-wire-{compression}", "wire.txt"))
        elapsed = time.perf_counter() - started
        # Block-boundary splits can mint a few extra tokens; the exact
        # split is deterministic, so off/on runs still agree.
        assert sum(result.output.values()) >= WIRE_WORDS
        wire = logical = compressed = raw = 0
        for stats in rt.worker_stats().values():
            wire += stats.get("net.bytes_wire", 0)
            logical += stats.get("net.bytes_logical", 0)
            compressed += stats.get("net.pages_compressed", 0)
            raw += stats.get("net.pages_raw", 0)
        wire += rt.metrics.counter("net.bytes_wire").value
        logical += rt.metrics.counter("net.bytes_logical").value
        compressed += rt.metrics.counter("net.pages_compressed").value
        raw += rt.metrics.counter("net.pages_raw").value
    return {
        "wall_clock_s": round(elapsed, 3),
        "input_mb_s": round(len(data) / MB / elapsed, 2),
        "wire_bytes": int(wire),
        "logical_bytes": int(logical),
        "pages_compressed": int(compressed),
        "pages_raw": int(raw),
    }


def _bench_wire() -> dict:
    off = _run_wire("none")
    on = _run_wire("zlib")
    reduction = (1.0 - on["wire_bytes"] / on["logical_bytes"]
                 if on["logical_bytes"] else 0.0)
    return {
        "words": WIRE_WORDS,
        "off": off,
        "zlib": on,
        "wire_reduction_pct": round(reduction * 100, 1),
        "mb_s_vs_raw": round(on["input_mb_s"] / off["input_mb_s"], 3),
    }


# -- cross-spill combining on all three planes -------------------------------------


def _bench_cross_spill() -> dict:
    # A skewed vocabulary (many duplicate keys per block) with a spill
    # buffer small enough that per-destination buffers fill mid-map --
    # exactly where cross-spill combining collapses duplicates early.
    cfg = ClusterConfig(dfs=DFSConfig(block_size=4096))
    data = _corpus(COMB_WORDS, vocab=60)

    def job(app_id, cross_spill):
        return _wordcount_job(app_id, "comb.txt", combiner=True,
                              cross_spill=cross_spill, spill_buffer=2048)

    seq = EclipseMRRuntime(3, config=cfg)
    seq.upload("comb.txt", data)
    seq_off = seq.run(job("bench-comb-off", False))
    seq_on = seq.run(job("bench-comb-on", True))
    assert seq_on.output == seq_off.output

    par = ParallelEclipseMRRuntime(3, config=cfg, max_workers=4)
    par.upload("comb.txt", data)
    par_on = par.run(job("bench-comb-par", True))

    with ClusterRuntime(3, cfg) as rt:
        rt.upload("comb.txt", data)
        cl_on = rt.run(job("bench-comb-cluster", True))

    # All three planes must account the combined shuffle identically.
    assert par_on.stats.bytes_shuffled == seq_on.stats.bytes_shuffled
    assert cl_on.stats.bytes_shuffled == seq_on.stats.bytes_shuffled
    assert par_on.stats.spills == seq_on.stats.spills
    assert cl_on.stats.spills == seq_on.stats.spills
    assert cl_on.output == seq_on.output

    reduction = 1.0 - seq_on.stats.bytes_shuffled / seq_off.stats.bytes_shuffled
    return {
        "words": COMB_WORDS,
        "off": {"bytes_shuffled": seq_off.stats.bytes_shuffled,
                "spills": seq_off.stats.spills},
        "on": {"bytes_shuffled": seq_on.stats.bytes_shuffled,
               "spills": seq_on.stats.spills,
               "recombines": seq_on.stats.spill_recombines},
        "planes_agree": True,
        "shuffle_reduction_pct": round(reduction * 100, 1),
    }


# -- eviction policy hit rates on the functional plane ------------------------------


def _grep_job(app_id: str, input_file: str, needle: str) -> MapReduceJob:
    def map_fn(data):
        for line in bytes(data).decode().splitlines():
            if needle in line:
                yield needle, 1

    def reduce_fn(key, values):
        return sum(values)

    return MapReduceJob(app_id=app_id, input_file=input_file,
                        map_fn=map_fn, reduce_fn=reduce_fn)


def _run_eviction(policy: str) -> dict:
    """Hot-file scans interleaved with cold one-shot scans, then an
    iterative phase of repeated hot scans; returns iCache hit rates."""
    block = 4096
    cfg = ClusterConfig(
        dfs=DFSConfig(block_size=block),
        cache=CacheConfig(capacity_per_server=12 * block, icache_fraction=0.5,
                          eviction=policy),
    )
    rt = EclipseMRRuntime(3, config=cfg)
    hot = b"\n".join(b"needle line %d" % i for i in range(2000))[: 10 * block]
    rt.upload("hot.txt", hot)
    for i in range(EVICT_ROUNDS):
        cold = (b"hay line %d " % i) * (20 * block // 16)
        rt.upload(f"cold{i}.txt", cold[: 20 * block])

    # Warmup: a few hot scans so frequency-aware policies can tell the
    # hot blocks apart from one-shot traffic (LRU gains nothing here).
    for j in range(3):
        rt.run(_grep_job(f"grep-warm-{policy}-{j}", "hot.txt", "needle"))

    hits = misses = 0
    # Skewed-grep phase: every round scans the hot file once, then a
    # distinct cold file twice its size (pure LRU pollution).  Hit rate
    # is measured on the hot scans -- the cold scans are compulsory
    # misses for any policy.
    for i in range(EVICT_ROUNDS):
        r = rt.run(_grep_job(f"grep-hot-{policy}-{i}", "hot.txt", "needle"))
        hits += r.stats.icache_hits
        misses += r.stats.icache_misses
        rt.run(_grep_job(f"grep-cold-{policy}-{i}", f"cold{i}.txt", "hay"))
    skew_rate = hits / (hits + misses) if hits + misses else 0.0

    # Iterative phase: the hot file scanned back-to-back (kmeans-style
    # re-reads); whatever survived the pollution pays off here.
    it_hits = it_misses = 0
    for i in range(EVICT_ROUNDS):
        r = rt.run(_grep_job(f"grep-iter-{policy}-{i}", "hot.txt", "needle"))
        it_hits += r.stats.icache_hits
        it_misses += r.stats.icache_misses
    iter_rate = it_hits / (it_hits + it_misses) if it_hits + it_misses else 0.0

    cache = rt.dcache.stats()
    return {
        "skewed_grep_hit_rate": round(skew_rate, 4),
        "iterative_hit_rate": round(iter_rate, 4),
        "evictions": cache.evictions,
    }


def _bench_eviction() -> dict:
    lru = _run_eviction("lru")
    cost = _run_eviction("cost")
    return {"rounds": EVICT_ROUNDS, "lru": lru, "cost": cost}


# -- the bench entry point ----------------------------------------------------------


def test_shuffle_reduction(benchmark):
    def run() -> dict:
        return {
            "quick": QUICK,
            "wordcount": _bench_wire(),
            "cross_spill": _bench_cross_spill(),
            "eviction": _bench_eviction(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Shuffle reduction", json.dumps(results, indent=2))

    # Compression must cut at least 30% of the out-of-band wire bytes on
    # the compressible wordcount corpus...
    assert results["wordcount"]["wire_reduction_pct"] >= 30.0
    # ...without giving back more than 10% of end-to-end throughput.
    # (Quick/CI runs are too noisy to hold a timing bar; full runs must.)
    if not QUICK:
        assert results["wordcount"]["mb_s_vs_raw"] >= 0.9
    # Cross-spill combining must shrink the shuffle at the source, with
    # identical accounting on every plane (asserted inside the section).
    assert results["cross_spill"]["shuffle_reduction_pct"] > 0.0
    assert results["cross_spill"]["on"]["recombines"] > 0
    # The cost-aware policy must not lose to LRU on the skewed workload.
    assert (results["eviction"]["cost"]["skewed_grep_hit_rate"]
            >= results["eviction"]["lru"]["skewed_grep_hit_rate"])
