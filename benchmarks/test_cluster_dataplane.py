"""Cluster data-plane bench: latency, pipelining, zero-copy, end-to-end.

Measures the live TCP data plane (real worker processes on localhost):

* RPC round-trip latency distribution through the connection pool;
* pipelined (``call_async`` fan) vs serial (blocking loop) throughput
  against four server processes whose handler bears a fixed per-call
  device latency (the testbed models 8 ms disk seeks; we use a smaller
  2 ms so the serial baseline finishes quickly).  Multiplexing exists to
  keep the wire busy during exactly such remote waits, so this is the
  number the PR stands on.  A plain ``ping`` mix against the real
  cluster is also recorded as the no-work overhead floor -- on a
  single-core host it shows only the envelope-processing overlap;
* block put/fetch MB/s over the out-of-band (zero-copy) payload path vs
  the old in-envelope (pickled) path, plus the real replicated upload;
* end-to-end 4-worker wordcount wall-clock.

Results land in ``BENCH_cluster_dataplane.json`` at the repo root so CI
can archive them and humans can diff runs.  ``BENCH_QUICK=1`` shrinks
the workload for smoke runs (CI); numbers are then indicative only.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_cluster_dataplane.py -q
"""

from __future__ import annotations

import json
import multiprocessing
import os
import statistics
import time
from concurrent.futures import wait
from pathlib import Path

from benchmarks.conftest import record_report
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.units import MB
from repro.cluster.runtime import ClusterRuntime
from repro.mapreduce.job import MapReduceJob

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster_dataplane.json"

N_WORKERS = 4
N_LATENCY = 100 if QUICK else 400
N_PING = 150 if QUICK else 600
N_PROBE = 100 if QUICK else 400
PROBE_DELAY_S = 0.002
N_PUTS = 8 if QUICK else 32
PUT_BYTES = 4 * MB
UPLOAD_BYTES = (2 if QUICK else 16) * MB
BLOCK_SIZE = 1 * MB
WORDS = 30_000 if QUICK else 200_000


def _cluster_config() -> ClusterConfig:
    return ClusterConfig(
        dfs=DFSConfig(block_size=BLOCK_SIZE),
        net=NetConfig(heartbeat_interval=0.5, heartbeat_miss_threshold=8),
    )


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))
    return ordered[idx]


# -- pipelined vs serial against latency-bearing servers ---------------------------


def _probe_server_main(conn, delay_s: float) -> None:
    """A worker-like RPC server whose handler waits like a device access."""
    from repro.net.rpc import RpcServer

    def probe() -> bool:
        time.sleep(delay_s)
        return True

    server = RpcServer({"probe": probe}, net=NetConfig()).start()
    conn.send(server.address)
    conn.recv()  # parent says stop
    server.stop()


def _start_probe_servers(count: int):
    ctx = multiprocessing.get_context("spawn")
    procs, pipes, addrs = [], [], []
    for _ in range(count):
        parent_end, child_end = ctx.Pipe()
        proc = ctx.Process(
            target=_probe_server_main, args=(child_end, PROBE_DELAY_S), daemon=True
        )
        proc.start()
        procs.append(proc)
        pipes.append(parent_end)
    for pipe in pipes:
        addrs.append(tuple(pipe.recv()))
    return procs, pipes, addrs


def _stop_probe_servers(procs, pipes) -> None:
    for pipe in pipes:
        try:
            pipe.send("stop")
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()


def _timed_fan(pool, plan, method) -> tuple[float, float]:
    """(serial seconds, pipelined seconds) for the same call plan."""
    started = time.perf_counter()
    for addr in plan:
        pool.call(addr, method, {})
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    futures = [pool.call_async(addr, method, {}) for addr in plan]
    wait(futures, timeout=120.0)
    for future in futures:
        future.result(0)
    pipelined_s = time.perf_counter() - started
    return serial_s, pipelined_s


def _bench_pipelining() -> dict:
    from repro.net.rpc import ConnectionPool

    procs, pipes, addrs = _start_probe_servers(N_WORKERS)
    pool = ConnectionPool(NetConfig())
    try:
        plan = [addrs[i % len(addrs)] for i in range(N_PROBE)]
        serial_s, pipelined_s = _timed_fan(pool, plan, "probe")
    finally:
        pool.close_all()
        _stop_probe_servers(procs, pipes)
    return {
        "calls": N_PROBE,
        "per_call_device_latency_ms": PROBE_DELAY_S * 1e3,
        "serial_calls_per_s": round(N_PROBE / serial_s, 1),
        "pipelined_calls_per_s": round(N_PROBE / pipelined_s, 1),
        "speedup": round(serial_s / pipelined_s, 2),
    }


# -- against the real cluster ------------------------------------------------------


def _bench_latency(rt: ClusterRuntime) -> dict:
    pool = rt.coordinator.pool
    addrs = [rt.coordinator.address_of(w).addr for w in rt.worker_ids]
    samples: list[float] = []
    for i in range(N_LATENCY):
        addr = addrs[i % len(addrs)]
        started = time.perf_counter()
        pool.call(addr, "ping", {})
        samples.append(time.perf_counter() - started)
    return {
        "calls": len(samples),
        "p50_us": round(_percentile(samples, 50) * 1e6, 1),
        "p90_us": round(_percentile(samples, 90) * 1e6, 1),
        "p99_us": round(_percentile(samples, 99) * 1e6, 1),
        "mean_us": round(sum(samples) / len(samples) * 1e6, 1),
    }


def _bench_ping_floor(rt: ClusterRuntime) -> dict:
    """No-work pings: how much envelope overhead pipelining can overlap."""
    pool = rt.coordinator.pool
    addrs = [rt.coordinator.address_of(w).addr for w in rt.worker_ids]
    plan = [addrs[i % len(addrs)] for i in range(N_PING)]
    serial_s, pipelined_s = _timed_fan(pool, plan, "ping")
    return {
        "calls": N_PING,
        "serial_calls_per_s": round(N_PING / serial_s, 1),
        "pipelined_calls_per_s": round(N_PING / pipelined_s, 1),
        "speedup": round(serial_s / pipelined_s, 2),
    }


def _bench_blocks(rt: ClusterRuntime) -> dict:
    """Block put/fetch MB/s: out-of-band payload frames vs pickled envelopes.

    The two put paths are interleaved call-by-call and compared by
    median per-call latency, which cancels the host's CPU-availability
    drift (a sequential A-then-B layout mismeasures whichever phase runs
    during a slow window).  Each path overwrites one block key so worker
    memory stays flat.
    """
    coord = rt.coordinator
    addrs = [coord.address_of(w).addr for w in rt.worker_ids]
    payload = os.urandom(PUT_BYTES)
    envelope_t: list[float] = []
    blob_t: list[float] = []
    fetch_t: list[float] = []
    for i in range(N_PUTS):
        addr = addrs[i % len(addrs)]
        started = time.perf_counter()
        coord.pool.call(addr, "put_block",
                        {"name": "envelope.bin", "index": 0, "data": payload,
                         "replica": True})
        envelope_t.append(time.perf_counter() - started)
        started = time.perf_counter()
        coord.pool.call(addr, "put_block",
                        {"name": "blob.bin", "index": 0, "replica": True},
                        blob=payload, blob_arg="data")
        blob_t.append(time.perf_counter() - started)
        started = time.perf_counter()
        block = coord.pool.call(addr, "fetch_block",
                                {"name": "blob.bin", "index": 0})
        fetch_t.append(time.perf_counter() - started)
        assert len(block) == PUT_BYTES
    envelope_bps = PUT_BYTES / statistics.median(envelope_t)
    blob_bps = PUT_BYTES / statistics.median(blob_t)
    fetch_bps = PUT_BYTES / statistics.median(fetch_t)

    # The real upload path: replicated placement, concurrent fan-out,
    # every payload a zero-copy slice of the source buffer.
    data = os.urandom(UPLOAD_BYTES)
    replication = 1 + rt.config.dfs.replication  # upload writes every copy
    started = time.perf_counter()
    coord.upload("bench.bin", data)
    upload_bps = UPLOAD_BYTES * replication / (time.perf_counter() - started)

    return {
        "put_payload_mb": PUT_BYTES / MB,
        "put_envelope_mb_s": round(envelope_bps / MB, 1),
        "put_zero_copy_mb_s": round(blob_bps / MB, 1),
        "zero_copy_vs_envelope": round(blob_bps / envelope_bps, 2),
        "fetch_mb_s": round(fetch_bps / MB, 1),
        "upload_mb": UPLOAD_BYTES / MB,
        "upload_wire_mb_s": round(upload_bps / MB, 1),
    }


def _bench_wordcount(rt: ClusterRuntime) -> dict:
    vocabulary = [f"word{i:03d}" for i in range(100)]
    text = " ".join(vocabulary[i % len(vocabulary)] for i in range(WORDS))
    rt.upload("wc.txt", text.encode())

    def map_fn(data):
        for word in bytes(data).decode().split():
            yield word, 1

    def reduce_fn(key, values):
        return sum(values)

    job = MapReduceJob(app_id="bench-wc", input_file="wc.txt",
                       map_fn=map_fn, reduce_fn=reduce_fn)
    started = time.perf_counter()
    result = rt.run(job)
    elapsed = time.perf_counter() - started
    total = sum(result.output.values())
    assert total == WORDS
    return {
        "words": WORDS,
        "map_tasks": result.stats.map_tasks,
        "wall_clock_s": round(elapsed, 3),
        "words_per_s": round(WORDS / elapsed, 1),
    }


def test_cluster_dataplane(benchmark):
    def run() -> dict:
        results = {"quick": QUICK, "workers": N_WORKERS,
                   "pipelining": _bench_pipelining()}
        with ClusterRuntime(N_WORKERS, _cluster_config()) as rt:
            results["rpc_latency"] = _bench_latency(rt)
            results["ping_floor"] = _bench_ping_floor(rt)
            results["blocks"] = _bench_blocks(rt)
            results["wordcount"] = _bench_wordcount(rt)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Cluster data plane", json.dumps(results, indent=2))

    # The multiplexing win the PR exists for: with per-call device
    # latency in the handler, pipelined throughput must beat the serial
    # baseline by at least 3x across the 4 server processes.
    assert results["pipelining"]["speedup"] >= 3.0
    # Out-of-band payload frames must beat pickling payloads into the
    # envelope (they skip the pickle copy on both sides of the wire).
    assert results["blocks"]["zero_copy_vs_envelope"] >= 1.0
