"""Fig. 6 bench: LAF vs delay scheduling, non-iterative and iterative."""

from benchmarks.conftest import run_once
from repro.experiments.fig6_schedulers import NON_ITERATIVE_APPS, format_table, run, run_iterative


def test_fig6a_non_iterative(benchmark, report):
    result = run_once(benchmark, run, blocks=128)
    report("Fig. 6(a): LAF vs Delay, non-iterative", format_table(result))
    laf = result.series["LAF"]
    delay = result.series["Delay"]
    # LAF is at least as fast as delay scheduling on every application
    # (cold caches: the win comes from waits and balance, not cache hits).
    for app, l, d in zip(NON_ITERATIVE_APPS, laf, delay):
        assert l <= d * 1.05, f"{app}: LAF {l:.0f}s vs Delay {d:.0f}s"
    # And strictly faster somewhere.
    assert any(l < d * 0.98 for l, d in zip(laf, delay))


def test_fig6b_iterative(benchmark, report):
    result = run_once(benchmark, run_iterative, kmeans_blocks=128, pagerank_blocks=8, iterations=5)
    report("Fig. 6(b): LAF vs Delay, iterative", format_table(result))
    km = {name: vals[0] for name, vals in result.series.items()}
    pr = {name: vals[1] for name, vals in result.series.items()}
    # LAF beats delay on kmeans (many waves of tasks).
    assert km["LAF"] < km["Delay"]
    # pagerank fits in one wave: the schedulers are close (within 25%).
    assert abs(pr["LAF"] - pr["Delay"]) / pr["Delay"] < 0.25
    # oCache changes little: outputs are in the OS page cache either way.
    assert abs(km["LAF"] - km["LAF (with oCache)"]) / km["LAF"] < 0.15
    assert abs(pr["Delay"] - pr["Delay (with oCache)"]) / pr["Delay"] < 0.15
