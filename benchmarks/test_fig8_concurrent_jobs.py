"""Fig. 8 bench: a batch of 7 concurrent jobs, cache-size sweep."""

from repro.common.units import GB, MB
from benchmarks.conftest import run_once
from repro.experiments.fig8_concurrent import format_table, run


def test_fig8_concurrent_batch(benchmark, report):
    # Cache sizes scaled with the dataset (see the experiment docstring).
    per_cache, summary = run_once(
        benchmark, run, cache_sizes=(256 * MB, 1 * GB, 4 * GB), blocks_per_file=32
    )
    report("Fig. 8: concurrent jobs", format_table((per_cache, summary)))

    # LAF is at least as fast as delay for (almost) every app at 1 GB; we
    # assert on the batch aggregate to avoid flakiness of tiny jobs.
    for result in per_cache:
        laf_total = sum(result.series["LAF"])
        delay_total = sum(result.series["Delay"])
        assert laf_total <= delay_total * 1.02, result.title

    # Larger caches never hurt.  The time curves are shallow: delay's
    # static ranges bottleneck on hot servers regardless of hits, and
    # LAF's balance hides most of the miss latency -- the cache's real
    # effect shows in the hit-ratio series asserted below (the paper's
    # Fig. 8 bars similarly move far less than its hit ratios).
    laf_totals = [sum(r.series["LAF"]) for r in per_cache]
    delay_totals = [sum(r.series["Delay"]) for r in per_cache]
    assert laf_totals[-1] <= laf_totals[0] * 1.05
    assert delay_totals[-1] <= delay_totals[0] * 1.05

    # Hit ratios climb with cache size and converge at the top end
    # (paper: LAF 14% vs Delay 8% at 1 GB; both ~69% at 8 GB).
    laf_hits = summary.series["LAF"]
    delay_hits = summary.series["Delay"]
    assert laf_hits[-1] > laf_hits[0]
    assert delay_hits[-1] > delay_hits[0]
    assert laf_hits[0] >= delay_hits[0] * 0.95
    assert abs(laf_hits[-1] - delay_hits[-1]) < 12.0
