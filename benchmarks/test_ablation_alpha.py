"""Ablation: the LAF moving-average weight factor alpha.

The paper sweeps alpha in Fig. 7 and fixes 0.001.  alpha = 1 rebalances
perfectly to the current window (best balance, worse cache affinity);
alpha -> 0 freezes the ranges (delay-scheduling-like).  The bench sweeps
alpha on the skewed grep workload and reports time / hit ratio / balance.
"""

from benchmarks.conftest import record_report, run_once
from repro.common.config import SchedulerConfig
from repro.common.units import GB
from repro.experiments.common import ExperimentResult, format_rows, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout, skewed_task_keys
from repro.perfmodel.profiles import APP_PROFILES

ALPHAS = (0.0, 0.001, 0.01, 0.1, 1.0)


def _run_alpha(alpha: float):
    config = paper_cluster(cache_per_server=1 * GB, icache_fraction=1.0)
    fw = eclipse_framework("laf", SchedulerConfig(alpha=alpha))
    engine = PerfEngine(config, fw)
    layout = dht_layout(engine.space, engine.ring, "grepdata", 96, config.dfs.block_size)
    specs = [
        SimJobSpec(app=APP_PROFILES["grep"], tasks=skewed_task_keys(layout, 150, seed=21 + j), label=f"g{j}")
        for j in range(4)
    ]
    timings = engine.run_jobs(specs)
    total = max(t.end for t in timings) - min(t.start for t in timings)
    hit = engine.dcache.stats().hit_ratio
    import numpy as np

    per_server = np.zeros(config.num_nodes)
    for t in timings:
        for s, c in t.tasks_per_server.items():
            per_server[s] += c
    return total, 100 * hit, float(np.std(per_server / config.map_slots_per_node))


def sweep():
    rows = [_run_alpha(a) for a in ALPHAS]
    result = ExperimentResult(
        title="Ablation: LAF weight factor alpha (skewed grep)",
        x_label="alpha",
        x_values=[str(a) for a in ALPHAS],
    )
    result.add("time (s)", [r[0] for r in rows])
    result.add("hit %", [r[1] for r in rows])
    result.add("stddev tasks/slot", [r[2] for r in rows])
    return result


def test_ablation_alpha(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: alpha sweep", format_rows(result, unit=""))
    times = dict(zip(result.x_values, result.series["time (s)"]))
    stddevs = dict(zip(result.x_values, result.series["stddev tasks/slot"]))
    # alpha = 0 (frozen ranges) balances worst on a skewed stream.
    assert stddevs["0.0"] > stddevs["1.0"]
    # Any adaptive alpha beats frozen ranges on time.
    assert min(times["0.001"], times["0.01"], times["1.0"]) < times["0.0"]
