"""Elastic membership bench: handoff throughput and join disruption.

Measures the two costs of changing cluster size while it runs, against
real worker processes on localhost:

* **handoff throughput**: a 3-worker cluster holding an uploaded file
  admits a fourth worker, then drains it back out.  Each direction is
  timed end to end -- arc computation, LAF repartition, and the batched
  ``call_many`` block stream -- and reported as MB handed off, handoff
  MB/s, and batching shape.  The headline claim at bench scale: the
  handoff uses strictly fewer wire rounds than block copies;
* **join disruption**: a stream of identical wordcount jobs with a
  non-blocking ``join_worker(wait=False)`` requested mid-stream.  The
  join waits at the quiesce barrier, so one job absorbs the handoff in
  its latency; the p99 of the stream against a join-free baseline is
  the price of growing the cluster under load.

Results land in ``BENCH_elastic_membership.json`` at the repo root;
``tools/bench_diff.py`` diffs them across commits (handoff volumes and
disruption are direction-annotated lower-is-better, handoff MB/s
higher).  ``BENCH_QUICK=1`` shrinks the workload for CI smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_elastic_membership.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import record_report
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, text_corpus
from repro.cluster.runtime import ClusterRuntime
from repro.common.config import ClusterConfig, DFSConfig, NetConfig
from repro.common.units import MB

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic_membership.json"

N_WORKERS = 3
BLOCK_SIZE = 128 * 1024
UPLOAD_BYTES = (2 if QUICK else 8) * MB
WC_BLOCK_SIZE = 8 * 1024
STREAM_JOBS = 5 if QUICK else 10
JOIN_AFTER = 2  # jobs completed before the join is requested


def _cluster_config(block_size: int) -> ClusterConfig:
    return ClusterConfig(
        dfs=DFSConfig(block_size=block_size),
        net=NetConfig(heartbeat_interval=0.5, heartbeat_miss_threshold=8),
    )


def _percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile (streams are small; p99 ~= max)."""
    ranked = sorted(values)
    idx = min(len(ranked) - 1, round(pct / 100 * (len(ranked) - 1)))
    return ranked[idx]


def _bench_handoff() -> dict:
    """Time a live join and the drain back out over an uploaded file."""
    data = os.urandom(UPLOAD_BYTES)
    with ClusterRuntime(N_WORKERS, _cluster_config(BLOCK_SIZE)) as rt:
        rt.upload("elastic.bin", data)
        m = rt.metrics

        started = time.perf_counter()
        joined = rt.join_worker()
        join_s = time.perf_counter() - started
        join_blocks = m.counter("membership.blocks_handed_off").value
        join_bytes = m.counter("membership.bytes_handed_off").value
        join_batches = m.counter("membership.handoff_batches").value
        assert join_blocks > 0 and join_bytes > 0
        # The joiner now holds its arc's share of the file.
        assert any(joined in holders
                   for holders in rt.coordinator.holders.values())

        # Drain a founding member: its blocks must flow to the joiner,
        # the only survivor whose arc share is still partial.  (Draining
        # the joiner itself would move nothing -- the founders still
        # hold every block from the 3-way replicated upload.)
        started = time.perf_counter()
        rt.drain_worker(rt.worker_ids[0])
        drain_s = time.perf_counter() - started
        drain_blocks = m.counter("membership.blocks_handed_off").value - join_blocks
        drain_bytes = m.counter("membership.bytes_handed_off").value - join_bytes
        assert drain_blocks > 0
        # Graceful exits spend none of the failover budget.
        assert m.counter("cluster.failovers").value == 0
        assert m.counter("membership.joins").value == 1
        assert m.counter("membership.drains").value == 1
    return {
        "upload_mb": UPLOAD_BYTES / MB,
        "block_kb": BLOCK_SIZE / 1024,
        "join": {
            "wall_clock_s": round(join_s, 4),
            "mb_handed_off": round(join_bytes / MB, 2),
            "handoff_mb_s": round(join_bytes / MB / join_s, 1),
            "blocks_handed_off": join_blocks,
            "handoff_batches": join_batches,
            "copies_per_batch": round(join_blocks / join_batches, 1),
        },
        "drain": {
            "wall_clock_s": round(drain_s, 4),
            "mb_handed_off": round(drain_bytes / MB, 2),
            "handoff_mb_s": round(drain_bytes / MB / drain_s, 1),
            "blocks_handed_off": drain_blocks,
        },
    }


def _run_stream(join_after: int | None) -> tuple[list[float], dict]:
    """Latency of each job in a stream, optionally joining mid-stream."""
    corpus = pack_records(
        text_corpus(19, num_words=2400, vocab_size=60), WC_BLOCK_SIZE
    )
    latencies: list[float] = []
    with ClusterRuntime(N_WORKERS, _cluster_config(WC_BLOCK_SIZE)) as rt:
        rt.upload("stream.txt", corpus)
        join_future = None
        reference = None
        for i in range(STREAM_JOBS):
            started = time.perf_counter()
            result = rt.run(wordcount_job("stream.txt", app_id=f"stream-{i}"))
            latencies.append(time.perf_counter() - started)
            if reference is None:
                reference = result.output
            assert result.output == reference  # bit-equal across the join
            if join_after is not None and i + 1 == join_after:
                # Queued at the quiesce barrier; the next job's latency
                # absorbs the admission wait plus the block handoff.
                join_future = rt.join_worker(wait=False)
        if join_future is not None:
            timeout = (rt.config.membership.barrier_timeout
                       + rt.config.membership.join_register_timeout)
            joined = join_future.result(timeout=timeout)
            assert joined in rt.coordinator.worker_ids
        counters = {
            "joins": rt.metrics.counter("membership.joins").value,
            "failovers": rt.metrics.counter("cluster.failovers").value,
        }
    return latencies, counters


def _bench_join_disruption() -> dict:
    baseline, base_counters = _run_stream(join_after=None)
    assert base_counters["joins"] == 0
    disrupted, counters = _run_stream(join_after=JOIN_AFTER)
    assert counters["joins"] == 1 and counters["failovers"] == 0
    return {
        "stream_jobs": STREAM_JOBS,
        "join_after_jobs": JOIN_AFTER,
        "baseline_p50_ms": round(_percentile(baseline, 50) * 1000, 1),
        "baseline_p99_ms": round(_percentile(baseline, 99) * 1000, 1),
        "disruption_p50_ms": round(_percentile(disrupted, 50) * 1000, 1),
        "disruption_p99_ms": round(_percentile(disrupted, 99) * 1000, 1),
    }


def test_elastic_membership(benchmark):
    def run() -> dict:
        return {
            "quick": QUICK,
            "workers": N_WORKERS,
            "handoff": _bench_handoff(),
            "join_disruption": _bench_join_disruption(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Elastic membership", json.dumps(results, indent=2))

    # The batching claim: strictly fewer wire rounds than block copies
    # (one call_many batch per handoff source, not one RPC per copy).
    join = results["handoff"]["join"]
    assert join["handoff_batches"] < join["blocks_handed_off"]
