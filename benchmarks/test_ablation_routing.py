"""Ablation: one-hop DHT routing vs classic Chord log-N routing.

The paper sets the finger table size so every server knows every peer
("one hop DHT routing" [13]) because query-processing clusters are small
and stable.  This bench quantifies what that buys: average lookup hops
and the implied lookup latency at a 0.2 ms per-hop network latency.
"""

from benchmarks.conftest import record_report, run_once
from repro.common.hashing import HashSpace
from repro.dht.finger import RoutingTable
from repro.dht.ring import ConsistentHashRing
from repro.experiments.common import ExperimentResult, format_rows

HOP_LATENCY = 0.0002  # the testbed's per-message latency


def sweep(cluster_sizes=(8, 16, 32, 64, 128), probes: int = 64):
    result = ExperimentResult(
        title="Ablation: one-hop vs Chord routing",
        x_label="# of servers",
        x_values=list(cluster_sizes),
    )
    onehop_hops, chord_hops, chord_us = [], [], []
    table_entries = []
    for n in cluster_sizes:
        space = HashSpace(1 << 32)
        ring = ConsistentHashRing(space)
        for i in range(n):
            ring.add_node(f"n{i}")
        keys = [space.key_of(f"probe-{k}") for k in range(probes)]
        onehop = RoutingTable(ring, one_hop=True)
        chord = RoutingTable(ring, one_hop=False)
        starts = ring.nodes[: min(8, n)]
        onehop_hops.append(onehop.average_hops(keys, starts))
        avg = chord.average_hops(keys, starts)
        chord_hops.append(avg)
        chord_us.append(avg * HOP_LATENCY * 1e6)
        table_entries.append(len(chord.table(ring.nodes[0]).entries))
    result.add("one-hop avg hops", onehop_hops)
    result.add("chord avg hops", chord_hops)
    result.add("chord lookup (us)", chord_us)
    result.add("chord finger entries", table_entries)
    return result


def test_ablation_routing(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: routing", format_rows(result, unit=""))
    onehop = result.series["one-hop avg hops"]
    chord = result.series["chord avg hops"]
    entries = result.series["chord finger entries"]
    # One-hop lookups never exceed a single forward.
    assert all(h <= 1.0 for h in onehop)
    # Chord hop count grows with the cluster; one-hop stays flat.
    assert chord[-1] > chord[0]
    assert chord[-1] > 2.0
    # Chord's table stays logarithmic -- the price one-hop pays is O(n)
    # entries, which the paper argues is fine below a few thousand nodes.
    assert entries[-1] <= 2 * len(bin(128))  # ~O(log n)
