"""Ablation: record-level compute skew (the paper's §I page rank claim).

"Even if input data blocks are evenly assigned to servers, some map tasks
may take longer ... if certain input data blocks require more
computations.  page rank is an application of this type."  The bench runs
the same workload with and without per-block compute skew under both
schedulers and reports the makespan inflation.
"""

from dataclasses import replace

from benchmarks.conftest import record_report, run_once
from repro.experiments.common import ExperimentResult, format_rows, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES


def _run(scheduler: str, skew: float, blocks: int = 384) -> float:
    """kmeans-shaped compute (no shuffle noise) with adjustable skew."""
    app = replace(APP_PROFILES["kmeans"], compute_skew=skew)
    config = paper_cluster()
    engine = PerfEngine(config, eclipse_framework(scheduler))
    layout = dht_layout(engine.space, engine.ring, "skewed", blocks, config.dfs.block_size)
    return engine.run_job(SimJobSpec(app=app, tasks=layout, label="cs")).makespan


def sweep():
    skews = (0.0, 0.4, 0.8, 1.2)
    result = ExperimentResult(
        title="Ablation: record-level compute skew (lognormal sigma)",
        x_label="compute skew sigma",
        x_values=list(skews),
    )
    result.add("LAF", [_run("laf", s) for s in skews])
    result.add("Delay", [_run("delay", s) for s in skews])
    return result


def test_ablation_compute_skew(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: compute skew", format_rows(result))
    laf = result.series["LAF"]
    delay = result.series["Delay"]
    # Straggler tails inflate the makespan as skew grows, under any policy.
    assert laf[-1] > laf[0]
    assert delay[-1] > delay[0]
    # LAF stays at least as fast as delay at every skew level: hash-range
    # scheduling cannot fix record-level skew (neither can delay), but its
    # even task spread keeps the tail no worse.
    for l, d in zip(laf, delay):
        assert l <= d * 1.05
