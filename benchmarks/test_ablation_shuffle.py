"""Ablation: proactive shuffle vs Hadoop-style pull shuffle.

Same EclipseMR framework, same LAF scheduler, same cluster -- only the
shuffle mode changes.  On the shuffle-heavy ``sort`` the proactive push
overlaps the transfer with map compute and skips the mapper-side disk
round-trip, which is §II-D's entire argument.
"""

from dataclasses import replace

from benchmarks.conftest import record_report, run_once
from repro.experiments.common import ExperimentResult, format_rows, job, paper_cluster
from repro.perfmodel.engine import PerfEngine
from repro.perfmodel.framework import eclipse_framework

APPS = ("sort", "invertedindex", "wordcount")


def _run(shuffle_mode: str, app: str, blocks: int = 128) -> float:
    fw = replace(eclipse_framework("laf"), shuffle_mode=shuffle_mode)
    engine = PerfEngine(paper_cluster(), fw)
    return engine.run_job(job(engine, app, blocks=blocks)).makespan


def sweep():
    result = ExperimentResult(
        title="Ablation: proactive vs pull shuffle (EclipseMR otherwise)",
        x_label="application",
        x_values=list(APPS),
    )
    result.add("proactive", [_run("proactive", a) for a in APPS])
    result.add("pull", [_run("pull", a) for a in APPS])
    return result


def test_ablation_shuffle(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: shuffle mode", format_rows(result))
    pro = dict(zip(APPS, result.series["proactive"]))
    pull = dict(zip(APPS, result.series["pull"]))
    # The win is largest on sort (shuffle ratio 1.0)...
    assert pro["sort"] < pull["sort"]
    sort_delta = pull["sort"] - pro["sort"]
    wc_delta = pull["wordcount"] - pro["wordcount"]
    # ...and small on wordcount (shuffle ratio 0.05): the absolute seconds
    # saved scale with the bytes shuffled.
    assert sort_delta > 2 * wc_delta
