"""Observability overhead bench: the endpoint must cost ~nothing idle.

Runs the same wordcount stream twice on a real localhost cluster --
observe disabled vs observe **enabled but never scraped** -- and
compares mean job latency.  Enabled-but-unscraped is the critical
configuration: the server holds an idle listening socket and performs
zero sampling RPCs until a scrape arrives, so the two streams should be
statistically indistinguishable.  A third pass scrapes ``/metrics``
continuously to price an aggressive scraper (bounded by
``observe.sample_interval`` rate-limiting, reported, not asserted).

Artifacts:

* ``BENCH_observe.json`` at the repo root -- the numbers;
* ``OBSERVE_SCRAPE.txt`` at the repo root -- one captured ``/metrics``
  body from the scraped pass, uploaded by CI so the exposition format
  is reviewable per commit.

The overhead assertion is deliberately generous (enabled-unscraped mean
within 25% + 50ms of disabled): localhost process scheduling is noisy
and CI shares cores; the point is catching a structural regression
(sampling on the hot path, a lock on the data plane), not a 1% drift.
``BENCH_QUICK=1`` shrinks the stream for CI smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_observe_overhead.py -q
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

from benchmarks.conftest import record_report
from repro.apps.wordcount import wordcount_job
from repro.apps.workloads import pack_records, text_corpus
from repro.cluster.runtime import ClusterRuntime
from repro.common.config import ClusterConfig, DFSConfig, ObserveConfig

QUICK = bool(os.environ.get("BENCH_QUICK"))
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_observe.json"
SCRAPE_PATH = ROOT / "OBSERVE_SCRAPE.txt"

N_WORKERS = 3
BLOCK_SIZE = 8 * 1024
STREAM_JOBS = 4 if QUICK else 8


def _config(observe: ObserveConfig | None = None) -> ClusterConfig:
    return ClusterConfig(
        dfs=DFSConfig(block_size=BLOCK_SIZE),
        observe=observe or ObserveConfig(),
    )


def _run_stream(observe: ObserveConfig | None, scrape: bool = False) -> dict:
    """Mean/max job latency over a wordcount stream; optionally scraping."""
    corpus = pack_records(
        text_corpus(23, num_words=2400, vocab_size=60), BLOCK_SIZE
    )
    latencies: list[float] = []
    scrapes = 0
    captured: str | None = None
    with ClusterRuntime(N_WORKERS, _config(observe)) as rt:
        rt.upload("observe.txt", corpus)
        stop = threading.Event()
        scraper = None
        if scrape:
            url = rt.observer.url + "/metrics"

            def hammer() -> None:
                nonlocal scrapes, captured
                while not stop.is_set():
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        captured = resp.read().decode()
                    scrapes += 1

            scraper = threading.Thread(target=hammer, daemon=True)
            scraper.start()
        reference = None
        try:
            for i in range(STREAM_JOBS):
                started = time.perf_counter()
                result = rt.run(wordcount_job("observe.txt", app_id=f"obs-{i}"))
                latencies.append(time.perf_counter() - started)
                if reference is None:
                    reference = result.output
                assert result.output == reference  # bit-equal under scraping
        finally:
            stop.set()
            if scraper is not None:
                scraper.join(timeout=10.0)
        if scrape:
            # One last body with every job's metrics in it -- the
            # artifact CI uploads for format review.
            with urllib.request.urlopen(url, timeout=10) as resp:
                captured = resp.read().decode()
            scrapes += 1
            assert rt.observer is not None
    if captured is not None:
        SCRAPE_PATH.write_text(captured)
    return {
        "jobs": STREAM_JOBS,
        "mean_ms": round(sum(latencies) / len(latencies) * 1000, 1),
        "max_ms": round(max(latencies) * 1000, 1),
        "scrapes": scrapes,
    }


def test_observe_overhead(benchmark):
    def run() -> dict:
        disabled = _run_stream(None)
        unscraped = _run_stream(ObserveConfig(enabled=True, port=0))
        scraped = _run_stream(
            ObserveConfig(enabled=True, port=0, sample_interval=0.25),
            scrape=True,
        )
        return {
            "quick": QUICK,
            "workers": N_WORKERS,
            "disabled": disabled,
            "enabled_unscraped": unscraped,
            "enabled_scraped": scraped,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Observe overhead", json.dumps(results, indent=2))

    # Zero measurable overhead enabled-but-unscraped: the server must
    # not touch the data plane until a scrape arrives.  Generous noise
    # bound -- structural regressions are 2x+, localhost jitter is not.
    disabled_ms = results["disabled"]["mean_ms"]
    unscraped_ms = results["enabled_unscraped"]["mean_ms"]
    assert unscraped_ms <= disabled_ms * 1.25 + 50.0, (
        f"enabled-but-unscraped mean {unscraped_ms}ms vs "
        f"disabled {disabled_ms}ms: observe is costing the data plane"
    )

    # The scraped pass produced a reviewable exposition artifact.
    assert results["enabled_scraped"]["scrapes"] >= 1
    body = SCRAPE_PATH.read_text()
    assert body.startswith("# TYPE ") and body.endswith("\n")
    assert 'worker_id="worker-0"' in body
