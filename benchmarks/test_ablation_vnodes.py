"""Ablation: virtual nodes vs LAF — two fixes for two different skews.

Virtual nodes even out key-*space* ownership (placement skew) and even
absorb *smooth* popularity skew (a wide hot region covers many scattered
virtual arcs).  What they cannot fix is *discrete* hot keys: a popular
block hashes to exactly one server no matter how many tokens exist.  LAF
re-cuts ranges from observed accesses -- and for a single hot key its
degenerate ranges share the key across workers (paper §II-E's extreme
example).  That is the design argument for building a scheduler instead
of relying on classic consistent-hashing tricks.
"""

import numpy as np

from benchmarks.conftest import record_report, run_once
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.dht.ring import ConsistentHashRing
from repro.dht.vnodes import VirtualNodeRing
from repro.experiments.common import ExperimentResult, format_rows
from repro.scheduler.laf import LAFScheduler

N_SERVERS = 10
N_TASKS = 4000


def _cv(counts: dict) -> float:
    arr = np.array(list(counts.values()), dtype=float)
    return float(arr.std() / arr.mean())


def _uniform_keys(space, rng):
    return rng.integers(0, space.size, size=N_TASKS)


def _hot_block_keys(space, rng):
    """80% of accesses hammer 5 discrete block keys (Fig. 7-style reuse)."""
    hot = [space.key_of(f"hot-block-{i}") for i in range(5)]
    picks = rng.integers(0, 5, size=int(N_TASKS * 0.8))
    uniform = rng.integers(0, space.size, size=N_TASKS - len(picks))
    keys = np.concatenate([np.array([hot[p] for p in picks]), uniform])
    rng.shuffle(keys)
    return keys


def sweep():
    space = HashSpace(1 << 32)
    rng = derive_rng(42, "vnode-ablation")
    servers = [f"s{i}" for i in range(N_SERVERS)]

    plain = ConsistentHashRing(space)
    for s in servers:
        plain.add_node(s)
    virtual = VirtualNodeRing(space, vnodes=64)
    for s in servers:
        virtual.add_node(s)

    result = ExperimentResult(
        title="Ablation: single-token ring vs virtual nodes vs LAF (assignment CV)",
        x_label="workload",
        x_values=["uniform keys", "5 hot blocks"],
    )
    rows = {"1 token/server": [], "64 vnodes/server": [], "LAF": []}
    for make_keys in (_uniform_keys, _hot_block_keys):
        keys = make_keys(space, rng)
        counts_plain = {s: 0 for s in servers}
        counts_virtual = {s: 0 for s in servers}
        for k in keys:
            counts_plain[plain.owner_of(int(k))] += 1
            counts_virtual[virtual.owner_of(int(k))] += 1
        from repro.common.config import SchedulerConfig

        # A responsive alpha: one batch must be enough to adapt (the
        # paper's 0.001 is tuned for long job streams; see the drift
        # supplementary experiment for the timescale).
        laf = LAFScheduler(space, servers, SchedulerConfig(alpha=0.5, window_tasks=64))
        for k in keys:
            a = laf.assign(hash_key=int(k))
            laf.notify_start(a.server)
            laf.notify_finish(a.server)
        rows["1 token/server"].append(_cv(counts_plain))
        rows["64 vnodes/server"].append(_cv(counts_virtual))
        rows["LAF"].append(_cv(laf.assigned_counts))
    for name, vals in rows.items():
        result.add(name, vals)
    result.note("vnodes fix placement skew; only LAF also spreads discrete hot keys")
    return result


def test_ablation_vnodes(benchmark):
    result = run_once(benchmark, sweep)
    record_report("Ablation: virtual nodes vs LAF", format_rows(result, unit=""))
    plain = result.series["1 token/server"]
    vnode = result.series["64 vnodes/server"]
    laf = result.series["LAF"]

    # Uniform keys: vnodes cut the single-token ring's imbalance hard.
    assert vnode[0] < 0.5 * plain[0]
    # Discrete hot keys: each hot block still lands on one server no
    # matter the token count -- vnodes degrade badly...
    assert vnode[1] > 3 * vnode[0]
    # ...while LAF's degenerate ranges share the hot keys across workers.
    assert laf[1] < 0.5 * vnode[1]
