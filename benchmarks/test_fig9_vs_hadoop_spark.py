"""Fig. 9 bench: EclipseMR vs Hadoop vs Spark across the six applications."""

import math

from benchmarks.conftest import run_once
from repro.experiments.fig9_frameworks import format_table, normalized, run


def test_fig9_framework_comparison(benchmark, report):
    result = run_once(benchmark, run, base_blocks=128)
    report("Fig. 9: vs Hadoop and Spark", format_table(result))

    apps = result.x_values
    ecl = dict(zip(apps, result.series["EclipseMR"]))
    spk = dict(zip(apps, result.series["Spark"]))
    had = dict(zip(apps, result.series["Hadoop"]))

    # EclipseMR is fastest on every app except page rank.
    for app in ("invertedindex", "wordcount", "sort", "kmeans", "logreg"):
        assert ecl[app] < spk[app], f"{app}: EclipseMR vs Spark"
        if not math.isnan(had[app]):
            assert ecl[app] < had[app], f"{app}: EclipseMR vs Hadoop"

    # The iterative gaps: kmeans ~3.5x, logreg ~2.5x vs Spark (allow a
    # generous band: we assert "well over 1.5x").
    assert spk["kmeans"] > 1.5 * ecl["kmeans"]
    assert spk["logreg"] > 1.5 * ecl["logreg"]

    # Page rank is the one app where EclipseMR does NOT dominate: the
    # paper has Spark ~15% ahead over 2 iterations.  Our model reproduces
    # the *steady-state* crossover (see Fig. 10) but at 2 iterations the
    # total is dominated by Spark's RDD build and final save, so here we
    # assert page rank is merely "close" -- the two frameworks within 2x
    # -- in contrast to the 3-6x EclipseMR wins elsewhere.  Deviation
    # documented in EXPERIMENTS.md.
    assert ecl["pagerank"] < 2.0 * spk["pagerank"]
    assert spk["pagerank"] < 2.0 * ecl["pagerank"]
    km_gap = spk["kmeans"] / ecl["kmeans"]
    pr_gap = spk["pagerank"] / ecl["pagerank"]
    assert pr_gap < km_gap  # page rank is Spark's best showing among the iterative apps

    # Hadoop is far behind on the compute-iterative apps (the paper calls
    # it an order of magnitude and omits the bars; our model, which does
    # not charge JVM startup per iteration beyond the containers, puts it
    # at ~2.5-4x -- documented in EXPERIMENTS.md).
    assert had["kmeans"] > 2.2 * ecl["kmeans"]

    # Normalization sanity: the slowest framework per app maps to 1.0.
    norm = normalized(result)
    for i in range(len(apps)):
        col = [norm[k][i] for k in norm if not math.isnan(norm[k][i])]
        assert max(col) == 1.0
