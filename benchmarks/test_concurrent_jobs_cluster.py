"""Multi-job scheduler bench: makespan and fairness under concurrent load.

Submits N wordcount jobs whose map functions each bear a fixed device-like
latency (modeling the paper's disk-bound map tasks) against one live
4-worker cluster and measures:

* the serial baseline -- each job run to completion before the next
  starts (``run()`` in a loop), whose wall-clocks sum to ``serial.sum_s``;
* concurrent makespan under the FIFO inter-job policy (``submit_many``,
  wait for all handles) -- overlapping jobs keep workers busy through
  each other's map/reduce barriers, so the makespan must beat the serial
  sum;
* concurrent makespan under the fair-share policy, plus the fairness
  spread (max - min of per-job makespans from ``JobHandle.metrics()``) --
  fair sharing interleaves jobs instead of draining them in order, so
  the spread tightens while the makespan stays well under serial;
* a chaos scenario: a worker is SIGKILLed while two submitted jobs are
  both mid-map; both must still finish correct via per-job surgical
  failover.

Results land in ``BENCH_concurrent_jobs.json`` at the repo root so CI
can archive them and ``tools/bench_diff.py`` can trend them
(``makespan``/``spread``/``wait`` leaves diff as lower-is-better).
``BENCH_QUICK=1`` shrinks the map latency for smoke runs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_concurrent_jobs_cluster.py -q
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from pathlib import Path

from benchmarks.conftest import record_report
from repro.common.config import ClusterConfig, DFSConfig, JobsConfig
from repro.cluster.runtime import ClusterRuntime
from repro.jobs.scheduler import JobScheduler
from repro.mapreduce.job import MapReduceJob

QUICK = bool(os.environ.get("BENCH_QUICK"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_concurrent_jobs.json"

N_WORKERS = 4
N_JOBS = 4
BLOCK_SIZE = 2048
N_BLOCKS = 3  # maps per job: small jobs cannot saturate the cluster alone
MAP_DELAY_S = 0.04 if QUICK else 0.15


def _cluster_config() -> ClusterConfig:
    return ClusterConfig(
        dfs=DFSConfig(block_size=BLOCK_SIZE),
        jobs=JobsConfig(max_active_jobs=N_JOBS),
    )


def _corpus() -> bytes:
    """~N_BLOCKS blocks of deterministic words."""
    vocabulary = [f"word{i:03d}" for i in range(60)]
    words = []
    size = 0
    target = N_BLOCKS * BLOCK_SIZE - BLOCK_SIZE // 4
    i = 0
    while size < target:
        word = vocabulary[i % len(vocabulary)]
        words.append(word)
        size += len(word) + 1
        i += 1
    return " ".join(words).encode()


def _make_slow_map(delay_s: float):
    def map_fn(data):
        time.sleep(delay_s)  # the device access the map is bound on
        for word in bytes(data).decode().split():
            yield word, 1

    return map_fn


def _reduce_fn(key, values):
    return sum(values)


def _job(app_id: str) -> MapReduceJob:
    return MapReduceJob(app_id=app_id, input_file="jobs.txt",
                       map_fn=_make_slow_map(MAP_DELAY_S), reduce_fn=_reduce_fn)


def _bench_serial(rt: ClusterRuntime, reference: dict) -> dict:
    per_job = []
    for i in range(N_JOBS):
        started = time.perf_counter()
        result = rt.run(_job(f"serial-{i}"))
        per_job.append(time.perf_counter() - started)
        assert result.output == reference
    return {
        "jobs": N_JOBS,
        "sum_s": round(sum(per_job), 3),
        "mean_job_s": round(sum(per_job) / len(per_job), 3),
    }


def _bench_concurrent(rt: ClusterRuntime, policy: str, serial_sum_s: float,
                      reference: dict) -> dict:
    started = time.perf_counter()
    handles = rt.jobs.submit_many([_job(f"{policy}-{i}") for i in range(N_JOBS)])
    results = [h.result(timeout=300) for h in handles]
    makespan_s = time.perf_counter() - started
    for result in results:
        assert result.output == reference
    job_spans = [h.metrics()["makespan_s"] for h in handles]
    queue_waits = [h.metrics()["queue_wait_s"] for h in handles]
    return {
        "jobs": N_JOBS,
        "makespan_s": round(makespan_s, 3),
        "speedup_vs_serial": round(serial_sum_s / makespan_s, 2),
        "fairness_spread_s": round(max(job_spans) - min(job_spans), 3),
        "queue_wait_max_s": round(max(queue_waits), 3),
    }


def _bench_chaos(rt: ClusterRuntime, reference: dict) -> dict:
    """Kill a worker with two jobs mid-map; both must finish correct."""
    failovers_before = rt.metrics.counter("cluster.failovers").value
    kills = []

    def chaos(_done_maps: int) -> None:
        kills.append(1)
        if len(kills) == 3:  # both jobs still have most maps outstanding
            rt.kill_worker(rt.worker_ids[-1])

    rt.on_map_complete = chaos
    try:
        started = time.perf_counter()
        handles = rt.jobs.submit_many([_job("chaos-a"), _job("chaos-b")])
        results = [h.result(timeout=300) for h in handles]
        makespan_s = time.perf_counter() - started
    finally:
        rt.on_map_complete = None
    for result in results:
        assert result.output == reference
    failovers = rt.metrics.counter("cluster.failovers").value - failovers_before
    return {
        "jobs": 2,
        "makespan_s": round(makespan_s, 3),
        "failovers": failovers,
        "tasks_reexecuted": rt.metrics.counter("cluster.tasks_reexecuted").value,
        "survivors": len(rt.worker_ids),
    }


def _swap_policy(rt: ClusterRuntime, policy: str) -> None:
    rt.jobs.shutdown()
    JobScheduler(rt, policy=policy)  # registers itself on the runtime


def test_concurrent_jobs(benchmark):
    def run() -> dict:
        data = _corpus()
        reference = dict(Counter(data.decode().split()))
        results = {"quick": QUICK, "workers": N_WORKERS, "jobs": N_JOBS,
                   "maps_per_job": N_BLOCKS,
                   "map_delay_ms": MAP_DELAY_S * 1e3}
        with ClusterRuntime(N_WORKERS, _cluster_config()) as rt:
            rt.upload("jobs.txt", data)
            results["serial"] = _bench_serial(rt, reference)
            serial_sum = results["serial"]["sum_s"]
            results["fifo"] = _bench_concurrent(rt, "fifo", serial_sum, reference)
            _swap_policy(rt, "fair")
            results["fair"] = _bench_concurrent(rt, "fair", serial_sum, reference)
            _swap_policy(rt, "fifo")
            results["chaos"] = _bench_chaos(rt, reference)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    record_report("Concurrent jobs", json.dumps(results, indent=2))

    # The scheduler exists to overlap jobs: N small jobs submitted
    # together must beat running them back to back, under both policies.
    assert results["fifo"]["makespan_s"] < results["serial"]["sum_s"]
    assert results["fair"]["makespan_s"] < results["serial"]["sum_s"]
    # Losing a worker mid-flight must trigger (exactly one) failover and
    # still complete every job -- checked against the reference above.
    assert results["chaos"]["failovers"] == 1
    assert results["chaos"]["survivors"] == N_WORKERS - 1
