"""Fig. 5 bench: DHT file system vs HDFS IO throughput, 6..38 nodes."""

from benchmarks.conftest import run_once
from repro.experiments.fig5_io import format_table, run


def test_fig5_io_throughput(benchmark, report):
    result = run_once(benchmark, run, node_counts=(6, 14, 22, 30, 38), blocks_per_node=8)
    report("Fig. 5: IO throughput", format_table(result))

    dht_task = result.series["DHT/task (MB/s)"]
    hdfs_task = result.series["HDFS/task (MB/s)"]
    dht_job = result.series["DHT/job (MB/s)"]
    hdfs_job = result.series["HDFS/job (MB/s)"]

    # 5(a): per-map-task throughput is essentially the same disks -- the
    # two file systems tie within 20%.
    for d, h in zip(dht_task, hdfs_task):
        assert abs(d - h) / max(d, h) < 0.2

    # 5(b): per-job throughput: the DHT file system wins at every size
    # because Hadoop pays NameNode, container and scheduling overheads.
    # (The paper's gap is ~2x; ours narrows toward ~1.4x at 38 nodes.)
    for d, h in zip(dht_job, hdfs_job):
        assert d > 1.3 * h

    # Aggregate job throughput grows with the cluster (more spindles).
    assert dht_job[-1] > dht_job[0]
