"""Supplementary bench: NameNode scalability under concurrent DFSIO."""

from benchmarks.conftest import record_report, run_once
from repro.experiments.supp_namenode import format_table, run


def test_namenode_scalability(benchmark):
    result = run_once(benchmark, run, job_counts=(1, 2, 4, 8), blocks_per_job=80, num_nodes=20)
    record_report("Supplementary: NameNode scalability", format_table(result))

    dht = result.series["DHT agg (MB/s)"]
    hdfs = result.series["HDFS agg (MB/s)"]
    waits = result.series["NameNode mean wait (ms)"]

    # The DHT file system beats HDFS at every concurrency level.
    for d, h in zip(dht, hdfs):
        assert d > h
    # Under concurrency HDFS stays pinned far below the DHT file system's
    # (disk-bound) aggregate: the metadata path caps its scaling.  (The
    # paper reports outright degradation; an open queueing model shows a
    # hard ceiling instead -- same conclusion, see EXPERIMENTS.md.)
    assert hdfs[-1] < 0.65 * dht[-1]
    # The central queue is the mechanism: at any concurrency >= 2 the mean
    # NameNode wait dwarfs the uncontended 30 ms service time.
    assert max(waits[1:]) > 300.0
    # The decentralized side never regresses with added jobs (it is
    # already near its disk-bound aggregate at one job thanks to aligned
    # local reads).
    assert dht[-1] >= dht[0]
