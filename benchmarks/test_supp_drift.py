"""Supplementary bench: alpha under drifting popularity (time series)."""

from benchmarks.conftest import record_report, run_once
from repro.experiments.supp_drift import format_table, run


def test_alpha_under_drift(benchmark):
    result = run_once(benchmark, run, num_tasks=4000)
    record_report("Supplementary: alpha under drift", format_table(result))

    static = dict(zip(result.x_values, result.series["static hot spot"]))
    slow = dict(zip(result.x_values, result.series["drift x0.25"]))
    fast = dict(zip(result.x_values, result.series["drift x2"]))

    # Overload falls monotonically with alpha in every drift regime: the
    # moving average adapts on a ~1/alpha-window timescale, so within one
    # batch a larger alpha always rebalances faster.
    order = ("0.0", "0.001", "0.01", "0.1", "1.0")
    for col in (static, slow, fast):
        for lo, hi in zip(order, order[1:]):
            assert col[hi] <= col[lo] + 1.0
    # Fast drift: alpha = 1 sheds most of the overload alpha = 0.001 keeps.
    assert fast["1.0"] < 0.7 * fast["0.001"]
    # The flip side of the paper's alpha = 0.001 choice: within one batch
    # its ranges barely move (near the frozen baseline), which is what
    # preserves cache affinity -- Fig. 7 measures exactly this as the
    # higher hit ratio of small alpha.
    assert static["0.001"] > 0.9 * static["0.0"]
