"""The circular hash key space used by both Chord rings.

EclipseMR hangs everything off consistent hashing: file metadata placement,
block placement, cache lookup, and the LAF scheduler's histogram all operate
on keys drawn from one circular space ("Filesystem Hash = SHA1" in Fig. 2).

We model the space as the integers ``[0, size)`` with wrap-around.  The
paper's prose examples use a tiny space (``[0, 140)`` in Fig. 3); production
keys are SHA-1 digests truncated into the configured space.  Making the
size explicit lets unit tests reproduce the paper's worked examples exactly
while experiments run on the full 2**64 space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

__all__ = ["HashSpace", "KeyRange", "DEFAULT_SPACE"]


class HashSpace:
    """A circular integer key space ``[0, size)``.

    Instances are immutable and cheap; they provide deterministic key
    derivation (SHA-1, as in the paper) and modular arithmetic helpers.
    """

    __slots__ = ("_size",)

    def __init__(self, size: int = 2**64) -> None:
        if size < 2:
            raise ValueError(f"hash space must have at least 2 keys, got {size}")
        self._size = int(size)

    @property
    def size(self) -> int:
        """Number of distinct keys in the space."""
        return self._size

    def key_of_bytes(self, data: bytes) -> int:
        """SHA-1 of ``data`` reduced into the space."""
        digest = hashlib.sha1(data).digest()
        return int.from_bytes(digest, "big") % self._size

    def key_of(self, name: str) -> int:
        """SHA-1 key of a UTF-8 string (file names, cache tags...)."""
        return self.key_of_bytes(name.encode("utf-8"))

    def block_key(self, file_name: str, index: int) -> int:
        """Deterministic key for block ``index`` of ``file_name``.

        The paper spreads a file's blocks across the ring "using their hash
        keys"; deriving the key from ``(file name, block index)`` gives a
        stable, uniformly spread placement without needing block contents.
        """
        return self.key_of(f"{file_name}\x00block\x00{index}")

    def contains(self, key: int) -> bool:
        """Whether ``key`` is a valid key in this space."""
        return 0 <= key < self._size

    def validate(self, key: int) -> int:
        """Return ``key`` if valid, else raise ``ValueError``."""
        if not self.contains(key):
            raise ValueError(f"key {key} outside hash space [0, {self._size})")
        return key

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end`` (0 when equal)."""
        return (end - start) % self._size

    def add(self, key: int, delta: int) -> int:
        """Move ``delta`` steps clockwise from ``key`` (modular)."""
        return (key + delta) % self._size

    def in_range(self, key: int, start: int, end: int) -> bool:
        """Whether ``key`` lies in the half-open clockwise arc ``[start, end)``.

        When ``start == end`` the arc covers the whole circle, matching how a
        single-server ring owns every key.
        """
        if start == end:
            return True
        return self.distance(start, key) < self.distance(start, end)

    def range(self, start: int, end: int) -> "KeyRange":
        """Construct a :class:`KeyRange` in this space."""
        return KeyRange(self, start, end)

    def full_range(self, anchor: int = 0) -> "KeyRange":
        """The whole circle expressed as ``[anchor, anchor)``."""
        return KeyRange(self, anchor, anchor)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashSpace) and other._size == self._size

    def __hash__(self) -> int:
        return hash(("HashSpace", self._size))

    def __repr__(self) -> str:
        return f"HashSpace(size={self._size})"


@dataclass(frozen=True)
class KeyRange:
    """A half-open clockwise arc ``[start, end)`` on a :class:`HashSpace`.

    ``start == end`` denotes the *full circle* (the natural limit of a range
    growing until it wraps onto itself), never the empty range: an empty hash
    key range can own nothing and never appears in a consistent hash ring.
    The paper's LAF scheduler can, however, produce *degenerate* ranges for
    servers whose popularity share is ~0; those are represented explicitly
    by :meth:`KeyRange.degenerate` sentinels in the scheduler layer rather
    than by empty arcs here.
    """

    space: HashSpace
    start: int
    end: int

    def __post_init__(self) -> None:
        self.space.validate(self.start)
        self.space.validate(self.end)

    @property
    def is_full(self) -> bool:
        """True when the arc covers the entire circle."""
        return self.start == self.end

    def __contains__(self, key: int) -> bool:
        return self.space.in_range(key, self.start, self.end)

    def __len__(self) -> int:
        """Number of keys covered (the full space when ``start == end``)."""
        if self.is_full:
            return self.space.size
        return self.space.distance(self.start, self.end)

    def wraps(self) -> bool:
        """Whether the arc crosses the zero point of the circle."""
        return self.end < self.start or self.is_full

    def split(self, at: int) -> tuple["KeyRange", "KeyRange"]:
        """Split into ``[start, at)`` and ``[at, end)``.

        ``at`` must lie strictly inside the range (and differ from
        ``start``), otherwise one half would be empty.
        """
        if at == self.start or (not self.is_full and at not in self):
            raise ValueError(f"split point {at} not strictly inside {self}")
        return (
            KeyRange(self.space, self.start, at),
            KeyRange(self.space, at, self.end),
        )

    def iter_keys(self) -> Iterator[int]:
        """Iterate every key in the arc (for tiny spaces in tests only)."""
        key = self.start
        for _ in range(len(self)):
            yield key
            key = self.space.add(key, 1)

    def __repr__(self) -> str:
        return f"[{self.start}~{self.end})"


DEFAULT_SPACE = HashSpace(2**64)
"""The space experiments run on unless they override it."""
