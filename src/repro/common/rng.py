"""Seeded random-number streams.

Every stochastic component (workload generators, failure injection, the
synthetic skew of Fig. 7) draws from an explicitly derived stream so whole
experiments replay bit-identically from one root seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedSequenceFactory", "derive_rng"]


def derive_rng(root_seed: int, *path: object) -> np.random.Generator:
    """A generator deterministically derived from ``root_seed`` and a path.

    ``derive_rng(7, "workload", 3)`` always yields the same stream, and
    streams with different paths are statistically independent (numpy
    ``SeedSequence`` spawning under the hood).
    """
    entropy = [root_seed] + [_path_component(p) for p in path]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def _path_component(p: object) -> int:
    if isinstance(p, bool):
        return int(p)
    if isinstance(p, int):
        return p & 0xFFFFFFFF
    # Stable string hash (Python's hash() is salted per process).
    acc = 2166136261
    for b in str(p).encode("utf-8"):
        acc = ((acc ^ b) * 16777619) & 0xFFFFFFFF
    return acc


class SeedSequenceFactory:
    """Hands out independent child generators from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root = int(root_seed)
        self._count = 0

    @property
    def root_seed(self) -> int:
        return self._root

    def named(self, *path: object) -> np.random.Generator:
        """Stream identified by a stable path (preferred)."""
        return derive_rng(self._root, *path)

    def fresh(self) -> np.random.Generator:
        """Stream identified by creation order (for anonymous consumers)."""
        self._count += 1
        return derive_rng(self._root, "__fresh__", self._count)
