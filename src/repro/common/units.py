"""Byte and time unit helpers.

The paper quotes sizes as ``128 MB`` blocks, ``250 GB`` datasets and
``32 MB`` spill buffers; expressing them the same way in code keeps the
experiment definitions readable and greppable against the paper text.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

_BYTE_STEPS = ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"))


def fmt_bytes(n: int | float) -> str:
    """Render a byte count with a binary-unit suffix (``"1.5 GB"``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{sign}{n / step:.4g} {suffix}"
    return f"{sign}{n:.4g} B"


def fmt_seconds(t: float) -> str:
    """Render a duration in the most natural unit (``"3.2 s"``, ``"2.1 min"``)."""
    if t < 0:
        return "-" + fmt_seconds(-t)
    if t < 1e-3:
        return f"{t * 1e6:.3g} us"
    if t < 1.0:
        return f"{t * 1e3:.3g} ms"
    if t < 120.0:
        return f"{t:.3g} s"
    if t < 7200.0:
        return f"{t / 60.0:.3g} min"
    return f"{t / 3600.0:.3g} h"
