"""Exception hierarchy for the EclipseMR reproduction.

Every exception raised by this library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class RingError(ReproError):
    """A consistent-hash-ring operation failed (empty ring, unknown node...)."""


class FileSystemError(ReproError):
    """Base class for DHT file system failures."""


class FileNotFound(FileSystemError):
    """The requested file has no metadata record on the ring."""


class BlockNotFound(FileSystemError):
    """A block id resolved to a server that does not hold the block."""


class PermissionDenied(FileSystemError):
    """The file metadata owner rejected the access."""


class CacheMiss(ReproError):
    """Raised by strict cache lookups when the key is absent."""


class SchedulingError(ReproError):
    """The scheduler could not produce a valid assignment."""


class SerializationError(ReproError):
    """A value could not be serialized for the wire (or deserialized back)."""


class NetworkError(ReproError):
    """Base class for wire-protocol and RPC failures."""


class FramingError(NetworkError):
    """A malformed frame: bad magic, bad version, or an oversized length."""


class RpcConnectionError(NetworkError):
    """The transport failed: could not connect, or the peer went away."""


class RpcTimeout(NetworkError):
    """An RPC call did not complete within its per-call timeout."""


class RpcRemoteError(NetworkError):
    """The remote handler raised; carries the remote exception's identity.

    ``data`` is an optional structured payload the remote attached to the
    exception (``exc.rpc_data``), e.g. which downstream peer a spill push
    could not reach.
    """

    def __init__(self, etype: str, message: str, data=None) -> None:
        super().__init__(f"{etype}: {message}")
        self.etype = etype
        self.message = message
        self.data = data


class ClusterError(ReproError):
    """A cluster-plane operation failed (startup, dispatch, failover)."""


class WorkerLost(ClusterError):
    """A worker process was declared dead (missed heartbeats or dead TCP)."""

    def __init__(self, worker_id, reason: str = "") -> None:
        super().__init__(f"worker {worker_id!r} lost{': ' + reason if reason else ''}")
        self.worker_id = worker_id
        self.reason = reason


class ClusterBusyError(ClusterError):
    """The cluster is already being driven by another entry point.

    Raised when a second concurrent ``ClusterRuntime.run()`` (or a second
    job scheduler) would share the cluster's LAF/metrics state with an
    execution already in progress.  Use ``submit()`` on the existing
    scheduler instead.
    """


class JobRejected(ClusterError):
    """Admission control refused a job (the bounded submit queue is full)."""


class JobCancelled(ClusterError):
    """The job was cancelled before it produced a result."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""
