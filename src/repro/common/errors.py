"""Exception hierarchy for the EclipseMR reproduction.

Every exception raised by this library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class RingError(ReproError):
    """A consistent-hash-ring operation failed (empty ring, unknown node...)."""


class FileSystemError(ReproError):
    """Base class for DHT file system failures."""


class FileNotFound(FileSystemError):
    """The requested file has no metadata record on the ring."""


class BlockNotFound(FileSystemError):
    """A block id resolved to a server that does not hold the block."""


class PermissionDenied(FileSystemError):
    """The file metadata owner rejected the access."""


class CacheMiss(ReproError):
    """Raised by strict cache lookups when the key is absent."""


class SchedulingError(ReproError):
    """The scheduler could not produce a valid assignment."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""
