"""Configuration dataclasses with the paper's testbed defaults.

The defaults encode the CLUSTER'17 evaluation platform (Section III): a
40-node cluster, 8 map + 8 reduce slots per node, 128 MB blocks, 32 MB spill
buffers, a 5-second delay-scheduling wait, and the LAF weight factor
alpha = 0.001 the authors fix after Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import GB, MB


@dataclass(frozen=True)
class DFSConfig:
    """DHT file system parameters."""

    block_size: int = 128 * MB
    """Fixed block size files are partitioned into (HDFS default, paper §II-A)."""

    replication: int = 2
    """Extra replicas kept on the predecessor and successor (paper §II-A).

    ``replication = 2`` means primary + predecessor copy + successor copy.
    """

    one_hop_routing: bool = True
    """Store the complete finger table per node ("one hop DHT routing" [13])."""

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"block_size must be positive, got {self.block_size}")
        if not 0 <= self.replication <= 2:
            raise ConfigError(
                "replication counts neighbor copies; only the predecessor and "
                f"successor hold replicas, so it must be 0..2, got {self.replication}"
            )


@dataclass(frozen=True)
class CacheConfig:
    """Distributed in-memory cache (iCache + oCache) parameters."""

    capacity_per_server: int = 1 * GB
    """Bytes of cache per worker (paper uses 0..8 GB depending on the figure)."""

    icache_fraction: float = 0.5
    """Fraction of capacity reserved for iCache; the rest backs oCache."""

    default_ttl: float | None = None
    """TTL in seconds for oCache entries; ``None`` disables expiry (paper: app-set)."""

    migrate_misplaced: bool = False
    """Migrate cached objects when LAF moves their range to a neighbor.

    The paper implements this option but disables it for the evaluation
    (§II-E), so the default is off.
    """

    spill_store_bytes: int = 1 * GB
    """Per-worker budget for *persisted* spill objects on the cluster
    plane (the durable copies behind oCache replay, paper §II-C step 5).
    Oldest objects are dropped first when the budget is exceeded; a
    dropped object degrades a later ``reuse_intermediates`` job to
    re-executing that map, never to a wrong answer."""

    eviction: str = "lru"
    """Replacement policy for the iCache/oCache partitions: ``lru``
    (recency only, today's behavior) or ``cost`` (GDSF-style
    frequency x recompute-cost score with aging, the H-SVM-LRU framing
    from PAPERS.md) -- keeps hot or expensive-to-recompute objects over
    merely recent ones on skewed workloads."""

    def __post_init__(self) -> None:
        if self.capacity_per_server < 0:
            raise ConfigError("cache capacity must be non-negative")
        if self.spill_store_bytes < 0:
            raise ConfigError("spill_store_bytes must be non-negative")
        if not 0.0 <= self.icache_fraction <= 1.0:
            raise ConfigError(
                f"icache_fraction must be in [0, 1], got {self.icache_fraction}"
            )
        if self.default_ttl is not None and self.default_ttl <= 0:
            raise ConfigError("default_ttl must be positive or None")
        if self.eviction not in ("lru", "cost"):
            raise ConfigError(
                f"eviction must be 'lru' or 'cost', got {self.eviction!r}"
            )


@dataclass(frozen=True)
class NetConfig:
    """Cluster-plane wire parameters (TCP RPC, retries, heartbeats).

    Only the cluster execution plane (:mod:`repro.cluster`) reads these;
    the sequential, thread-pool, and discrete-event planes ignore them.
    """

    host: str = "127.0.0.1"
    """Interface workers and the coordinator bind and advertise."""

    connect_timeout: float = 5.0
    """Seconds to wait for a TCP connect before the dial fails."""

    call_timeout: float = 30.0
    """Default per-call RPC timeout in seconds."""

    max_frame_bytes: int = 256 * MB
    """Largest frame either side accepts; bigger headers are rejected."""

    rpc_concurrency: int = 16
    """Handler threads per accepted connection: how many pipelined
    requests one connection executes concurrently server-side."""

    max_in_flight: int = 64
    """Per-connection in-flight request window: ``call_async`` blocks once
    this many requests are awaiting responses on one connection, so fan-in
    can no longer grow either peer's memory without bound."""

    stream_page_bytes: int = 4 * MB
    """Page threshold for streamed responses: a reduce output whose
    serialized size exceeds this is returned as a sequence of out-of-band
    page frames (each roughly this large) instead of one giant envelope."""

    compression: str = "none"
    """Codec for out-of-band payloads (spill pushes, blob responses,
    stream pages): ``none`` (bit-identical wire, the default), ``zlib``,
    ``lz4`` (errors if the module is missing), or ``auto`` (lz4 when
    importable, else zlib).  The wire stays self-describing -- each
    compressed payload's envelope names its codec -- so mixed configs
    interoperate."""

    compression_level: int = 1
    """zlib level (1..9) when the zlib codec is selected; level 1 favors
    shuffle latency over ratio."""

    compression_min_bytes: int = 4096
    """Payloads smaller than this ship raw without attempting
    compression (the codec overhead dominates tiny frames)."""

    retry_attempts: int = 3
    """Transport attempts per RPC (1 = no retry)."""

    retry_base_delay: float = 0.05
    """Backoff before the first retry, in seconds; doubles per attempt."""

    retry_max_delay: float = 2.0
    """Ceiling on the exponential backoff delay, in seconds."""

    retry_jitter: float = 0.25
    """Jitter fraction: each delay is scaled by ``1 ± jitter``."""

    retry_max_elapsed: float | None = None
    """Total-elapsed deadline across all attempts of one logical call, in
    seconds (``None`` = unbounded).  A flapping peer can otherwise hold a
    caller for up to ``retry_attempts * retry_max_delay`` regardless of
    how long the caller can actually afford to wait."""

    heartbeat_interval: float = 0.25
    """Seconds between a worker's heartbeats to the coordinator."""

    heartbeat_miss_threshold: int = 4
    """Consecutive missed heartbeat intervals before a worker is declared dead."""

    start_timeout: float = 30.0
    """Seconds to wait for every worker process to register at startup."""

    mp_start_method: str = "spawn"
    """``multiprocessing`` start method for worker processes."""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every wire parameter; raises :class:`ConfigError`.

        Runs automatically at construction; callable again on a config
        rebuilt from a manifest.
        """
        for name in ("connect_timeout", "call_timeout", "heartbeat_interval",
                     "start_timeout", "retry_base_delay"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.max_frame_bytes < 64:
            raise ConfigError("max_frame_bytes is too small to hold a message")
        if self.max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.stream_page_bytes < 64:
            raise ConfigError("stream_page_bytes is too small to hold a message")
        if self.compression not in ("none", "zlib", "lz4", "auto"):
            raise ConfigError(
                "compression must be one of ('none', 'zlib', 'lz4', 'auto'), "
                f"got {self.compression!r}"
            )
        if not 1 <= self.compression_level <= 9:
            raise ConfigError(
                f"compression_level must be 1..9, got {self.compression_level}"
            )
        if self.compression_min_bytes < 0:
            raise ConfigError("compression_min_bytes must be non-negative")
        if self.retry_attempts < 1:
            raise ConfigError("retry_attempts must be >= 1")
        if self.retry_max_delay < self.retry_base_delay:
            raise ConfigError("retry_max_delay must be >= retry_base_delay")
        if self.retry_max_elapsed is not None and self.retry_max_elapsed <= 0:
            raise ConfigError("retry_max_elapsed must be positive or None")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigError(f"retry_jitter must be in [0, 1], got {self.retry_jitter}")
        if self.heartbeat_miss_threshold < 1:
            raise ConfigError("heartbeat_miss_threshold must be >= 1")
        if self.mp_start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigError(f"unknown start method {self.mp_start_method!r}")


@dataclass(frozen=True)
class SchedulerConfig:
    """LAF / delay scheduler parameters (paper §II-E, §II-F, Algorithm 1)."""

    alpha: float = 0.001
    """Moving-average weight factor; the paper fixes 0.001 after Fig. 7."""

    window_tasks: int = 64
    """N in Algorithm 1: tasks accumulated before re-partitioning ranges."""

    num_bins: int = 1024
    """Fine-grained histogram bins the hash key space is quantized into."""

    kde_bandwidth: int = 8
    """k in the box kernel density estimate: adjacent bins credited 1/k each."""

    delay_wait: float = 5.0
    """Seconds a delay-scheduled task waits for its preferred server (Spark's 5 s)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.window_tasks < 1:
            raise ConfigError("window_tasks must be >= 1")
        if self.num_bins < 1:
            raise ConfigError("num_bins must be >= 1")
        if self.kde_bandwidth < 1:
            raise ConfigError("kde_bandwidth must be >= 1")
        if self.delay_wait < 0:
            raise ConfigError("delay_wait must be non-negative")


_JOB_POLICIES = ("fifo", "fair", "delay")


@dataclass(frozen=True)
class JobsConfig:
    """Multi-job scheduler parameters (admission control + inter-job sharing).

    Only the cluster plane's :class:`repro.jobs.JobScheduler` reads these;
    single-job ``run()`` calls ride the same scheduler with the defaults.
    """

    max_active_jobs: int = 4
    """Jobs executing concurrently; further submissions wait in the queue."""

    max_queued_jobs: int = 64
    """Bound on the admission queue; a submit past it raises
    :class:`~repro.common.errors.JobRejected` (backpressure, not silent
    unbounded buffering)."""

    policy: str = "fifo"
    """Inter-job sharing policy: ``fifo`` (submission order), ``fair``
    (fair share weighted by outstanding tasks), or ``delay`` (the paper's
    delay-scheduling baseline applied between jobs)."""

    max_inflight_tasks: int = 16
    """Cluster-wide cap on concurrently dispatched tasks across all jobs
    (mirrors the legacy per-phase dispatch pool width)."""

    delay_worker_slots: int = 2
    """Delay policy only: in-flight tasks one worker accepts before a
    task starts waiting for its preferred worker to free up."""

    tick_interval: float = 0.05
    """Scheduler-thread wakeup period while jobs are active, seconds."""

    def __post_init__(self) -> None:
        if self.max_active_jobs < 1:
            raise ConfigError("max_active_jobs must be >= 1")
        if self.max_queued_jobs < 0:
            raise ConfigError("max_queued_jobs must be >= 0")
        if self.policy not in _JOB_POLICIES:
            raise ConfigError(
                f"jobs policy must be one of {_JOB_POLICIES}, got {self.policy!r}"
            )
        if self.max_inflight_tasks < 1:
            raise ConfigError("max_inflight_tasks must be >= 1")
        if self.delay_worker_slots < 1:
            raise ConfigError("delay_worker_slots must be >= 1")
        if self.tick_interval <= 0:
            raise ConfigError("tick_interval must be positive")


_FAULT_OPS = ("drop", "blackhole", "delay", "crash")
_FAULT_SITES = ("send", "serve")


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault at the RPC transport seam.

    A rule matches RPCs by site, endpoint names, and method, then applies
    ``op`` to the ``count`` matches starting at match number ``after_n``
    (every node keeps its own per-rule match counter):

    * ``drop`` -- at ``site="send"`` the call fails with a connection
      error before any byte moves; at ``site="serve"`` the request is
      swallowed without a response (the caller times out), which is what
      a one-way partition looks like from the sender;
    * ``blackhole`` -- (send-side only) the request is admitted but its
      bytes never hit the wire, so the caller waits out its full timeout;
    * ``delay`` -- the call proceeds after ``delay_s`` seconds;
    * ``crash`` -- the matching node exits immediately (SIGKILL-grade:
      no cleanup, heartbeats just stop), for crash-on-Nth-RPC scripts.

    ``src``/``dst`` are node names (worker ids or ``"coordinator"``);
    ``"*"`` matches any.  On the send site ``src`` is the calling node
    and ``dst`` the callee; on the serve site ``dst`` is the serving
    node and ``src`` is unknown (match with ``"*"``).
    """

    op: str
    site: str = "send"
    src: str = "*"
    dst: str = "*"
    method: str = "*"
    after_n: int = 0
    count: int | None = None
    delay_s: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in _FAULT_OPS:
            raise ConfigError(f"fault op must be one of {_FAULT_OPS}, got {self.op!r}")
        if self.site not in _FAULT_SITES:
            raise ConfigError(f"fault site must be one of {_FAULT_SITES}, got {self.site!r}")
        if self.op == "blackhole" and self.site != "send":
            raise ConfigError("blackhole is a send-side fault (serve-side use drop)")
        if self.after_n < 0:
            raise ConfigError("after_n must be >= 0")
        if self.count is not None and self.count < 1:
            raise ConfigError("count must be >= 1 or None (unbounded)")
        if self.delay_s < 0:
            raise ConfigError("delay_s must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"probability must be in [0, 1], got {self.probability}")


@dataclass(frozen=True)
class ChaosConfig:
    """The deterministic fault-injection plane (off by default).

    ``rules`` script faults at the transport seam; ``seed`` pins every
    probabilistic draw (each node derives its RNG from
    ``f"{seed}:{node_id}"``), so the same config replays the same fault
    schedule run after run.  An empty rule list leaves the data plane
    untouched -- no hook is even installed.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ConfigError(f"rules must be FaultRule instances, got {rule!r}")

    @property
    def active(self) -> bool:
        return bool(self.rules)


@dataclass(frozen=True)
class MembershipConfig:
    """Elastic membership parameters (live join / graceful drain).

    Only the cluster plane's coordinator and job scheduler read these;
    a cluster that never joins or drains a worker never consults them.
    """

    join_register_timeout: float = 30.0
    """Seconds the coordinator waits for a freshly spawned joiner to
    register before the join is aborted and rolled back."""

    drain_timeout: float = 30.0
    """Seconds allowed for a drain's state handoff (block re-replication
    plus spill-object push) before the drain fails."""

    barrier_timeout: float = 60.0
    """Seconds a ``join_worker``/``drain_worker`` caller waits for the
    job scheduler to reach the quiesce barrier (no tasks in flight, no
    live jobs) where membership ops are applied."""

    def __post_init__(self) -> None:
        for name in ("join_register_timeout", "drain_timeout", "barrier_timeout"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass(frozen=True)
class ObserveConfig:
    """Live observability endpoint (Prometheus + dashboard), off by default.

    Only the cluster plane's :class:`~repro.cluster.runtime.ClusterRuntime`
    reads these; with ``enabled=False`` (the default) no server thread,
    socket, or sampling RPC exists at all -- the data plane is untouched.
    """

    enabled: bool = False
    """Start the coordinator-embedded HTTP endpoint with the runtime."""

    host: str = "127.0.0.1"
    """Interface the observability HTTP server binds."""

    port: int = 0
    """TCP port for the endpoint; ``0`` picks an ephemeral port
    (read it back from ``runtime.observer.port``)."""

    sample_interval: float = 1.0
    """Minimum seconds between per-worker ``get_stats`` sampling rounds.
    Scrapes arriving faster than this are served from the last sample,
    so an aggressive scraper cannot amplify RPC load on the workers."""

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be 0..65535, got {self.port}")
        if self.sample_interval <= 0:
            raise ConfigError("sample_interval must be positive")


@dataclass(frozen=True)
class SpecConfig:
    """Speculative execution of straggling map attempts (off by default).

    Only the cluster plane's :class:`repro.jobs.JobScheduler` reads
    these.  With ``enabled=False`` (the default) no service-time
    tracking, duplicate dispatch, or attempt-race bookkeeping runs and a
    lone submitted job stays bit-equal to the sequential plane.
    """

    enabled: bool = False
    """Launch duplicate attempts for map tasks that run far past the
    job's median map service time (first finisher wins)."""

    slow_factor: float = 2.0
    """A running attempt is a straggler once its elapsed time exceeds
    ``slow_factor x p50`` of the job's settled map attempts."""

    min_samples: int = 3
    """Settled map attempts required before the p50 is trusted; no
    speculation fires earlier."""

    min_runtime_s: float = 0.25
    """Floor on the straggler threshold, seconds: tiny tasks never
    speculate on scheduling jitter alone."""

    max_copies: int = 2
    """Total concurrent attempts per task, the original included."""

    def __post_init__(self) -> None:
        if self.slow_factor < 1.0:
            raise ConfigError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.min_runtime_s < 0:
            raise ConfigError("min_runtime_s must be non-negative")
        if self.max_copies < 2:
            raise ConfigError(
                f"max_copies must be >= 2 (the original plus at least one"
                f" duplicate), got {self.max_copies}"
            )


@dataclass(frozen=True)
class HealthConfig:
    """Gray-failure detection and dispatch quarantine (off by default).

    The coordinator keeps a leaky health score per worker, fed by
    heartbeat round-trip latency, task service times, and RPC
    timeout/retry evidence.  A worker whose score crosses
    ``quarantine_threshold`` receives no *new* task dispatches -- it
    still serves block fetches, spill pushes, and heartbeats, and is
    never failed over -- and recovers once the score decays below
    ``recover_threshold`` (hysteresis, so a borderline worker does not
    flap in and out of the dispatch pool).
    """

    enabled: bool = False
    """Track per-worker health scores and quarantine gray workers."""

    quarantine_threshold: float = 2.0
    """Score at or above which a worker stops receiving new dispatches."""

    recover_threshold: float = 0.5
    """Score a quarantined worker must decay to before dispatch resumes;
    must be below ``quarantine_threshold``."""

    decay_halflife_s: float = 5.0
    """Half-life of the exponential score decay, seconds: how fast a
    recovered worker earns its way back."""

    rtt_slow_s: float = 0.25
    """Heartbeat round trips above this are penalized in proportion to
    how far they exceed it."""

    timeout_penalty: float = 1.0
    """Score added per RPC timeout or transport retry against a worker."""

    slow_task_penalty: float = 0.5
    """Score added per task that finishes beyond the straggler threshold
    (``spec.slow_factor x p50``) on a worker."""

    def __post_init__(self) -> None:
        if self.quarantine_threshold <= 0:
            raise ConfigError("quarantine_threshold must be positive")
        if not 0 <= self.recover_threshold < self.quarantine_threshold:
            raise ConfigError(
                "recover_threshold must be in [0, quarantine_threshold); got "
                f"{self.recover_threshold} vs {self.quarantine_threshold}"
            )
        if self.decay_halflife_s <= 0:
            raise ConfigError("decay_halflife_s must be positive")
        if self.rtt_slow_s <= 0:
            raise ConfigError("rtt_slow_s must be positive")
        if self.timeout_penalty < 0 or self.slow_task_penalty < 0:
            raise ConfigError("health penalties must be non-negative")


@dataclass(frozen=True)
class ClusterConfig:
    """The simulated hardware platform (paper §III testbed)."""

    num_nodes: int = 40
    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 8
    memory_per_node: int = 20 * GB

    disk_bandwidth: float = 140 * MB
    """Sequential HDD throughput in bytes/s (7200 rpm 2 TB data disk)."""

    disk_seek_time: float = 0.008
    """Average seek+rotational latency per random access, seconds."""

    network_bandwidth: float = 117 * MB
    """1 GbE payload throughput in bytes/s per link."""

    network_latency: float = 0.0002
    """Per-message one-way latency in seconds."""

    rack_size: int = 20
    """Nodes per top-of-rack switch (the paper wires 20+20 through 2 switches)."""

    uplink_bandwidth: float = 117 * MB
    """Switch-to-switch (core) link bandwidth in bytes/s."""

    page_cache_per_node: int = 12 * GB
    """Memory the OS page cache can use (20 GB minus heap/working memory)."""

    dfs: DFSConfig = field(default_factory=DFSConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    net: NetConfig = field(default_factory=NetConfig)
    jobs: JobsConfig = field(default_factory=JobsConfig)
    chaos: ChaosConfig = field(default_factory=ChaosConfig)
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    observe: ObserveConfig = field(default_factory=ObserveConfig)
    spec: SpecConfig = field(default_factory=SpecConfig)
    health: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 0:
            raise ConfigError("slot counts invalid")
        if self.rack_size < 1:
            raise ConfigError("rack_size must be >= 1")
        for name in ("disk_bandwidth", "network_bandwidth", "uplink_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.disk_seek_time < 0 or self.network_latency < 0:
            raise ConfigError("latencies must be non-negative")

    @property
    def total_map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node

    def rack_of(self, node_index: int) -> int:
        """Which rack (top-of-rack switch) a node hangs off."""
        if not 0 <= node_index < self.num_nodes:
            raise ConfigError(f"node index {node_index} out of range")
        return node_index // self.rack_size
