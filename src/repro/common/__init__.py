"""Shared primitives for the EclipseMR reproduction.

This package holds the code every other subsystem builds on:

* :mod:`repro.common.hashing` -- the circular hash key space, key ranges
  with wrap-around, and deterministic SHA-1 derived keys for files, blocks
  and cached objects.
* :mod:`repro.common.units` -- byte and time unit helpers so sizes read the
  way the paper writes them (``128 * MB``, ``1 * GB``).
* :mod:`repro.common.config` -- dataclass configuration for clusters,
  caches and schedulers, with the paper's defaults.
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.rng` -- seeded random streams so every experiment is
  reproducible.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    RingError,
    FileSystemError,
    FileNotFound,
    BlockNotFound,
    PermissionDenied,
    CacheMiss,
    SchedulingError,
    SimulationError,
)
from repro.common.hashing import HashSpace, KeyRange, DEFAULT_SPACE
from repro.common.units import KB, MB, GB, TB, fmt_bytes, fmt_seconds
from repro.common.config import (
    CacheConfig,
    ClusterConfig,
    DFSConfig,
    SchedulerConfig,
)
from repro.common.rng import SeedSequenceFactory, derive_rng

__all__ = [
    "ReproError",
    "ConfigError",
    "RingError",
    "FileSystemError",
    "FileNotFound",
    "BlockNotFound",
    "PermissionDenied",
    "CacheMiss",
    "SchedulingError",
    "SimulationError",
    "HashSpace",
    "KeyRange",
    "DEFAULT_SPACE",
    "KB",
    "MB",
    "GB",
    "TB",
    "fmt_bytes",
    "fmt_seconds",
    "CacheConfig",
    "ClusterConfig",
    "DFSConfig",
    "SchedulerConfig",
    "SeedSequenceFactory",
    "derive_rng",
]
