"""Config serialization: experiment manifests as plain dicts / JSON.

Experiments are reproducible from a root seed plus a configuration; this
module round-trips the configuration dataclasses so a run can be pinned
in a manifest file and replayed exactly::

    manifest = config_to_dict(cluster_config)
    json.dump(manifest, open("run.json", "w"))
    ...
    config = config_from_dict(json.load(open("run.json")))
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.common.config import (
    CacheConfig,
    ChaosConfig,
    ClusterConfig,
    DFSConfig,
    FaultRule,
    HealthConfig,
    JobsConfig,
    MembershipConfig,
    NetConfig,
    ObserveConfig,
    SchedulerConfig,
    SpecConfig,
)
from repro.common.errors import ConfigError

__all__ = ["config_to_dict", "config_from_dict", "diff_configs"]

# ``net`` (and later ``chaos``, ``jobs``, ``membership``, ``observe``,
# ``spec``, and ``health``) joined the schema after the first manifests
# shipped; manifests written without them keep loading (the fields fall
# back to their defaults), so the schema string stays at /1.
_NESTED = {
    "dfs": DFSConfig,
    "cache": CacheConfig,
    "scheduler": SchedulerConfig,
    "net": NetConfig,
    "jobs": JobsConfig,
    "chaos": ChaosConfig,
    "membership": MembershipConfig,
    "observe": ObserveConfig,
    "spec": SpecConfig,
    "health": HealthConfig,
}


def _chaos_from_dict(value: dict[str, Any]) -> ChaosConfig:
    """Rebuild the nested fault rules (plain dicts/lists on the wire)."""
    rules = []
    for entry in value.get("rules") or ():
        if not isinstance(entry, dict):
            raise ConfigError(f"chaos rule must be a mapping, got {entry!r}")
        rule_known = {f.name for f in dataclasses.fields(FaultRule)}
        unknown = set(entry) - rule_known
        if unknown:
            raise ConfigError(f"unknown chaos rule keys: {sorted(unknown)}")
        rules.append(FaultRule(**entry))
    return ChaosConfig(seed=value.get("seed", 0), rules=tuple(rules))


def config_to_dict(config: ClusterConfig) -> dict[str, Any]:
    """A plain-JSON-compatible dict capturing the full configuration."""
    if not isinstance(config, ClusterConfig):
        raise ConfigError(f"expected ClusterConfig, got {type(config).__name__}")
    out = dataclasses.asdict(config)
    out["__schema__"] = "repro.ClusterConfig/1"
    return out


def config_from_dict(data: dict[str, Any]) -> ClusterConfig:
    """Rebuild a :class:`ClusterConfig` from :func:`config_to_dict` output.

    Unknown keys are rejected (a manifest from a different version should
    fail loudly, not half-apply), and all dataclass validation re-runs.
    """
    payload = dict(data)
    schema = payload.pop("__schema__", "repro.ClusterConfig/1")
    if schema != "repro.ClusterConfig/1":
        raise ConfigError(f"unsupported manifest schema {schema!r}")
    kwargs: dict[str, Any] = {}
    known = {f.name for f in dataclasses.fields(ClusterConfig)}
    for key, value in payload.items():
        if key not in known:
            raise ConfigError(f"unknown configuration key {key!r}")
        if key in _NESTED:
            if not isinstance(value, dict):
                raise ConfigError(f"{key!r} must be a mapping")
            sub_known = {f.name for f in dataclasses.fields(_NESTED[key])}
            unknown = set(value) - sub_known
            if unknown:
                raise ConfigError(f"unknown {key} keys: {sorted(unknown)}")
            if key == "chaos":
                kwargs[key] = _chaos_from_dict(value)
            else:
                kwargs[key] = _NESTED[key](**value)
        else:
            kwargs[key] = value
    return ClusterConfig(**kwargs)


def diff_configs(a: ClusterConfig, b: ClusterConfig) -> dict[str, tuple[Any, Any]]:
    """Flat ``{dotted.key: (a_value, b_value)}`` of every differing field."""
    out: dict[str, tuple[Any, Any]] = {}

    def walk(prefix: str, left: Any, right: Any) -> None:
        if dataclasses.is_dataclass(left):
            for f in dataclasses.fields(left):
                walk(f"{prefix}{f.name}.", getattr(left, f.name), getattr(right, f.name))
        elif left != right:
            out[prefix[:-1]] = (left, right)

    walk("", a, b)
    return out
