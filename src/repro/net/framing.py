"""Length-prefixed binary message framing.

Every message on a cluster-plane TCP connection is one *frame*::

    +----------+---------+------------------+
    | magic    | version | payload length   |  payload (length bytes)
    | 3 bytes  | 1 byte  | 4 bytes (BE)     |
    +----------+---------+------------------+

The fixed 8-byte header makes partial reads easy to resume (read until 8
bytes, then until ``length`` more) and lets a receiver reject garbage --
wrong magic, unknown version, or a length above the configured maximum --
before buffering a single payload byte.

:class:`FrameDecoder` is the incremental, socket-free state machine (what
the property tests chew on); :func:`read_frame`/:func:`write_frame` adapt
it to blocking sockets.
"""

from __future__ import annotations

import socket
import struct

from repro.common.errors import FramingError

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

MAGIC = b"EMR"
VERSION = 1
_HEADER = struct.Struct("!3sBI")
HEADER_SIZE = _HEADER.size
DEFAULT_MAX_FRAME = 256 * 1024 * 1024

# recv() chunk for socket reads; deliberately small enough that multi-MB
# payloads always exercise the partial-read path.
_RECV_CHUNK = 64 * 1024


def encode_frame(payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` in a frame header."""
    if len(payload) > max_frame_bytes:
        raise FramingError(
            f"payload of {len(payload)} bytes exceeds the {max_frame_bytes}-byte frame limit"
        )
    return _HEADER.pack(MAGIC, VERSION, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get payloads.

    The decoder owns no I/O, so partial reads, coalesced frames, and
    malformed input are all testable without sockets.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every payload completed by it (in order)."""
        self._buffer.extend(data)
        self.bytes_fed += len(data)
        out: list[bytes] = []
        while True:
            payload = self._next_frame()
            if payload is None:
                return out
            out.append(payload)

    def _next_frame(self) -> bytes | None:
        if len(self._buffer) < HEADER_SIZE:
            return None
        magic, version, length = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise FramingError(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
        if version != VERSION:
            raise FramingError(f"unsupported frame version {version}")
        if length > self.max_frame_bytes:
            raise FramingError(
                f"declared payload of {length} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame limit"
            )
        if len(self._buffer) < HEADER_SIZE + length:
            return None
        payload = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
        del self._buffer[: HEADER_SIZE + length]
        self.frames_decoded += 1
        return payload

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a frame that has not completed yet."""
        return len(self._buffer)

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean EOF point)."""
        return not self._buffer


def read_frame(sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes | None:
    """Read exactly one frame from a blocking socket.

    Returns ``None`` on a clean EOF (connection closed between frames);
    raises :class:`FramingError` if the peer dies mid-frame or sends a
    malformed header.  ``socket.timeout`` propagates to the caller.
    """
    decoder = FrameDecoder(max_frame_bytes)
    while True:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            if decoder.at_boundary():
                return None
            raise FramingError(
                f"connection closed mid-frame ({decoder.pending_bytes} bytes buffered)"
            )
        frames = decoder.feed(chunk)
        if frames:
            # One request/response per read on an RPC connection; anything
            # extra means the peer broke the lockstep protocol.
            if len(frames) > 1 or not decoder.at_boundary():
                raise FramingError("peer sent more than one frame in a single exchange")
            return frames[0]


def write_frame(sock: socket.socket, payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> int:
    """Send one frame; returns the bytes put on the wire."""
    frame = encode_frame(payload, max_frame_bytes)
    sock.sendall(frame)
    return len(frame)
