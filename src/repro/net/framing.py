"""Length-prefixed binary message framing.

Every message on a cluster-plane TCP connection is one *frame*::

    +----------+---------+------------------+
    | magic    | version | payload length   |  payload (length bytes)
    | 3 bytes  | 1 byte  | 4 bytes (BE)     |
    +----------+---------+------------------+

The fixed 8-byte header makes partial reads easy to resume (read until 8
bytes, then until ``length`` more) and lets a receiver reject garbage --
wrong magic, unknown version, or a length above the configured maximum --
before buffering a single payload byte.

:class:`FrameDecoder` is the incremental, socket-free state machine (what
the property tests chew on); :func:`read_frame`/:func:`write_frame` adapt
it to blocking sockets.

The decoder fills a buffer pre-allocated per frame (sized from the
header), so a completed payload is a standalone ``bytearray`` that no
later frame touches.  With ``copy=False`` it hands that buffer back as a
:class:`memoryview` -- the zero-copy receive path the RPC layer uses for
out-of-band block/spill payloads.  On the send side, :func:`sendv`
gathers header + payload buffers into one vectored ``sendmsg`` so bulk
bytes never get concatenated into a fresh frame buffer, and
:func:`write_frames` validates *every* frame length before the first
byte hits the socket (an oversized payload must never poison a
connection mid-stream).
"""

from __future__ import annotations

import socket
import struct

from repro.common.errors import FramingError

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "encode_header",
    "FrameDecoder",
    "read_frame",
    "write_frame",
    "write_frames",
    "sendv",
    "paginate",
]

MAGIC = b"EMR"
VERSION = 1
_HEADER = struct.Struct("!3sBI")
HEADER_SIZE = _HEADER.size
DEFAULT_MAX_FRAME = 256 * 1024 * 1024

# recv() chunk for socket reads; deliberately small enough that multi-MB
# payloads always exercise the partial-read path.
_RECV_CHUNK = 64 * 1024

Buffer = "bytes | bytearray | memoryview"


def encode_header(length: int, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """The 8-byte header for a payload of ``length`` bytes."""
    if length > max_frame_bytes:
        raise FramingError(
            f"payload of {length} bytes exceeds the {max_frame_bytes}-byte frame limit"
        )
    return _HEADER.pack(MAGIC, VERSION, length)


def encode_frame(payload, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` in a frame header (one concatenated buffer)."""
    return encode_header(len(payload), max_frame_bytes) + payload


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get payloads.

    The decoder owns no I/O, so partial reads, coalesced frames, and
    malformed input are all testable without sockets.

    Each frame's payload is accumulated in its own ``bytearray`` sized
    from the (validated) header, so completed payloads share no storage
    with the decoder or with each other.  ``copy=True`` (the default)
    returns them as ``bytes``; ``copy=False`` returns ``memoryview``s
    over the per-frame buffer -- zero additional copies for bulk data.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME, copy: bool = True) -> None:
        self.max_frame_bytes = max_frame_bytes
        self.copy = copy
        self._head = bytearray()  # partial header bytes
        self._body: bytearray | None = None  # pre-allocated payload buffer
        self._filled = 0
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data) -> list:
        """Absorb ``data``; return every payload completed by it (in order)."""
        view = memoryview(data)
        total = len(view)
        self.bytes_fed += total
        out: list = []
        off = 0
        while off < total or (self._body is not None and self._filled == len(self._body)):
            if self._body is None:
                take = min(HEADER_SIZE - len(self._head), total - off)
                self._head += view[off : off + take]
                off += take
                if len(self._head) < HEADER_SIZE:
                    break
                length = self._parse_header()
                self._head.clear()
                self._body = bytearray(length)
                self._filled = 0
            take = min(len(self._body) - self._filled, total - off)
            if take:
                self._body[self._filled : self._filled + take] = view[off : off + take]
                self._filled += take
                off += take
            if self._filled == len(self._body):
                payload = self._body
                self._body = None
                self.frames_decoded += 1
                out.append(bytes(payload) if self.copy else memoryview(payload))
            elif off >= total:
                break
        return out

    def _parse_header(self) -> int:
        magic, version, length = _HEADER.unpack(bytes(self._head))
        if magic != MAGIC:
            raise FramingError(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
        if version != VERSION:
            raise FramingError(f"unsupported frame version {version}")
        if length > self.max_frame_bytes:
            raise FramingError(
                f"declared payload of {length} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame limit"
            )
        return length

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a frame that has not completed yet."""
        if self._body is not None:
            return HEADER_SIZE + self._filled
        return len(self._head)

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean EOF point)."""
        return self._body is None and not self._head


def paginate(payload, page_bytes: int):
    """Slice a bytes-like payload into zero-copy pages of ``page_bytes``.

    Yields ``memoryview`` slices over the original buffer (no copies):
    every page is exactly ``page_bytes`` long except a shorter final one;
    an empty payload yields nothing.  Joining the pages in order
    reconstructs the payload bit-for-bit.  This is how a body larger than
    one frame crosses the wire: each page rides its own frame, so neither
    side ever materializes the whole payload as a single frame buffer.
    """
    if page_bytes < 1:
        raise FramingError(f"page size must be >= 1, got {page_bytes}")
    view = memoryview(payload)
    for off in range(0, len(view), page_bytes):
        yield view[off : off + page_bytes]


def read_frame(sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes | None:
    """Read exactly one frame from a blocking socket.

    Returns ``None`` on a clean EOF (connection closed between frames);
    raises :class:`FramingError` if the peer dies mid-frame or sends a
    malformed header.  ``socket.timeout`` propagates to the caller.

    This is the *lockstep* reader (one frame per exchange) used by
    simple request/response exchanges; the pipelined RPC layer reads
    its stream through a long-lived :class:`FrameDecoder` instead.
    """
    decoder = FrameDecoder(max_frame_bytes)
    while True:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            if decoder.at_boundary():
                return None
            raise FramingError(
                f"connection closed mid-frame ({decoder.pending_bytes} bytes buffered)"
            )
        frames = decoder.feed(chunk)
        if frames:
            # One request/response per read on a lockstep connection;
            # anything extra means the peer broke the protocol.
            if len(frames) > 1 or not decoder.at_boundary():
                raise FramingError("peer sent more than one frame in a single exchange")
            return frames[0]


def sendv(sock: socket.socket, buffers: list) -> int:
    """Vectored send: put every buffer on the wire without concatenating.

    Uses ``sendmsg`` (writev) where available, resuming after partial
    sends; falls back to per-buffer ``sendall``.  Returns total bytes.
    """
    views = [memoryview(b) for b in buffers if len(b)]
    total = sum(len(v) for v in views)
    if not views:
        return 0
    if hasattr(sock, "sendmsg"):
        while views:
            sent = sock.sendmsg(views)
            while views and sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            if views and sent:
                views[0] = views[0][sent:]
    else:  # pragma: no cover - every supported platform has sendmsg
        for v in views:
            sock.sendall(v)
    return total


def write_frame(sock: socket.socket, payload, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> int:
    """Send one frame; returns the bytes put on the wire."""
    return write_frames(sock, [payload], max_frame_bytes)


def write_frames(sock: socket.socket, payloads: list,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME) -> int:
    """Send several frames back-to-back in one vectored write.

    Every payload's length is validated *before* any byte is sent, so an
    oversized frame raises :class:`FramingError` while the connection is
    still at a frame boundary (instead of poisoning it mid-stream).
    """
    buffers: list = []
    for payload in payloads:
        buffers.append(encode_header(len(payload), max_frame_bytes))
        buffers.append(payload)
    return sendv(sock, buffers)
