"""The cluster plane's wire layer.

Four small, separately testable pieces:

* :mod:`repro.net.framing` -- length-prefixed binary frames over a byte
  stream (the only thing that ever touches raw sockets);
* :mod:`repro.net.codec` -- pluggable page-level compression for
  out-of-band payloads (``NetConfig.compression``), with an
  incompressible bail-out that ships raw frames unchanged;
* :mod:`repro.net.retry` -- exponential backoff with jitter, with
  injectable sleep/rng so policies unit-test deterministically;
* :mod:`repro.net.rpc` -- a request/response RPC layer (threaded TCP
  server, pooled client connections, per-call timeouts).

Everything above this package (:mod:`repro.cluster`) talks in terms of
named methods and plain-dict arguments; everything below is bytes.
"""

from repro.net.codec import (
    Codec,
    decode_payload,
    encode_payload,
    lz4_available,
    resolve_codec,
)
from repro.net.framing import FrameDecoder, encode_frame, read_frame, write_frame
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcClient, RpcServer

__all__ = [
    "FrameDecoder",
    "encode_frame",
    "read_frame",
    "write_frame",
    "Codec",
    "encode_payload",
    "decode_payload",
    "resolve_codec",
    "lz4_available",
    "RetryPolicy",
    "ConnectionPool",
    "RpcClient",
    "RpcServer",
]
