"""Pluggable page-level compression for the bulk data path.

Every *out-of-band* payload on a cluster-plane connection -- spill
pushes, block blobs, streamed reduce-output pages -- can be compressed
before it is framed.  The seam is a :class:`Codec`: ``compress`` /
``decompress`` over bytes-like objects, selected by name through
``NetConfig.compression``:

* ``none`` (the default) -- the codec seam is not even consulted; the
  wire bytes are bit-identical to a build without this module;
* ``zlib`` -- the stdlib codec at ``NetConfig.compression_level``
  (level 1 by default: the shuffle is latency-sensitive, and spill
  pickles are redundant enough that higher levels buy little);
* ``lz4`` -- the lz4 frame codec *if the module is importable* (the
  container does not bake it in); requesting it without the module is a
  :class:`~repro.common.errors.ConfigError`;
* ``auto`` -- ``lz4`` when importable, else ``zlib``.

The wire format is **self-describing**, not negotiated: a compressed
payload's envelope carries ``"enc": "<codec name>"`` and the receiver
decodes by that name, so peers whose configs disagree still interoperate
(both sides of a cluster share one manifest anyway).  An envelope with
no ``enc`` key announces a raw payload -- which is also the
**incompressible bail-out**: :func:`encode_payload` ships the original
bytes whenever the codec fails to win (high-entropy blocks, already
compressed data), so the worst case costs one compression attempt and
zero wire bytes.  Payloads below ``NetConfig.compression_min_bytes``
skip the attempt entirely.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.common.errors import ConfigError, FramingError

__all__ = [
    "Codec",
    "NoneCodec",
    "ZlibCodec",
    "Lz4Codec",
    "COMPRESSION_CHOICES",
    "lz4_available",
    "available_codecs",
    "resolve_codec",
    "codec_by_name",
    "encode_payload",
    "decode_payload",
]

#: Legal values of ``NetConfig.compression`` (validated at config time;
#: resolution -- including the lz4 import probe -- happens here).
COMPRESSION_CHOICES = ("none", "zlib", "lz4", "auto")

try:  # pragma: no cover - exercised only where lz4 is installed
    import lz4.frame as _lz4frame
except ImportError:  # the container does not ship lz4; gate, don't install
    _lz4frame = None


def lz4_available() -> bool:
    return _lz4frame is not None


class Codec:
    """One compression algorithm: bytes-like in, bytes out."""

    name = "?"

    def compress(self, data) -> bytes:
        raise NotImplementedError

    def decompress(self, data) -> bytes:
        raise NotImplementedError


class NoneCodec(Codec):
    """Identity codec (explicit object form of ``compression="none"``)."""

    name = "none"

    def compress(self, data) -> bytes:
        return bytes(data)

    def decompress(self, data) -> bytes:
        return bytes(data)


class ZlibCodec(Codec):
    """Stdlib DEFLATE; always available."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        if not 1 <= level <= 9:
            raise ConfigError(f"zlib level must be 1..9, got {level}")
        self.level = level

    def compress(self, data) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decompress(self, data) -> bytes:
        return zlib.decompress(bytes(data))


class Lz4Codec(Codec):
    """lz4 frame format; only constructible when the module imports."""

    name = "lz4"

    def __init__(self) -> None:
        if _lz4frame is None:
            raise ConfigError(
                "compression='lz4' requested but the lz4 module is not "
                "importable (use 'auto' to fall back to zlib)"
            )

    def compress(self, data) -> bytes:  # pragma: no cover - needs lz4
        return _lz4frame.compress(bytes(data))

    def decompress(self, data) -> bytes:  # pragma: no cover - needs lz4
        return _lz4frame.decompress(bytes(data))


def available_codecs() -> tuple[str, ...]:
    """Codec names this process can actually decode."""
    return ("zlib", "lz4") if lz4_available() else ("zlib",)


def resolve_codec(name: str, level: int = 1) -> Optional[Codec]:
    """The send-side codec for a ``NetConfig.compression`` value.

    Returns ``None`` for ``"none"`` -- the caller's signal to skip the
    compression seam entirely (no attempt, no metrics, no ``enc`` key).
    """
    if name == "none":
        return None
    if name == "zlib":
        return ZlibCodec(level)
    if name == "lz4":
        return Lz4Codec()
    if name == "auto":
        return Lz4Codec() if lz4_available() else ZlibCodec(level)
    raise ConfigError(
        f"compression must be one of {COMPRESSION_CHOICES}, got {name!r}"
    )


def codec_by_name(name: str) -> Codec:
    """The receive-side codec for an envelope's ``enc`` tag.

    Decoding is by the *sender's* declared name, independent of local
    config; an unknown name is wire garbage (:class:`FramingError`, so
    the transport layer treats it like any other malformed frame).
    """
    if name == "zlib":
        return ZlibCodec()
    if name == "lz4":
        if _lz4frame is None:
            raise FramingError(
                "peer sent an lz4-compressed payload but lz4 is not importable"
            )
        return Lz4Codec()
    raise FramingError(f"unknown payload codec {name!r}")


def encode_payload(data, codec: Optional[Codec],
                   min_bytes: int = 0) -> tuple[bytes, Optional[str]]:
    """Maybe-compress one out-of-band payload.

    Returns ``(wire_payload, enc)``: ``enc`` is the codec name when the
    payload was compressed, or ``None`` when it ships raw -- because no
    codec is active, the payload is under ``min_bytes``, or compression
    did not make it strictly smaller (the incompressible bail-out).  A
    raw return is the *original* object, so the zero-copy path is
    untouched whenever compression does not win.
    """
    if codec is None or len(data) < min_bytes:
        return data, None
    squeezed = codec.compress(data)
    if len(squeezed) >= len(data):
        return data, None
    return squeezed, codec.name


def decode_payload(data, enc: Optional[str]):
    """Undo :func:`encode_payload` given the envelope's ``enc`` tag.

    ``enc=None`` hands the buffer straight back (still a memoryview on
    the zero-copy receive path); anything else decompresses to fresh
    bytes.  A corrupt compressed payload raises :class:`FramingError`.
    """
    if enc is None:
        return data
    try:
        return codec_by_name(enc).decompress(data)
    except FramingError:
        raise
    except Exception as exc:
        raise FramingError(f"cannot decompress {enc} payload: {exc}") from exc
