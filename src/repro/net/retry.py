"""Retry with exponential backoff and jitter.

The policy is pure arithmetic plus two injectable effects (``sleep`` and
``rng``), so unit tests pin both and assert the exact delay sequence; the
cluster plane builds policies from :class:`~repro.common.config.NetConfig`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.common.config import NetConfig

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How many transport attempts to make and how long to wait between them.

    The delay before retry ``n`` (0-based) is::

        min(max_delay, base_delay * 2**n) * (1 + jitter * U(-1, 1))

    -- classic capped exponential backoff with symmetric jitter, so a burst
    of failed calls from many workers does not re-dogpile the same peer.

    ``max_elapsed`` bounds the *total* wall clock one logical call may
    spend across all attempts: before each backoff sleep the policy
    checks whether the elapsed time plus the next delay would cross the
    deadline and gives up (re-raising the last failure) instead of
    sleeping past it.  ``clock`` is injectable alongside ``sleep`` so
    tests pin the exact give-up sequence without waiting.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    max_elapsed: Optional[float] = None
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=random.Random)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_elapsed is not None and self.max_elapsed <= 0:
            raise ValueError("max_elapsed must be positive or None")

    @classmethod
    def from_config(
        cls,
        net: NetConfig,
        sleep: Callable[[float], None] | None = None,
        rng: random.Random | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "RetryPolicy":
        return cls(
            attempts=net.retry_attempts,
            base_delay=net.retry_base_delay,
            max_delay=net.retry_max_delay,
            jitter=net.retry_jitter,
            max_elapsed=net.retry_max_elapsed,
            sleep=sleep or time.sleep,
            rng=rng or random.Random(),
            clock=clock or time.monotonic,
        )

    def backoff(self, attempt: int) -> float:
        """Delay in seconds after failed attempt number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jittered = base * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))
        return max(0.0, jittered)

    def gives_up(self, started: float, next_delay: float) -> bool:
        """Whether the elapsed budget cannot absorb one more backoff.

        ``started`` is a :attr:`clock` reading taken before the first
        attempt.  The check is pre-sleep: a policy never starts a delay
        it knows would end past the deadline.
        """
        if self.max_elapsed is None:
            return False
        return (self.clock() - started) + next_delay > self.max_elapsed

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...],
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` with up to :attr:`attempts` tries.

        ``on_retry(attempt, exc)`` fires before each backoff sleep; the
        final failure -- attempts exhausted or the :attr:`max_elapsed`
        deadline reached -- re-raises the last exception unchanged.
        """
        last: BaseException | None = None
        started = self.clock()
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop by design
                last = exc
                if attempt + 1 >= self.attempts:
                    break
                delay = self.backoff(attempt)
                if self.gives_up(started, delay):
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(delay)
        assert last is not None
        raise last
