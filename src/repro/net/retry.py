"""Retry with exponential backoff and jitter.

The policy is pure arithmetic plus two injectable effects (``sleep`` and
``rng``), so unit tests pin both and assert the exact delay sequence; the
cluster plane builds policies from :class:`~repro.common.config.NetConfig`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.common.config import NetConfig

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How many transport attempts to make and how long to wait between them.

    The delay before retry ``n`` (0-based) is::

        min(max_delay, base_delay * 2**n) * (1 + jitter * U(-1, 1))

    -- classic capped exponential backoff with symmetric jitter, so a burst
    of failed calls from many workers does not re-dogpile the same peer.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    @classmethod
    def from_config(
        cls,
        net: NetConfig,
        sleep: Callable[[float], None] | None = None,
        rng: random.Random | None = None,
    ) -> "RetryPolicy":
        return cls(
            attempts=net.retry_attempts,
            base_delay=net.retry_base_delay,
            max_delay=net.retry_max_delay,
            jitter=net.retry_jitter,
            sleep=sleep or time.sleep,
            rng=rng or random.Random(),
        )

    def backoff(self, attempt: int) -> float:
        """Delay in seconds after failed attempt number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jittered = base * (1.0 + self.jitter * (2.0 * self.rng.random() - 1.0))
        return max(0.0, jittered)

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...],
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` with up to :attr:`attempts` tries.

        ``on_retry(attempt, exc)`` fires before each backoff sleep; the
        final failure re-raises the last exception unchanged.
        """
        last: BaseException | None = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:  # noqa: PERF203 - retry loop by design
                last = exc
                if attempt + 1 >= self.attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.backoff(attempt))
        assert last is not None
        raise last
