"""A tiny request/response RPC layer over framed TCP.

One request per frame, one response per frame, one call in flight per
connection -- the simplest protocol that supports the cluster plane.
Requests and responses are pickled envelopes::

    {"id": 7, "method": "push_spill", "args": {...}}
    {"id": 7, "ok": True, "value": ...}
    {"id": 7, "ok": False, "etype": "BlockNotFound", "error": "...", "data": ...}

:class:`RpcServer` is threaded (one thread per accepted connection), so a
worker can serve block fetches while it executes a map task.
:class:`ConnectionPool` keeps idle client connections per address and
layers :class:`~repro.net.retry.RetryPolicy` over transport failures;
remote application errors are *not* retried.  All sides count traffic into
an optional :class:`~repro.sim.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import pickle
import socket
import threading
from typing import Any, Callable, Optional

from repro.common.config import NetConfig
from repro.common.errors import (
    FramingError,
    NetworkError,
    RpcConnectionError,
    RpcRemoteError,
    RpcTimeout,
)
from repro.net.framing import read_frame, write_frame
from repro.net.retry import RetryPolicy

__all__ = ["RpcServer", "RpcClient", "ConnectionPool"]

Handler = Callable[..., Any]

_TRANSPORT_ERRORS = (RpcConnectionError, ConnectionError, FramingError, OSError)


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


class RpcServer:
    """A threaded TCP server dispatching framed requests to named handlers."""

    def __init__(
        self,
        handlers: dict[str, Handler] | None = None,
        net: NetConfig | None = None,
        host: str | None = None,
        port: int = 0,
        metrics=None,
    ) -> None:
        self.net = net or NetConfig()
        self._handlers: dict[str, Handler] = dict(handlers or {})
        self._metrics = metrics
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host or self.net.host, port))
        self._sock.listen(128)
        self.host, self.port = self._sock.getsockname()[:2]
        self._running = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def start(self) -> "RpcServer":
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rpc-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    # -- serving ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"rpc-conn:{self.port}", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while self._running.is_set():
                try:
                    raw = read_frame(conn, self.net.max_frame_bytes)
                except (FramingError, OSError):
                    return
                if raw is None:
                    return  # clean close
                self._count("net.bytes_received", len(raw))
                response = self._handle(raw)
                try:
                    sent = write_frame(conn, response, self.net.max_frame_bytes)
                except OSError:
                    return
                self._count("net.bytes_sent", sent)
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, raw: bytes) -> bytes:
        rid: Any = None
        try:
            request = pickle.loads(raw)
            rid = request.get("id")
            method = request["method"]
            handler = self._handlers[method]
        except KeyError as exc:
            return _dumps({"id": rid, "ok": False, "etype": "UnknownMethod",
                           "error": f"no handler for {exc}", "data": None})
        except Exception as exc:  # undecodable request
            return _dumps({"id": rid, "ok": False, "etype": type(exc).__name__,
                           "error": str(exc), "data": None})
        self._count("rpc.served", 1)
        try:
            value = handler(**(request.get("args") or {}))
            return _dumps({"id": rid, "ok": True, "value": value})
        except Exception as exc:
            self._count("rpc.handler_errors", 1)
            return _dumps({
                "id": rid,
                "ok": False,
                "etype": type(exc).__name__,
                "error": str(exc),
                "data": getattr(exc, "rpc_data", None),
            })

    def stop(self) -> None:
        self._running.clear()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)


class RpcClient:
    """One TCP connection making lockstep request/response calls."""

    def __init__(self, host: str, port: int, net: NetConfig | None = None, metrics=None) -> None:
        self.net = net or NetConfig()
        self.address = (host, port)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._next_id = 0
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=self.net.connect_timeout
            )
        except OSError as exc:
            raise RpcConnectionError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def call(self, method: str, args: dict[str, Any] | None = None,
             timeout: float | None = None) -> Any:
        """Send one request and wait for its response (per-call timeout)."""
        with self._lock:
            self._next_id += 1
            rid = self._next_id
            payload = _dumps({"id": rid, "method": method, "args": args or {}})
            try:
                self._sock.settimeout(timeout if timeout is not None else self.net.call_timeout)
                sent = write_frame(self._sock, payload, self.net.max_frame_bytes)
                self._count("net.bytes_sent", sent)
                raw = read_frame(self._sock, self.net.max_frame_bytes)
            except socket.timeout as exc:
                raise RpcTimeout(f"{method} to {self.address} timed out") from exc
            except (ConnectionError, FramingError, OSError) as exc:
                raise RpcConnectionError(f"{method} to {self.address}: {exc}") from exc
        if raw is None:
            raise RpcConnectionError(f"{self.address} closed the connection mid-call")
        self._count("net.bytes_received", len(raw))
        response = pickle.loads(raw)
        if response.get("id") != rid:
            raise RpcConnectionError(
                f"response id {response.get('id')} does not match request {rid}"
            )
        if response.get("ok"):
            return response.get("value")
        raise RpcRemoteError(
            response.get("etype", "Exception"),
            response.get("error", ""),
            response.get("data"),
        )

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)


class ConnectionPool:
    """Idle :class:`RpcClient` connections per address, with retries.

    ``call`` checks out a free connection (dialing a new one when none is
    idle), runs one RPC, and returns the connection to the pool.  Transport
    failures close the connection and retry per the policy; remote errors
    and timeouts are surfaced immediately.
    """

    def __init__(self, net: NetConfig | None = None, metrics=None,
                 policy: RetryPolicy | None = None) -> None:
        self.net = net or NetConfig()
        self._metrics = metrics
        self.policy = policy or RetryPolicy.from_config(self.net)
        self._free: dict[tuple[str, int], list[RpcClient]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- connection management -----------------------------------------------------

    def _checkout(self, addr: tuple[str, int]) -> RpcClient:
        with self._lock:
            if self._closed:
                raise RpcConnectionError("connection pool is closed")
            free = self._free.get(addr)
            if free:
                return free.pop()
        self._count("net.connections_opened", 1)
        return RpcClient(addr[0], addr[1], self.net, self._metrics)

    def _checkin(self, addr: tuple[str, int], client: RpcClient) -> None:
        with self._lock:
            if not self._closed:
                self._free.setdefault(addr, []).append(client)
                return
        client.close()

    # -- calls ---------------------------------------------------------------------

    def call(
        self,
        addr: tuple[str, int],
        method: str,
        args: dict[str, Any] | None = None,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> Any:
        policy = policy or self.policy
        last: NetworkError | None = None
        for attempt in range(policy.attempts):
            client: RpcClient | None = None
            self._count("rpc.calls", 1)
            try:
                client = self._checkout(addr)
                value = client.call(method, args, timeout)
            except RpcTimeout:
                # The call may still be executing remotely; retrying could
                # double-execute, so timeouts surface to the caller.
                if client is not None:
                    client.close()
                self._count("rpc.failures", 1)
                raise
            except RpcRemoteError:
                # The transport worked; the connection is still good.
                if client is not None:
                    self._checkin(addr, client)
                raise
            except _TRANSPORT_ERRORS as exc:
                if client is not None:
                    client.close()
                last = exc if isinstance(exc, NetworkError) else RpcConnectionError(str(exc))
                if attempt + 1 < policy.attempts:
                    self._count("rpc.retries", 1)
                    policy.sleep(policy.backoff(attempt))
                continue
            else:
                self._checkin(addr, client)
                return value
        self._count("rpc.failures", 1)
        raise RpcConnectionError(
            f"{method} to {addr} failed after {policy.attempts} attempts: {last}"
        )

    # -- teardown --------------------------------------------------------------------

    def close_address(self, addr: tuple[str, int]) -> None:
        """Drop every idle connection to one peer (it left the cluster)."""
        with self._lock:
            clients = self._free.pop(addr, [])
        for client in clients:
            client.close()

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            pools = list(self._free.values())
            self._free.clear()
        for clients in pools:
            for client in clients:
                client.close()

    def idle_connections(self, addr: tuple[str, int]) -> int:
        with self._lock:
            return len(self._free.get(addr, []))

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)
