"""A multiplexed, pipelined request/response RPC layer over framed TCP.

Requests and responses are pickled envelopes sharing one connection::

    {"id": 7, "method": "push_spill", "args": {...}}
    {"id": 7, "ok": True, "value": ...}
    {"id": 7, "ok": False, "etype": "BlockNotFound", "error": "...", "data": ...}

Envelope ids let *many* calls share one connection concurrently: a
:class:`RpcClient` owns a reader thread that matches response ids to
pending futures, so ``call_async`` returns immediately and responses may
complete out of order.  A transport failure fails every in-flight future
with :class:`RpcConnectionError` -- no future is ever resolved with
another call's response.

Bulk bytes travel *out of band*: an envelope carrying ``"blob_arg"``
(request) or ``"blob": True`` (response) is immediately followed by one
raw frame holding the payload.  The payload is never pickled into the
envelope and never concatenated with it -- the sender validates both
frame lengths up front and puts header + envelope + header + payload on
the wire in one vectored ``sendmsg``; the receiver's
:class:`~repro.net.framing.FrameDecoder` hands the payload back as a
``memoryview`` over its own buffer.  That removes the pickle copy and
the frame-assembly copy on every block upload, block fetch, and spill
push (the paper's proactive shuffle lives and dies on this path, §II-D).

Responses larger than one frame *stream*: a handler that returns
:class:`Stream` ships its payload as a paged sequence of out-of-band raw
frames bracketed by ``stream begin`` / ``stream end`` envelopes, each
``stream chunk`` envelope announcing the page frame that follows it.
Chunk pairs are sent atomically but independently, so pages of two
concurrent streams (and ordinary responses) interleave freely on one
connection; the client buffers pages by envelope id and resolves the
call's future with a :class:`StreamResult` only at ``stream end``.  A
transport death mid-stream discards the partial page buffer (counted in
``rpc.streams_aborted``) and fails the future like any other in-flight
call -- the caller re-executes, it never sees half a stream.

The transport also applies **backpressure**: each connection admits at
most ``net.max_in_flight`` requests awaiting responses; ``call_async``
blocks (it does not queue) until a response frees a window slot, so
fan-in can no longer grow either peer's memory without bound.  The
current window occupancy is exported as the ``rpc.in_flight`` gauge
(its ``max_seen`` is the observed peak).

:class:`RpcServer` reads each connection's stream through a long-lived
decoder and dispatches every request to a per-connection thread pool, so
pipelined requests execute concurrently and responses are written (under
a send lock) as they finish.  :class:`ConnectionPool` keeps **one
multiplexed connection per address** shared by all callers, layers
:class:`~repro.net.retry.RetryPolicy` over transport failures, and
offers ``call_many`` (pipelined batch to one peer) and ``broadcast``
(concurrent fan-out to many peers).  Remote application errors are *not*
retried.  All sides count traffic into an optional
:class:`~repro.sim.metrics.MetricsRegistry`; the pool also records a
per-call latency histogram (``rpc.latency_s``).

Both ends expose a **fault hook** for the deterministic chaos plane
(:mod:`repro.chaos`): ``fault_hook`` on a client/pool runs before a
request's bytes hit the wire and may *drop* the call (raises
:class:`RpcConnectionError` -- a synthetic transport failure, retried
like a real one), *black-hole* it (the request is admitted and its
future registered, but nothing is sent, so the caller waits out its
timeout), or *delay* it (a ``("delay", seconds)`` action: the request
is admitted and registered immediately, and its bytes hit the wire from
a timer thread after the scripted latency -- the caller's thread never
blocks, so a delayed send cannot stall an unrelated caller sharing it);
``fault_hook`` on a server runs before dispatch and may
swallow the request whole (no response -- what a one-way partition looks
like).  With no hook installed, none of these paths execute.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Optional, Sequence

from repro.common.config import NetConfig
from repro.common.errors import (
    FramingError,
    NetworkError,
    RpcConnectionError,
    RpcRemoteError,
    RpcTimeout,
)
from repro.net.codec import Codec, decode_payload, encode_payload, resolve_codec
from repro.net.framing import FrameDecoder, encode_header, sendv
from repro.net.retry import RetryPolicy

__all__ = ["Blob", "Stream", "StreamResult", "RpcServer", "RpcClient", "ConnectionPool"]

Handler = Callable[..., Any]

_TRANSPORT_ERRORS = (RpcConnectionError, ConnectionError, FramingError, OSError)

_RECV_CHUNK = 256 * 1024


class Blob:
    """Marks a bytes-like value for out-of-band (zero-copy) transport.

    A handler that returns ``Blob(data)`` ships ``data`` as a raw frame
    beside the response envelope instead of pickling it; the caller
    receives the raw bytes-like object as the call's value.
    """

    __slots__ = ("data",)

    def __init__(self, data) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)


class Stream:
    """Marks an iterable of bytes-like pages for streamed transport.

    A handler that returns ``Stream(pages)`` ships each page as its own
    out-of-band raw frame (a ``stream chunk``), bracketed by ``begin`` /
    ``end`` envelopes; the caller's future resolves to a
    :class:`StreamResult` holding every page in order.  ``pages`` may be
    a generator -- the server pulls pages one at a time while sending, so
    a response far larger than ``max_frame_bytes`` crosses the wire
    without either side materializing it as one buffer.  ``value`` is a
    small picklable header (metadata about the stream) carried in the
    ``begin`` envelope.
    """

    __slots__ = ("pages", "value")

    def __init__(self, pages, value: Any = None) -> None:
        self.pages = pages
        self.value = value


class StreamResult:
    """What a streamed call resolves to: the header plus the page frames.

    ``pages`` are bytes-like objects (memoryviews over per-frame buffers
    on the zero-copy receive path) in send order; ``join()`` concatenates
    them for callers that want the flat payload back.
    """

    __slots__ = ("value", "pages")

    def __init__(self, value: Any, pages: list) -> None:
        self.value = value
        self.pages = pages

    def join(self) -> bytes:
        return b"".join(bytes(p) for p in self.pages)

    def __len__(self) -> int:
        return len(self.pages)


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


class _Channel:
    """Framed envelope+blob I/O shared by both ends of a connection.

    Owns the send lock and the stream state machine that pairs an
    envelope announcing a blob with the raw frame that follows it.
    """

    def __init__(self, sock: socket.socket, max_frame_bytes: int,
                 codec: Optional[Codec] = None, compress_min_bytes: int = 0,
                 metrics=None) -> None:
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.codec = codec
        self.compress_min_bytes = compress_min_bytes
        self._metrics = metrics
        self.send_lock = threading.Lock()
        self.decoder = FrameDecoder(max_frame_bytes, copy=False)
        self._awaiting_blob: dict | None = None

    def send_envelope(self, envelope: dict, blob=None) -> int:
        """Pickle + send one envelope (and its optional out-of-band blob).

        Both frame lengths are validated before any byte is written, so
        an oversized payload raises :class:`FramingError` with the
        connection still healthy at a frame boundary.

        With a codec configured, the blob is compressed here -- this is
        the single choke point every out-of-band payload crosses (request
        blobs, blob responses, stream pages) -- and the envelope gains an
        ``"enc"`` tag naming the codec.  An incompressible payload ships
        raw with no tag, bit-identical to the codec-less wire.
        """
        if blob is not None and self.codec is not None:
            logical = len(blob)
            blob, enc = encode_payload(blob, self.codec, self.compress_min_bytes)
            if enc is not None:
                envelope["enc"] = enc
                self._count("net.pages_compressed", 1)
            else:
                self._count("net.pages_raw", 1)
            self._count("net.bytes_logical", logical)
            self._count("net.bytes_wire", len(blob))
        raw = _dumps(envelope)
        buffers = [encode_header(len(raw), self.max_frame_bytes), raw]
        if blob is not None:
            buffers.append(encode_header(len(blob), self.max_frame_bytes))
            buffers.append(blob)
        with self.send_lock:
            return sendv(self.sock, buffers)

    def feed(self, chunk) -> list[dict]:
        """Decode a recv'd chunk into completed envelopes.

        A blob frame is attached to its announcing envelope under the
        ``"__blob__"`` key; the envelope is only surfaced once its blob
        has fully arrived.  A payload whose envelope carries an ``enc``
        tag is decompressed here, by the sender's declared codec --
        decoding never consults local config, so mixed-compression peers
        interoperate.
        """
        out: list[dict] = []
        for frame in self.decoder.feed(chunk):
            if self._awaiting_blob is not None:
                envelope = self._awaiting_blob
                self._awaiting_blob = None
                envelope["__blob__"] = decode_payload(frame, envelope.get("enc"))
                out.append(envelope)
                continue
            envelope = pickle.loads(frame)
            if envelope.get("blob_arg") is not None or envelope.get("blob"):
                self._awaiting_blob = envelope
            else:
                out.append(envelope)
        return out

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)


class RpcServer:
    """A threaded TCP server dispatching framed requests to named handlers.

    Each accepted connection gets a reader thread plus a small executor:
    pipelined requests on one connection run concurrently and responses
    go out in completion order (ids restore the pairing client-side).
    """

    def __init__(
        self,
        handlers: dict[str, Handler] | None = None,
        net: NetConfig | None = None,
        host: str | None = None,
        port: int = 0,
        metrics=None,
    ) -> None:
        self.net = net or NetConfig()
        self._handlers: dict[str, Handler] = dict(handlers or {})
        self._metrics = metrics
        self._codec = resolve_codec(self.net.compression, self.net.compression_level)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host or self.net.host, port))
        self._sock.listen(128)
        self.host, self.port = self._sock.getsockname()[:2]
        self._running = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        #: Chaos seam: ``hook(method) -> "drop" | None`` runs before each
        #: request is handled; ``"drop"`` swallows it (no response).
        self.fault_hook: Optional[Callable[[str], Optional[str]]] = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def start(self) -> "RpcServer":
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rpc-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    # -- serving ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"rpc-conn:{self.port}", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        channel = _Channel(conn, self.net.max_frame_bytes, self._codec,
                           self.net.compression_min_bytes, self._metrics)
        pool = ThreadPoolExecutor(
            max_workers=self.net.rpc_concurrency,
            thread_name_prefix=f"rpc-handler:{self.port}",
        )
        try:
            while self._running.is_set():
                try:
                    chunk = conn.recv(_RECV_CHUNK)
                except OSError:
                    return
                if not chunk:
                    return  # peer closed
                self._count("net.bytes_received", len(chunk))
                try:
                    requests = channel.feed(chunk)
                except (FramingError, pickle.UnpicklingError, struct.error):
                    return  # garbage on the wire; drop the connection
                for request in requests:
                    pool.submit(self._serve_request, channel, request)
        finally:
            pool.shutdown(wait=False)
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _serve_request(self, channel: _Channel, request: dict) -> None:
        hook = self.fault_hook
        if hook is not None and hook(request.get("method", "")) == "drop":
            self._count("rpc.requests_swallowed", 1)
            return  # scripted one-way partition: the caller times out
        response, blob = self._handle(request)
        if isinstance(blob, Stream):
            self._serve_stream(channel, response, blob)
            return
        try:
            sent = channel.send_envelope(response, blob)
        except FramingError:
            # The response does not fit in a frame; the connection is
            # still at a boundary, so report the failure in-band.
            self._count("net.frames_rejected", 1)
            err = {"id": response.get("id"), "ok": False, "etype": "FramingError",
                   "error": "response exceeds the frame size limit", "data": None}
            try:
                sent = channel.send_envelope(err)
            except OSError:
                return
        except OSError:
            return
        self._count("net.bytes_sent", sent)

    def _serve_stream(self, channel: _Channel, begin: dict, stream: Stream) -> None:
        """Send one streamed response: begin, page chunks, end.

        Each chunk (envelope + page frame) is sent atomically but
        independently, so other responses -- and other streams -- may
        interleave between pages on the same connection.  Pages are
        pulled from the (possibly lazy) iterable one at a time, so the
        server never holds more than one encoded page of a large
        response.  A failure mid-iteration (oversized page, handler
        exception inside a generator) is reported by a failing ``end``
        envelope: the client discards the partial page buffer and raises,
        with the connection still healthy at a frame boundary.
        """
        rid = begin.get("id")
        try:
            sent = channel.send_envelope(begin)
        except OSError:
            return
        self._count("net.bytes_sent", sent)
        pages_sent = 0
        error: tuple[str, str] | None = None
        try:
            for page in stream.pages:
                chunk = {"id": rid, "stream": "chunk", "seq": pages_sent, "blob": True}
                sent = channel.send_envelope(chunk, page)
                self._count("net.bytes_sent", sent)
                pages_sent += 1
        except FramingError as exc:
            # The oversized page was rejected before any of its bytes hit
            # the wire, so the stream can still end cleanly in-band.
            self._count("net.frames_rejected", 1)
            error = ("FramingError", str(exc))
        except OSError:
            return
        except Exception as exc:  # the pages iterable failed mid-stream
            self._count("rpc.handler_errors", 1)
            error = (type(exc).__name__, str(exc))
        if error is None:
            end = {"id": rid, "ok": True, "stream": "end", "pages": pages_sent}
            self._count("rpc.streams_served", 1)
            self._count("rpc.stream_pages_sent", pages_sent)
        else:
            end = {"id": rid, "ok": False, "stream": "end",
                   "etype": error[0], "error": error[1], "data": None}
        try:
            sent = channel.send_envelope(end)
        except OSError:
            return
        self._count("net.bytes_sent", sent)

    def _handle(self, request: dict) -> tuple[dict, Any]:
        rid = request.get("id")
        try:
            method = request["method"]
            handler = self._handlers[method]
        except KeyError as exc:
            return ({"id": rid, "ok": False, "etype": "UnknownMethod",
                     "error": f"no handler for {exc}", "data": None}, None)
        args = dict(request.get("args") or {})
        blob_arg = request.get("blob_arg")
        if blob_arg is not None:
            args[blob_arg] = request.get("__blob__")
        self._count("rpc.served", 1)
        try:
            value = handler(**args)
        except Exception as exc:
            self._count("rpc.handler_errors", 1)
            return ({
                "id": rid,
                "ok": False,
                "etype": type(exc).__name__,
                "error": str(exc),
                "data": getattr(exc, "rpc_data", None),
            }, None)
        if isinstance(value, Blob):
            return ({"id": rid, "ok": True, "value": None, "blob": True}, value.data)
        if isinstance(value, Stream):
            return ({"id": rid, "ok": True, "stream": "begin",
                     "value": value.value}, value)
        return ({"id": rid, "ok": True, "value": value}, None)

    def stop(self) -> None:
        self._running.clear()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)


class RpcClient:
    """One TCP connection multiplexing many concurrent in-flight calls.

    ``call_async`` assigns an envelope id, registers a future, and
    returns; a dedicated reader thread completes futures as responses
    arrive (in any order).  ``call`` is the blocking convenience wrapper.
    When the transport dies, every in-flight future fails with
    :class:`RpcConnectionError` -- exactly the signal the cluster layer
    converts into ``WorkerLost``.

    At most ``net.max_in_flight`` requests may await responses at once:
    ``call_async`` blocks on the window semaphore until a slot frees
    (a response arrives, a call is cancelled, or the transport dies), so
    a caller cannot pipeline unbounded state onto one connection.  The
    occupancy is exported as the ``rpc.in_flight`` gauge.

    Streamed responses are reassembled here: pages announced by ``stream
    chunk`` envelopes are buffered per request id (``rpc.stream_pages``
    gauge tracks the buffered count) and handed to the future as a
    :class:`StreamResult` at ``stream end``.  ``stream_page_hook``, when
    set, is invoked as ``hook(address, pages_so_far)`` after each page
    arrives -- the fault-injection tests use it to kill a peer
    mid-stream at a deterministic point.
    """

    def __init__(self, host: str, port: int, net: NetConfig | None = None, metrics=None) -> None:
        self.net = net or NetConfig()
        self.address = (host, port)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._next_id = 0
        self._pending: dict[int, Future] = {}
        self._streams: dict[int, list] = {}
        self._window = threading.Semaphore(self.net.max_in_flight)
        self._admitted = 0
        self._closed = False
        self.stream_page_hook: Optional[Callable[[tuple[str, int], int], None]] = None
        #: Chaos seam: ``hook(addr, method) -> "drop" | "blackhole" | None``
        #: runs before each request is sent (see the module docstring).
        self.fault_hook: Optional[Callable[[tuple[str, int], str], Optional[str]]] = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=self.net.connect_timeout
            )
        except OSError as exc:
            raise RpcConnectionError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)  # the reader blocks; per-call timeouts are future-side
        self._channel = _Channel(
            self._sock, self.net.max_frame_bytes,
            resolve_codec(self.net.compression, self.net.compression_level),
            self.net.compression_min_bytes, self._metrics,
        )
        self._reader = threading.Thread(
            target=self._read_loop, name=f"rpc-reader:{host}:{port}", daemon=True
        )
        self._reader.start()

    # -- issuing calls ---------------------------------------------------------

    def call_async(self, method: str, args: dict[str, Any] | None = None,
                   blob=None, blob_arg: str | None = None) -> Future:
        """Pipeline one request; the returned future resolves to its value.

        ``blob`` ships out-of-band as a raw frame; ``blob_arg`` names the
        handler keyword it binds to.  Frame-size violations raise
        :class:`FramingError` here, before any bytes are sent.

        Blocks while ``net.max_in_flight`` requests are already awaiting
        responses on this connection -- the transport's backpressure
        window.  The slot is held until the call's future completes
        (response, cancellation, or transport death).
        """
        action: Any = None
        delay_s = 0.0
        hook = self.fault_hook
        if hook is not None:
            action = hook(self.address, method)
            if action == "drop":
                self._count("net.sends_dropped", 1)
                raise RpcConnectionError(
                    f"{method} to {self.address} dropped by fault injection"
                )
            if isinstance(action, tuple) and action[0] == "delay":
                delay_s = float(action[1])
                action = None  # the send still happens, just later
        self._window_acquire()
        admitted = False
        try:
            future: Future = Future()
            with self._lock:
                if self._closed:
                    raise RpcConnectionError(f"connection to {self.address} is closed")
                self._next_id += 1
                rid = self._next_id
                self._pending[rid] = future
            envelope: dict[str, Any] = {"id": rid, "method": method, "args": args or {}}
            if blob is not None:
                if blob_arg is None:
                    raise ValueError("blob requires blob_arg naming the handler keyword")
                envelope["blob_arg"] = blob_arg
                if len(blob) > self.net.max_frame_bytes:
                    self._forget(rid)
                    self._count("net.frames_rejected", 1)
                    raise FramingError(
                        f"blob of {len(blob)} bytes exceeds the "
                        f"{self.net.max_frame_bytes}-byte frame limit"
                    )
            try:
                if action == "blackhole":
                    # Admitted and registered, but nothing hits the wire:
                    # the caller waits out its timeout, exactly like a
                    # request lost inside a partitioned network.
                    self._count("net.sends_blackholed", 1)
                    sent = 0
                elif delay_s > 0.0:
                    # Scripted latency: admitted and registered now, bytes
                    # on the wire later from a timer thread.  The caller's
                    # per-call deadline keeps running, so a delay longer
                    # than the timeout looks exactly like a straggling
                    # link; crucially, the *calling thread* never sleeps.
                    self._count("net.sends_delayed", 1)
                    self._defer_send(rid, future, envelope, blob, delay_s)
                    sent = 0
                else:
                    sent = self._channel.send_envelope(envelope, blob)
            except FramingError:
                self._forget(rid)
                self._count("net.frames_rejected", 1)
                raise
            except OSError as exc:
                self._forget(rid)
                self._teardown(RpcConnectionError(f"send to {self.address} failed: {exc}"))
                raise RpcConnectionError(f"{method} to {self.address}: {exc}") from exc
            admitted = True
        finally:
            if not admitted:
                self._window_release()
        # If the response already arrived, the callback fires immediately.
        future.add_done_callback(self._window_done)
        self._count("net.bytes_sent", sent)
        return future

    def _defer_send(self, rid: int, future: Future, envelope: dict,
                    blob, delay_s: float) -> None:
        """Put a chaos-delayed request on the wire after ``delay_s``.

        Runs on a daemon :class:`threading.Timer` thread;
        ``_Channel.send_envelope`` takes the channel's own send lock, so
        the late send interleaves safely with concurrent normal sends.
        A connection torn down in the meantime surfaces as ``OSError``
        and fails over exactly like a live send failure.
        """
        def fire() -> None:
            try:
                sent = self._channel.send_envelope(envelope, blob)
            except FramingError as exc:
                self._forget(rid)
                self._count("net.frames_rejected", 1)
                if not future.done():
                    future.set_exception(exc)
                return
            except OSError as exc:
                self._teardown(
                    RpcConnectionError(f"send to {self.address} failed: {exc}")
                )
                return
            self._count("net.bytes_sent", sent)

        timer = threading.Timer(delay_s, fire)
        timer.daemon = True
        timer.start()

    # -- the in-flight window ---------------------------------------------------

    def _window_acquire(self) -> None:
        """Take one in-flight slot; block while the window is full.

        Polls so a connection closed underneath a blocked caller raises
        instead of hanging (teardown cannot know how many callers wait).
        """
        while not self._window.acquire(timeout=0.05):
            with self._lock:
                if self._closed:
                    raise RpcConnectionError(
                        f"connection to {self.address} is closed"
                    )
        with self._lock:
            self._admitted += 1
            occupancy = self._admitted
        self._gauge("rpc.in_flight", occupancy)

    def _window_release(self) -> None:
        with self._lock:
            self._admitted -= 1
            occupancy = self._admitted
        self._gauge("rpc.in_flight", occupancy)
        self._window.release()

    def _window_done(self, _future: Future) -> None:
        self._window_release()

    def call(self, method: str, args: dict[str, Any] | None = None,
             timeout: float | None = None, blob=None, blob_arg: str | None = None) -> Any:
        """Send one request and wait for its response (per-call timeout)."""
        future = self.call_async(method, args, blob=blob, blob_arg=blob_arg)
        try:
            return future.result(timeout if timeout is not None else self.net.call_timeout)
        except FutureTimeout:
            # The call may still be executing remotely; the reader will
            # discard its (now orphaned) response when it arrives.
            future.cancel()
            raise RpcTimeout(f"{method} to {self.address} timed out") from None

    # -- the reader ------------------------------------------------------------

    def _read_loop(self) -> None:
        error: NetworkError
        try:
            while True:
                chunk = self._sock.recv(_RECV_CHUNK)
                if not chunk:
                    error = RpcConnectionError(
                        f"{self.address} closed the connection mid-call"
                    )
                    break
                self._count("net.bytes_received", len(chunk))
                for envelope in self._channel.feed(chunk):
                    self._complete(envelope)
        except (FramingError, pickle.UnpicklingError, struct.error) as exc:
            # Garbage from the peer is a transport failure (retryable),
            # unlike a send-side FramingError raised before any bytes move.
            error = RpcConnectionError(f"garbage from {self.address}: {exc}")
        except OSError as exc:
            error = RpcConnectionError(f"connection to {self.address} died: {exc}")
        self._teardown(error)

    def _complete(self, response: dict) -> None:
        rid = response.get("id")
        stream = response.get("stream")
        if stream == "begin":
            with self._lock:
                # Only open a buffer for a call someone still waits on; a
                # cancelled call's stream is discarded page by page.
                if rid in self._pending:
                    self._streams[rid] = StreamResult(response.get("value"), [])
            return
        if stream == "chunk":
            with self._lock:
                partial = self._streams.get(rid)
                if partial is not None:
                    partial.pages.append(response.get("__blob__"))
                    pages = len(partial.pages)
                    buffered = sum(len(s.pages) for s in self._streams.values())
            if partial is None:
                self._count("rpc.orphan_responses", 1)
                return
            self._gauge("rpc.stream_pages", buffered)
            hook = self.stream_page_hook
            if hook is not None:
                try:
                    hook(self.address, pages)
                except Exception:
                    pass  # a chaos hook must not take down the reader
            return
        if stream == "end":
            with self._lock:
                partial = self._streams.pop(rid, None)
                future = self._pending.pop(rid, None)
                buffered = sum(len(s.pages) for s in self._streams.values())
            self._gauge("rpc.stream_pages", buffered)
            if future is None:
                self._count("rpc.orphan_responses", 1)
                return
            if not future.set_running_or_notify_cancel():
                return  # caller timed out and cancelled
            if response.get("ok"):
                self._count("rpc.streams_completed", 1)
                future.set_result(partial if partial is not None
                                  else StreamResult(None, []))
            else:
                self._count("rpc.streams_aborted", 1)
                future.set_exception(RpcRemoteError(
                    response.get("etype", "Exception"),
                    response.get("error", ""),
                    response.get("data"),
                ))
            return
        with self._lock:
            future = self._pending.pop(rid, None)
        if future is None:
            self._count("rpc.orphan_responses", 1)  # abandoned after a timeout
            return
        if response.get("ok"):
            value = response.get("__blob__") if response.get("blob") else response.get("value")
            if not future.set_running_or_notify_cancel():
                return  # caller timed out and cancelled
            future.set_result(value)
        else:
            err = RpcRemoteError(
                response.get("etype", "Exception"),
                response.get("error", ""),
                response.get("data"),
            )
            if not future.set_running_or_notify_cancel():
                return
            future.set_exception(err)

    def _forget(self, rid: int) -> None:
        with self._lock:
            self._pending.pop(rid, None)

    def _teardown(self, error: NetworkError) -> None:
        """Fail every in-flight future; no response can ever arrive now.

        Partial streams are discarded whole (counted in
        ``rpc.streams_aborted``) -- their futures fail like any other
        in-flight call, so a caller never observes half a stream.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            aborted_streams = len(self._streams)
            self._streams.clear()
        if aborted_streams:
            self._count("rpc.streams_aborted", aborted_streams)
            self._gauge("rpc.stream_pages", 0)
        for future in pending:
            if future.set_running_or_notify_cancel():
                future.set_exception(error)
        if not already:
            # shutdown() before close(): closing an fd does not wake a
            # thread blocked in recv(), so the reader would hang (and
            # close() would stall on the join) until the peer spoke.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    # -- state -----------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        self._teardown(RpcConnectionError(f"connection to {self.address} was closed"))
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=2.0)

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.gauge(name).set(value)


class ConnectionPool:
    """One shared multiplexed connection per address, with retries.

    Any number of threads may call concurrently; their requests pipeline
    onto the address's single connection and complete independently.
    Transport failures close the shared connection and retry per the
    policy; remote errors and timeouts are surfaced immediately (a timed
    out call may still be executing remotely, so the connection is *not*
    torn down -- the late response is discarded by id).
    """

    def __init__(self, net: NetConfig | None = None, metrics=None,
                 policy: RetryPolicy | None = None) -> None:
        self.net = net or NetConfig()
        self._metrics = metrics
        self.policy = policy or RetryPolicy.from_config(self.net)
        self._conns: dict[tuple[str, int], RpcClient] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: Propagated to every connection (see RpcClient.stream_page_hook);
        #: the fault-injection tests use it to act mid-stream.
        self.stream_page_hook: Optional[Callable[[tuple[str, int], int], None]] = None
        #: Propagated to every connection (see RpcClient.fault_hook); the
        #: chaos plane's send seam for every call issued through the pool.
        self.fault_hook: Optional[Callable[[tuple[str, int], str], Optional[str]]] = None

    # -- connection management -----------------------------------------------------

    def _connection(self, addr: tuple[str, int]) -> RpcClient:
        with self._lock:
            if self._closed:
                raise RpcConnectionError("connection pool is closed")
            client = self._conns.get(addr)
            if client is not None and not client.closed:
                client.stream_page_hook = self.stream_page_hook
                client.fault_hook = self.fault_hook
                return client
            if client is not None:
                del self._conns[addr]
        dialed = RpcClient(addr[0], addr[1], self.net, self._metrics)
        dialed.stream_page_hook = self.stream_page_hook
        dialed.fault_hook = self.fault_hook
        self._count("net.connections_opened", 1)
        with self._lock:
            if self._closed:
                dialed.close()
                raise RpcConnectionError("connection pool is closed")
            current = self._conns.get(addr)
            if current is not None and not current.closed:
                dialed.close()  # lost a dial race; share the winner
                return current
            self._conns[addr] = dialed
        return dialed

    def _discard(self, addr: tuple[str, int], client: RpcClient) -> None:
        with self._lock:
            if self._conns.get(addr) is client:
                del self._conns[addr]
        client.close()

    # -- calls ---------------------------------------------------------------------

    def call(
        self,
        addr: tuple[str, int],
        method: str,
        args: dict[str, Any] | None = None,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
        blob=None,
        blob_arg: str | None = None,
    ) -> Any:
        policy = policy or self.policy
        last: NetworkError | None = None
        first_try = policy.clock()
        for attempt in range(policy.attempts):
            self._count("rpc.calls", 1)
            client: RpcClient | None = None
            started = time.perf_counter()
            try:
                client = self._connection(addr)
                future = client.call_async(method, args, blob=blob, blob_arg=blob_arg)
                value = future.result(
                    timeout if timeout is not None else self.net.call_timeout
                )
            except FutureTimeout:
                future.cancel()
                self._count("rpc.failures", 1)
                raise RpcTimeout(f"{method} to {addr} timed out") from None
            except RpcRemoteError:
                raise  # the transport worked; the connection is still good
            except FramingError:
                raise  # send-side size rejection: no bytes hit the socket
            except _TRANSPORT_ERRORS as exc:
                if client is not None:
                    self._discard(addr, client)
                last = exc if isinstance(exc, NetworkError) else RpcConnectionError(str(exc))
                if attempt + 1 < policy.attempts:
                    delay = policy.backoff(attempt)
                    if policy.gives_up(first_try, delay):
                        self._count("rpc.retries_abandoned", 1)
                        break  # the elapsed budget cannot absorb another sleep
                    self._count("rpc.retries", 1)
                    policy.sleep(delay)
                continue
            else:
                self._observe_latency(time.perf_counter() - started)
                return value
        self._count("rpc.failures", 1)
        raise RpcConnectionError(
            f"{method} to {addr} failed after {attempt + 1} attempt(s): {last}"
        )

    def call_async(self, addr: tuple[str, int], method: str,
                   args: dict[str, Any] | None = None,
                   blob=None, blob_arg: str | None = None) -> Future:
        """Pipeline one call on the shared connection (no retries)."""
        self._count("rpc.calls", 1)
        return self._connection(addr).call_async(method, args, blob=blob, blob_arg=blob_arg)

    def call_many(
        self,
        addr: tuple[str, int],
        calls: Sequence[tuple],
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> list[Any]:
        """Pipeline a batch of calls to one peer.

        Each entry is ``(method, args)`` or ``(method, args, blob,
        blob_arg)`` -- the long form ships its payload out-of-band beside
        the envelope, so a batch of block copies (failover re-replication)
        pipelines without a pickle copy per block.  All requests go out
        back-to-back on the shared connection and execute concurrently
        server-side; results come back in request order.  Calls that fail
        in transport are retried individually, payload included (remote
        errors propagate immediately, like :meth:`call`).
        """
        unpacked = [
            (c[0], c[1], c[2] if len(c) > 2 else None, c[3] if len(c) > 3 else None)
            for c in calls
        ]
        futures: list[Future | None] = []
        try:
            client = self._connection(addr)
            for method, args, blob, blob_arg in unpacked:
                self._count("rpc.calls", 1)
                futures.append(client.call_async(method, args, blob=blob,
                                                 blob_arg=blob_arg))
        except _TRANSPORT_ERRORS:
            futures.extend([None] * (len(unpacked) - len(futures)))
        results: list[Any] = []
        deadline = timeout if timeout is not None else self.net.call_timeout
        for future, (method, args, blob, blob_arg) in zip(futures, unpacked):
            value = None
            retry = future is None
            if future is not None:
                try:
                    value = future.result(deadline)
                except FutureTimeout:
                    future.cancel()
                    self._count("rpc.failures", 1)
                    raise RpcTimeout(f"{method} to {addr} timed out") from None
                except RpcRemoteError:
                    raise
                except _TRANSPORT_ERRORS:
                    retry = True
            if retry:
                value = self.call(addr, method, args, timeout=timeout, policy=policy,
                                  blob=blob, blob_arg=blob_arg)
            results.append(value)
        return results

    def broadcast(
        self,
        addrs: Sequence[tuple[str, int]],
        method: str,
        args: dict[str, Any] | None = None,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> list[Any]:
        """Issue the same call to many peers concurrently; results align
        with ``addrs``.  The first error (of any kind) propagates after
        every call has resolved."""
        if not addrs:
            return []
        with ThreadPoolExecutor(max_workers=len(addrs),
                                thread_name_prefix="rpc-broadcast") as pool:
            futures = [
                pool.submit(self.call, addr, method, args, timeout, policy)
                for addr in addrs
            ]
            results, first_error = [], None
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
            if first_error is not None:
                raise first_error
            return results

    # -- teardown --------------------------------------------------------------------

    def close_address(self, addr: tuple[str, int]) -> None:
        """Drop the connection to one peer (it left the cluster)."""
        with self._lock:
            client = self._conns.pop(addr, None)
        if client is not None:
            client.close()

    def close_all(self) -> None:
        with self._lock:
            self._closed = True
            clients = list(self._conns.values())
            self._conns.clear()
        for client in clients:
            client.close()

    def idle_connections(self, addr: tuple[str, int]) -> int:
        """Live shared connections to ``addr`` with nothing in flight."""
        with self._lock:
            client = self._conns.get(addr)
        if client is None or client.closed:
            return 0
        return 1 if client.in_flight == 0 else 0

    def _observe_latency(self, seconds: float) -> None:
        if self._metrics is not None:
            self._metrics.histogram("rpc.latency_s").record(seconds)

    def _count(self, name: str, amount: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)
