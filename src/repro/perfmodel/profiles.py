"""Per-application cost profiles.

The discrete-event model does not execute map functions; it charges CPU
time per input byte and moves ``shuffle_ratio`` of the input across the
network.  The constants below are calibrated to the paper's testbed
(dual 4-core Xeon E5506 @ 2.13 GHz) so that the *relative* behaviour of
the seven applications matches §III: grep/sort are IO-bound, word count
and inverted index are mixed, and the iterative trio is compute-heavy with
k-means/logreg emitting tiny iteration outputs while page rank emits an
output comparable to its input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KB, MB

__all__ = ["AppProfile", "APP_PROFILES"]


@dataclass(frozen=True)
class AppProfile:
    """Costs the engine charges for one application."""

    name: str

    map_rate: float
    """Map-side processing throughput, bytes/second per slot."""

    reduce_rate: float
    """Reduce-side processing throughput, bytes/second per slot."""

    shuffle_ratio: float
    """Intermediate bytes produced per input byte (post-combiner)."""

    output_ratio: float
    """Final output bytes per input byte."""

    iteration_output_ratio: float = 0.0
    """Per-iteration output bytes per input byte (iterative apps only).

    k-means emits ~1.7 KB of centroids regardless of input; page rank
    emits a rank vector about as large as its input (paper §III-B).
    """

    iteration_output_floor: int = 2 * KB
    """Lower bound on the iteration output (centroids never round to 0)."""

    reuses_input_every_iteration: bool = True
    """Whether iteration i > 0 re-reads the original input (k-means, logreg
    and page rank all do; page rank additionally reads the prior ranks)."""

    jvm_sensitivity: float = 1.0
    """How much of the app's CPU time scales with the framework's
    ``compute_efficiency``.  Arithmetic-heavy kernels (k-means, logistic
    regression) see the full C++-vs-JVM gap the paper credits (§III-E);
    data-movement-dominated apps (page rank's joins, sort, grep) see
    little of it."""

    compute_skew: float = 0.0
    """Record-level compute skew: per-block CPU multipliers are drawn from
    a lognormal with this sigma, keyed deterministically by the block id.
    The paper's §I observation: "some map tasks may take longer to
    complete than other map tasks if certain input data blocks require
    more computations. page rank is an application of this type"."""

    def block_cpu_multiplier(self, block_id: str) -> float:
        """Deterministic per-block compute factor (mean ~1)."""
        if self.compute_skew <= 0:
            return 1.0
        import hashlib
        import math

        digest = hashlib.sha1(f"{self.name}:{block_id}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        v = int.from_bytes(digest[8:16], "big") / float(1 << 64)
        # Box-Muller: one standard normal from two uniform draws.
        z = math.sqrt(-2.0 * math.log(max(u, 1e-12))) * math.cos(2 * math.pi * v)
        sigma = self.compute_skew
        # Lognormal normalized to mean 1: exp(sigma*z - sigma^2/2).
        return math.exp(sigma * z - sigma * sigma / 2.0)

    def map_cpu_seconds(self, nbytes: float) -> float:
        return nbytes / self.map_rate

    def reduce_cpu_seconds(self, nbytes: float) -> float:
        return nbytes / self.reduce_rate

    def iteration_output_bytes(self, input_bytes: float) -> int:
        return max(self.iteration_output_floor, int(input_bytes * self.iteration_output_ratio))


APP_PROFILES: dict[str, AppProfile] = {
    # IO-bound scanners: the disk is the bottleneck, CPU nearly free.
    "grep": AppProfile(
        name="grep",
        map_rate=120 * MB,
        reduce_rate=200 * MB,
        shuffle_ratio=0.001,
        output_ratio=0.001,
        jvm_sensitivity=0.3,
    ),
    # Whole-input shuffle: every byte crosses the network.
    "sort": AppProfile(
        name="sort",
        map_rate=150 * MB,
        reduce_rate=60 * MB,
        shuffle_ratio=1.0,
        output_ratio=1.0,
        jvm_sensitivity=0.3,
    ),
    "wordcount": AppProfile(
        name="wordcount",
        map_rate=35 * MB,
        reduce_rate=80 * MB,
        shuffle_ratio=0.05,
        output_ratio=0.01,
        jvm_sensitivity=0.7,
    ),
    "invertedindex": AppProfile(
        name="invertedindex",
        map_rate=30 * MB,
        reduce_rate=50 * MB,
        shuffle_ratio=0.4,
        output_ratio=0.3,
        jvm_sensitivity=0.7,
    ),
    # Iterative, compute-heavy, tiny iteration outputs.
    "kmeans": AppProfile(
        name="kmeans",
        map_rate=18 * MB,
        reduce_rate=100 * MB,
        shuffle_ratio=0.0005,
        output_ratio=0.0001,
        iteration_output_ratio=0.0,
    ),
    "logreg": AppProfile(
        name="logreg",
        map_rate=22 * MB,
        reduce_rate=100 * MB,
        shuffle_ratio=0.0005,
        output_ratio=0.0001,
        iteration_output_ratio=0.0,
    ),
    # Iterative with a large per-iteration output (the rank vector).
    "pagerank": AppProfile(
        name="pagerank",
        map_rate=12 * MB,
        reduce_rate=25 * MB,
        shuffle_ratio=1.0,
        output_ratio=1.0,
        iteration_output_ratio=1.0,
        jvm_sensitivity=0.0,
        compute_skew=0.6,
    ),
}
