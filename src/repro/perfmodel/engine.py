"""The discrete-event MapReduce job engine.

Runs :class:`SimJobSpec` jobs over a :class:`~repro.sim.cluster.SimCluster`
under a :class:`~repro.perfmodel.framework.FrameworkModel`.  Map tasks
contend for per-node slots and the per-node disk, read through the
distributed in-memory cache (iCache) and the OS page cache, and ship
intermediate data according to the framework's shuffle mode:

* **proactive** (EclipseMR): each map task's output streams to its
  reduce-side server *while the task computes*; the push overlaps compute
  and is written to the destination's disk (and page cache) on arrival.
* **pull** (Hadoop): map output is written to the mapper's local disk;
  after the map phase, reducers read it back and pull it over the network.
* **memory** (Spark): map output stays in memory; reducers pull it over
  the network without touching disks.

Modeling note: a real map task sprays its output to every reducer in spill
chunks.  To keep the fluid-flow network tractable, the engine aggregates
each map task's shuffle output into a single flow to a round-robin
destination; across thousands of tasks the per-link load converges to the
same distribution while the event count stays linear in tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cache.distributed import DistributedCache
from repro.common.config import ClusterConfig
from repro.common.errors import SimulationError
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dht.ring import ConsistentHashRing
from repro.perfmodel.framework import FrameworkModel
from repro.perfmodel.placement import BlockSpec
from repro.perfmodel.profiles import AppProfile
from repro.scheduler.fair import FairScheduler
from repro.scheduler.laf import LAFScheduler
from repro.sim.cluster import SimCluster
from repro.sim.engine import AllOf, AnyOf, Event, Simulation
from repro.sim.node import MEMORY_BANDWIDTH

__all__ = ["SimJobSpec", "JobTiming", "PerfEngine"]


@dataclass
class SimJobSpec:
    """One job for the performance plane."""

    app: AppProfile
    tasks: list[BlockSpec]
    """One map task per entry; entries may repeat blocks (skewed access)."""

    iterations: int = 1
    label: str = ""

    submit_at: float = 0.0
    """Arrival offset (seconds) relative to the batch start: jobs can
    arrive "as in time series" (paper §III-C) instead of all at once."""

    @property
    def input_bytes(self) -> int:
        return sum(t.size for t in self.tasks)


@dataclass
class JobTiming:
    """What the engine measured for one job."""

    label: str
    start: float = 0.0
    end: float = 0.0
    iteration_times: list[float] = field(default_factory=list)
    map_tasks: int = 0
    reduce_tasks: int = 0
    reassignments: int = 0
    task_restarts: int = 0
    """Tasks restarted because their server failed mid-execution."""
    bytes_shuffled: float = 0.0
    icache_hits: int = 0
    icache_misses: int = 0
    tasks_per_server: dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def cache_hit_ratio(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_hits / total if total else 0.0

    def tasks_per_slot_stddev(self, slots_per_server: int) -> float:
        """The paper's §III-C balance metric (stddev of tasks per slot)."""
        per_slot = [c / slots_per_server for c in self.tasks_per_server.values()]
        return float(np.std(per_slot)) if per_slot else 0.0


class PerfEngine:
    """A configured simulation ready to run jobs."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        framework: FrameworkModel | None = None,
        space: HashSpace = DEFAULT_SPACE,
    ) -> None:
        from repro.perfmodel.framework import eclipse_framework

        self.config = config or ClusterConfig()
        self.framework = framework or eclipse_framework()
        self.space = space
        self.sim = Simulation()
        self.cluster = SimCluster(self.sim, self.config)
        n = self.config.num_nodes
        self.ring = ConsistentHashRing(space)
        for i in range(n):
            self.ring.add_node(i, space.key_of(f"node-{i}"))
        self.scheduler = self.framework.make_scheduler(space, list(range(n)), self.ring)
        self.dcache = DistributedCache(
            list(range(n)), self.config.cache, space, clock=lambda: self.sim.now
        )
        # Ring order: replica neighbors are ring successors, whose hashed
        # positions are random w.r.t. racks -- about half of all replica
        # traffic crosses the inter-rack trunk, as on the real testbed.
        order = sorted(range(n), key=self.ring.position_of)
        self._ring_pos = {node: i for i, node in enumerate(order)}
        self._ring_order = order
        self._namenode = None
        if self.framework.metadata_central:
            from repro.baselines.hdfs import NameNodeModel

            self._namenode = NameNodeModel(self.sim, self.framework.namenode_lookup_time)
        self._shuffle_rr = 0
        self._dead: set[int] = set()
        self._running_on: dict[int, set] = {}
        self._failures: list[tuple[float, int]] = []
        self.trace = None
        """Optional :class:`repro.perfmodel.trace.TaskTrace`; set before
        running jobs to record per-task lifecycles."""

    # -- public API -----------------------------------------------------------

    def run_job(self, spec: SimJobSpec) -> JobTiming:
        """Run one job to completion and return its timing."""
        return self.run_jobs([spec])[0]

    def run_jobs(self, specs: list[SimJobSpec]) -> list[JobTiming]:
        """Run jobs concurrently, honoring each spec's ``submit_at`` offset."""
        timings = [JobTiming(label=spec.label or spec.app.name) for spec in specs]

        def delayed(spec, timing):
            if spec.submit_at > 0:
                yield self.sim.timeout(spec.submit_at)
            yield from self._job_process(spec, timing)

        for at, node in self._failures:
            self.sim.process(self._killer(at, node), name=f"kill-{node}")
        self._failures = []
        done = [
            self.sim.process(delayed(spec, timing), name=f"job-{i}")
            for i, (spec, timing) in enumerate(zip(specs, timings))
        ]
        self.sim.run(AllOf(done))
        return timings

    def schedule_failure(self, node: int, at: float) -> None:
        """Crash ``node`` at simulation time ``at`` during the next run.

        Running tasks on the node are killed and restarted on survivors
        (EclipseMR restarts failed tasks, §II-C); the schedulers re-cut
        their tables, the ring drops the node, and block reads fall back
        to surviving replica holders.
        """
        if not 0 <= node < self.config.num_nodes:
            raise SimulationError(f"node {node} outside the cluster")
        if at < 0:
            raise SimulationError("failure time must be non-negative")
        self._failures.append((at, node))

    def alive(self, node: int) -> bool:
        return node not in self._dead

    def _killer(self, at: float, node: int) -> Generator[Event, None, None]:
        yield self.sim.timeout(at)
        if node in self._dead:
            return
        self._dead.add(node)
        if node in self.scheduler.servers:
            self.scheduler.remove_server(node)
        if node in self.ring:
            self.ring.remove_node(node)
        order = [n for n in self._ring_order if n != node]
        self._ring_order = order
        self._ring_pos = {n: i for i, n in enumerate(order)}
        self._sync_ranges(force=True)
        # Kill everything mid-flight on the node; each task restarts itself.
        for proc in list(self._running_on.get(node, ())):
            proc.interrupt("node failure")

    def drop_caches(self) -> None:
        """Empty page caches and the distributed in-memory caches
        (the paper does this before every cold-cache job)."""
        self.cluster.drop_all_caches()
        self.dcache.clear()

    # -- job process ---------------------------------------------------------------

    def _job_process(self, spec: SimJobSpec, timing: JobTiming) -> Generator[Event, None, None]:
        fw = self.framework
        timing.start = self.sim.now
        timing.tasks_per_server = {i: 0 for i in range(self.config.num_nodes)}
        if fw.job_overhead:
            yield self.sim.timeout(fw.job_overhead)
        if self._namenode is not None:
            yield from self._namenode_op()

        for iteration in range(spec.iterations):
            it_start = self.sim.now
            state = _JobState(shuffle_factor=spec.app.shuffle_ratio)
            map_done = [
                self.sim.process(
                    self._map_task(spec, block, iteration, timing, state),
                    name=f"map-{i}",
                )
                for i, block in enumerate(spec.tasks)
            ]
            yield AllOf(map_done)
            if fw.shuffle_mode in ("pull", "memory"):
                yield from self._pull_shuffle(spec, state)
            yield from self._reduce_phase(spec, iteration, state.reduce_bytes, timing)
            yield from self._iteration_output(spec, iteration)
            timing.iteration_times.append(self.sim.now - it_start)

        timing.end = self.sim.now
        stats = self.dcache.stats()
        timing.icache_hits = stats.icache_hits - self._icache_hits_base
        timing.icache_misses = stats.icache_misses - self._icache_misses_base

    _icache_hits_base = 0
    _icache_misses_base = 0

    def snapshot_cache_counters(self) -> None:
        """Zero the per-run cache counters (call between experiments)."""
        stats = self.dcache.stats()
        self._icache_hits_base = stats.icache_hits
        self._icache_misses_base = stats.icache_misses

    # -- map tasks ------------------------------------------------------------------

    def _map_task(
        self,
        spec: SimJobSpec,
        block: BlockSpec,
        iteration: int,
        timing: JobTiming,
        state: "_JobState",
    ) -> Generator[Event, None, None]:
        """Run (and on node failure, restart) one map task."""
        from repro.sim.engine import Interrupt

        while True:
            try:
                yield from self._map_attempt(spec, block, iteration, timing, state)
                return
            except Interrupt:
                timing.task_restarts += 1
                # Loop: the scheduler no longer knows the dead server, so
                # the retry lands on a survivor.

    def _map_attempt(
        self,
        spec: SimJobSpec,
        block: BlockSpec,
        iteration: int,
        timing: JobTiming,
        state: "_JobState",
    ) -> Generator[Event, None, None]:
        fw = self.framework
        rec = None
        if self.trace is not None:
            rec = self.trace.open(
                f"{spec.label}/it{iteration}/{block.block_id}", "map", -1, self.sim.now
            )
        server, req, reassigned = yield from self._acquire_map_slot(block)
        if reassigned:
            timing.reassignments += 1
        node = self.cluster.nodes[server]
        if rec is not None:
            rec.server = server
            rec.reassigned = reassigned
            rec.started_at = self.sim.now
        proc = self.sim.active_process
        if proc is not None:
            self._running_on.setdefault(server, set()).add(proc)
        self.scheduler.notify_start(server)
        try:
            timing.tasks_per_server[server] += 1
            timing.map_tasks += 1
            if fw.task_overhead:
                yield self.sim.timeout(fw.task_overhead)
            if self._namenode is not None:
                for _ in range(fw.namenode_ops_per_task):
                    yield from self._namenode_op()

            yield from self._read_input(server, block, iteration, spec)

            out_bytes = block.size * state.shuffle_factor
            wire_bytes = out_bytes * fw.shuffle_inefficiency
            cpu = (
                spec.app.map_cpu_seconds(block.size)
                * self._cpu_scale(spec.app)
                * spec.app.block_cpu_multiplier(block.block_id)
            )
            if fw.rdd_build_rate and iteration == 0 and fw.cache_input_blocks:
                cpu += block.size / fw.rdd_build_rate

            if fw.shuffle_mode == "proactive" and out_bytes > 0:
                dest = self._next_shuffle_dest()
                state.reduce_bytes[dest] = state.reduce_bytes.get(dest, 0.0) + out_bytes
                timing.bytes_shuffled += out_bytes
                transfer = self.cluster.network.transfer(server, dest, wire_bytes)
                compute = self.sim.timeout(cpu)
                yield AllOf([compute, transfer])
                # the push lands on the destination's disk (and page cache)
                self.sim.process(
                    self.cluster.nodes[dest].write_extent(
                        ("shuffle", spec.label, dest, self.sim.now), int(out_bytes)
                    )
                )
            else:
                yield self.sim.timeout(cpu)
                if out_bytes > 0:
                    dest = self._next_shuffle_dest()
                    state.reduce_bytes[dest] = state.reduce_bytes.get(dest, 0.0) + out_bytes
                    timing.bytes_shuffled += out_bytes
                    state.pending_pull.setdefault(dest, []).append((server, wire_bytes))
                    if fw.shuffle_mode == "pull":
                        # Hadoop materializes map output on the local disk.
                        yield from node.write_extent(
                            ("mapout", spec.label, block.block_id, iteration), int(out_bytes)
                        )
        finally:
            if rec is not None:
                rec.done_at = self.sim.now
            if proc is not None:
                self._running_on.get(server, set()).discard(proc)
            node.map_slots.release(req)
            if server in self.scheduler.servers:
                self.scheduler.notify_finish(server)

    def _acquire_map_slot(self, block: BlockSpec) -> Generator[Event, None, tuple]:
        """Schedule + wait for a slot, honoring the delay-scheduling wait."""
        if isinstance(self.scheduler, FairScheduler):
            assignment = self.scheduler.assign(locations=list(block.holders))
        else:
            assignment = self.scheduler.assign(hash_key=block.key)
        self._sync_ranges()
        server = assignment.server
        node = self.cluster.nodes[server]
        req = node.map_slots.request()
        reassigned = False
        if assignment.wait_limit is not None and not req.triggered:
            idx, _ = yield AnyOf([req, self.sim.timeout(assignment.wait_limit)])
            if not req.triggered:
                node.map_slots.cancel(req)
                self.scheduler.cancel_assignment(server)
                fallback = self.scheduler.reassign()
                server = fallback.server
                node = self.cluster.nodes[server]
                req = node.map_slots.request()
                reassigned = True
                yield req
            elif idx == 1:
                pass  # timer fired in the same instant the slot arrived
        else:
            yield req
        while server in self._dead:
            # The server died while the task queued: move on.
            node.map_slots.cancel(req)
            self.scheduler.cancel_assignment(server)
            fallback = self.scheduler.reassign()
            server = fallback.server
            node = self.cluster.nodes[server]
            req = node.map_slots.request()
            reassigned = True
            yield req
        return server, req, reassigned

    def _read_input(
        self, server: int, block: BlockSpec, iteration: int, spec: SimJobSpec
    ) -> Generator[Event, None, None]:
        icache = self.dcache.worker(server)
        hit, _ = icache.get_input(block.block_id)
        if hit:
            yield self.sim.timeout(block.size / MEMORY_BANDWIDTH)
        else:
            # Any replica holder will do (the paper reads the predecessor/
            # successor copies, §II-A/§II-E).  A local copy is preferred --
            # remote reads burn trunk bandwidth -- but a deeply queued local
            # spindle drains its tail through an idle replica holder.
            holders = [h for h in block.holders if h not in self._dead]
            if not holders:
                # All original holders are gone: recovery re-replicated the
                # block to the current ring owner (§II-A).
                holders = [self.ring.owner_of(block.key)]
            best = min(
                holders,
                key=lambda h: self.cluster.nodes[h].disk.queue_length,
            )
            if (
                server in holders
                and self.cluster.nodes[server].disk.queue_length
                <= self.cluster.nodes[best].disk.queue_length + 2
            ):
                owner = server
            else:
                owner = best
            yield from self.cluster.remote_read(server, owner, ("blk", block.block_id), block.size)
            if self.framework.cache_input_blocks:
                icache.put_input(block.block_id, None, size=block.size, hash_key=block.key)
        if iteration > 0 and spec.app.iteration_output_ratio > 0:
            # page rank also consumes the previous iteration's output;
            # each task reads its share, served from the local page cache
            # when the write is still resident.
            share = spec.app.iteration_output_bytes(spec.input_bytes) / max(1, len(spec.tasks))
            yield from self.cluster.nodes[server].read_extent(
                ("iterout", spec.label, iteration - 1, server), int(share)
            )

    # -- shuffle ------------------------------------------------------------------

    def _next_shuffle_dest(self) -> int:
        for _ in range(self.config.num_nodes):
            dest = self._shuffle_rr % self.config.num_nodes
            self._shuffle_rr += 1
            if dest not in self._dead:
                return dest
        raise SimulationError("no alive node to shuffle to")

    def _pull_shuffle(self, spec: SimJobSpec, state: "_JobState") -> Generator[Event, None, None]:
        """Post-map fetch: each reducer pulls its input from mapper nodes."""
        fw = self.framework
        pulls = []
        pending, state.pending_pull = state.pending_pull, {}

        def one_pull(src: int, dst: int, nbytes: float):
            if fw.shuffle_mode == "pull":
                # disk-backed: the mapper side re-reads the spilled output
                yield from self.cluster.nodes[src].read_extent(
                    ("mapout-read", spec.label, src, dst), int(nbytes)
                )
            yield self.cluster.network.transfer(src, dst, nbytes)

        for dst, sources in pending.items():
            # merge per source server to bound the flow count at n^2
            merged: dict[int, float] = {}
            for src, nbytes in sources:
                merged[src] = merged.get(src, 0.0) + nbytes
            for src, nbytes in merged.items():
                if src != dst and nbytes > 0:
                    pulls.append(self.sim.process(one_pull(src, dst, nbytes)))
        if pulls:
            yield AllOf(pulls)

    # -- reduce phase ------------------------------------------------------------------

    def _reduce_phase(
        self,
        spec: SimJobSpec,
        iteration: int,
        reduce_bytes: dict[int, float],
        timing: JobTiming,
    ) -> Generator[Event, None, None]:
        tasks = []
        merged: dict[int, float] = {}
        for server, nbytes in reduce_bytes.items():
            if server in self._dead:
                # The pushed data went down with the node: the reduce task
                # reruns on a survivor, which re-fetches the bytes there.
                server = self._ring_neighbor_alive(server)
            merged[server] = merged.get(server, 0.0) + nbytes
        for server, nbytes in merged.items():
            if nbytes > 0:
                tasks.append(
                    self.sim.process(
                        self._reduce_task(spec, iteration, server, nbytes, timing)
                    )
                )
        if tasks:
            yield AllOf(tasks)

    def _reduce_task(
        self,
        spec: SimJobSpec,
        iteration: int,
        server: int,
        nbytes: float,
        timing: JobTiming,
    ) -> Generator[Event, None, None]:
        fw = self.framework
        node = self.cluster.nodes[server]
        rec = None
        if self.trace is not None:
            rec = self.trace.open(f"{spec.label}/it{iteration}/r{server}", "reduce", server, self.sim.now)
        req = node.reduce_slots.request()
        yield req
        if rec is not None:
            rec.started_at = self.sim.now
        try:
            timing.reduce_tasks += 1
            timing.tasks_per_server[server] += 1
            if fw.task_overhead:
                yield self.sim.timeout(fw.task_overhead)
            if fw.shuffle_mode in ("memory", "proactive"):
                # Spark's fetched map output sits in executor memory; an
                # EclipseMR push was written through the destination's page
                # cache moments ago and is read back from it (the paper's
                # "reducers read these intermediate results from oCache").
                yield self.sim.timeout(nbytes / MEMORY_BANDWIDTH)
            else:
                yield from node.read_extent(("shuffle", spec.label, server, "rd"), int(nbytes))
            yield self.sim.timeout(spec.app.reduce_cpu_seconds(nbytes) * self._cpu_scale(spec.app))
            # Single-shot jobs write their final output here.  Iterative
            # jobs go through _iteration_output instead: a framework that
            # persists every iteration has already written the final
            # result when the last iteration ends, and one that does not
            # (Spark) pays its final save there.
            out = nbytes / max(spec.app.shuffle_ratio, 1e-9) * spec.app.output_ratio
            if spec.iterations == 1 and out > 0:
                for copy in range(fw.replication):
                    target = server if copy == 0 else self._ring_neighbor(server, copy)
                    if target != server:
                        yield self.cluster.network.transfer(server, target, out)
                    yield from self.cluster.nodes[target].write_extent(
                        ("out", spec.label, server, copy), int(out)
                    )
        finally:
            if rec is not None:
                rec.done_at = self.sim.now
            node.reduce_slots.release(req)

    # -- iteration outputs ----------------------------------------------------------------

    def _iteration_output(self, spec: SimJobSpec, iteration: int) -> Generator[Event, None, None]:
        """Persist (or memory-cache) this iteration's output.

        Persisting frameworks write every iteration (the last write *is*
        the final output).  Memory-resident frameworks copy in memory and
        pay a replicated disk save on the final iteration only -- the
        paper's "Spark writes its final outputs to disk storage".
        """
        if spec.iterations <= 1:
            return
        is_last = iteration == spec.iterations - 1
        total = spec.app.iteration_output_bytes(spec.input_bytes)
        n = self.config.num_nodes
        share = total // n
        if not self.framework.persist_iteration_outputs and is_last:
            if share > 0:
                writers = [
                    self.sim.process(
                        self._pipelined_write(spec, iteration, s, share, self.framework.replication)
                    )
                    for s in range(n)
                ]
                yield AllOf(writers)
            return
        if self.framework.persist_iteration_outputs and share > 0:
            # The DHT file system stores iteration outputs persistently:
            # each server writes its share and ships replica copies to its
            # ring neighbors, which write them too.
            writers = [
                self.sim.process(
                    self._pipelined_write(
                        spec, iteration, s, share,
                        self.framework.iteration_output_replication,
                    )
                )
                for s in range(n) if s not in self._dead
            ]
            if writers:
                yield AllOf(writers)
        else:
            # Spark keeps it in memory: also prime the page-cache-equivalent
            # extents so the next iteration's reads are memory reads.  Each
            # executor materializes its own share in parallel.
            for s in range(n):
                self.cluster.nodes[s].page_cache.insert(
                    ("iterout", spec.label, iteration, s), share
                )
            yield self.sim.timeout(share / MEMORY_BANDWIDTH)

    # -- plumbing -----------------------------------------------------------------------

    def _ring_neighbor_alive(self, server: int) -> int:
        """The nearest alive server (by index order) to a dead one."""
        for step in range(1, self.config.num_nodes + 1):
            cand = (server + step) % self.config.num_nodes
            if cand not in self._dead:
                return cand
        raise SimulationError("all nodes dead")

    def _ring_neighbor(self, server: int, k: int) -> int:
        """The k-th ring successor of a server (replica placement)."""
        order = self._ring_order
        return order[(self._ring_pos[server] + k) % len(order)]

    def _pipelined_write(self, spec: SimJobSpec, iteration: int, server: int, share: int, replication: int) -> Generator[Event, None, None]:
        """A DFS write pipeline: the primary writes its share, then the
        copy is forwarded hop by hop to the replica holders (the ring
        neighbors), each writing in turn -- the write is durable only when
        the pipeline drains, exactly like an HDFS/DHT-FS replicated put."""
        n = self.config.num_nodes
        yield from self.cluster.nodes[server].write_extent(
            ("iterout", spec.label, iteration, server), share
        )
        src = server
        for copy in range(1, replication):
            dst = self._ring_neighbor(server, copy)
            yield self.cluster.network.transfer(src, dst, share)
            yield from self.cluster.nodes[dst].write_extent(
                ("iterout-r", spec.label, iteration, server, copy), share
            )
            src = dst

    def _cpu_scale(self, app: AppProfile) -> float:
        """CPU multiplier: the JVM-sensitive fraction of the app's compute
        runs at the framework's compute_efficiency, the rest at full speed."""
        sens = app.jvm_sensitivity
        return sens / self.framework.compute_efficiency + (1.0 - sens)

    def _replicate_extent(self, src: int, dst: int, key, nbytes: int) -> Generator[Event, None, None]:
        yield self.cluster.network.transfer(src, dst, nbytes)
        yield from self.cluster.nodes[dst].write_extent(key, nbytes)

    def _namenode_op(self) -> Generator[Event, None, None]:
        assert self._namenode is not None
        yield from self._namenode.lookup()

    def _sync_ranges(self, force: bool = False) -> None:
        if isinstance(self.scheduler, LAFScheduler):
            if force and set(self.dcache.servers) != set(self.scheduler.servers):
                for gone in set(self.dcache.servers) - set(self.scheduler.servers):
                    self.dcache.remove_server(gone)
            if self.dcache.partition is not self.scheduler.partition:
                if set(self.scheduler.partition.servers) == set(self.dcache.servers):
                    self.dcache.set_partition(self.scheduler.partition)


@dataclass
class _JobState:
    """Per-job, per-iteration shuffle bookkeeping (jobs run concurrently)."""

    shuffle_factor: float
    reduce_bytes: dict[int, float] = field(default_factory=dict)
    pending_pull: dict[int, list[tuple[int, float]]] = field(default_factory=dict)
