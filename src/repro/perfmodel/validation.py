"""Cross-plane validation: do the two planes agree where they overlap?

The functional engine and the performance model share the algorithm code
(ring, caches, schedulers) but execute through different machinery.  For
quantities that do not depend on timing -- scheduler assignment spread,
cache hit counts on a repeated workload, block placement -- the two planes
must agree.  :func:`compare_planes` runs the same logical workload through
both and reports the overlap, giving the performance results a correctness
anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, KB, MB
from repro.mapreduce.api import EclipseMR
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["PlaneComparison", "compare_planes"]


@dataclass
class PlaneComparison:
    """Agreement metrics between the functional and performance planes."""

    functional_hit_ratio: float
    simulated_hit_ratio: float
    functional_assignment_cv: float
    simulated_assignment_cv: float
    functional_repartitions: int
    simulated_repartitions: int

    @property
    def hit_ratio_gap(self) -> float:
        return abs(self.functional_hit_ratio - self.simulated_hit_ratio)

    @property
    def cv_gap(self) -> float:
        return abs(self.functional_assignment_cv - self.simulated_assignment_cv)


def _cv(counts) -> float:
    arr = np.array(list(counts), dtype=float)
    return float(arr.std() / arr.mean()) if arr.mean() else 0.0


def compare_planes(
    num_workers: int = 8,
    blocks: int = 24,
    repeats: int = 3,
    scheduler: str = "laf",
) -> PlaneComparison:
    """Run `repeats` identical scans of one dataset through both planes.

    The functional plane runs a real grep over synthetic text; the
    performance plane runs the equivalent block workload.  Because both
    use the same scheduler code and an iCache big enough for the dataset,
    hit counts after warmup and assignment spreads should line up.
    """
    # -- functional plane -----------------------------------------------------
    block_size = 8 * KB
    func_config = ClusterConfig(
        num_nodes=num_workers,
        rack_size=max(1, num_workers // 2),
        dfs=DFSConfig(block_size=block_size),
        cache=CacheConfig(capacity_per_server=4 * MB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16, num_bins=256),
    )
    # Server ids chosen so both planes hash to the *same ring positions*
    # ("node-i" here; the engine places integer i at key_of("node-i")).
    mr = EclipseMR(
        workers=[f"node-{i}" for i in range(num_workers)],
        scheduler=scheduler,
        config=func_config,
    )
    from repro.apps.workloads import pack_records, text_corpus

    lines = text_corpus(3, num_words=blocks * 1400, vocab_size=100)
    data = pack_records(lines, block_size)[: blocks * block_size]
    mr.upload("corpus", data)
    actual_blocks = mr.runtime.dfs.stat("corpus").num_blocks
    for r in range(repeats):
        mr.map_reduce(
            f"scan-{r}", "corpus",
            map_fn=lambda b: ((w, 1) for w in b.decode().split()),
            reduce_fn=lambda w, c: sum(c),
        )
    func_stats = mr.cache_stats()
    func_hit = func_stats.icache_hits / max(1, func_stats.icache_hits + func_stats.icache_misses)
    func_cv = _cv(mr.scheduler.assigned_counts.values())
    func_reparts = getattr(mr.scheduler, "repartition_count", 0)

    # -- performance plane -----------------------------------------------------
    sim_config = ClusterConfig(
        num_nodes=num_workers,
        rack_size=max(1, num_workers // 2),
        map_slots_per_node=4,
        reduce_slots_per_node=4,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=2 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=16, num_bins=256),
        page_cache_per_node=2 * GB,
    )
    # Same scheduler configuration and the same *file name*: block hash
    # keys depend on (name, index) only, so both planes schedule the
    # identical key sequence.
    engine = PerfEngine(
        sim_config, eclipse_framework(scheduler, sim_config.scheduler)
        if scheduler in ("laf", "delay") else eclipse_framework(scheduler)
    )
    # Mirror the functional plane exactly: same file name, same block count.
    layout = dht_layout(engine.space, engine.ring, "corpus", actual_blocks, 128 * MB)
    for r in range(repeats):
        engine.run_job(
            SimJobSpec(app=APP_PROFILES["grep"], tasks=layout, label=f"scan-{r}")
        )
    sim_stats = engine.dcache.stats()
    sim_hit = sim_stats.icache_hits / max(1, sim_stats.icache_hits + sim_stats.icache_misses)
    per_server = {s: 0 for s in range(num_workers)}
    for s, c in engine.scheduler.assigned_counts.items():
        per_server[s] += c
    sim_cv = _cv(per_server.values())
    sim_reparts = getattr(engine.scheduler, "repartition_count", 0)

    return PlaneComparison(
        functional_hit_ratio=func_hit,
        simulated_hit_ratio=sim_hit,
        functional_assignment_cv=func_cv,
        simulated_assignment_cv=sim_cv,
        functional_repartitions=func_reparts,
        simulated_repartitions=sim_reparts,
    )
