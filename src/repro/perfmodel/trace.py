"""Task-level tracing for the performance engine.

A :class:`TaskTrace` collects per-task lifecycle events (scheduled,
slot-granted, input-read, compute, shuffle, done) so experiments can
explain *why* a schedule is slow: wave structure, stragglers, delay-wait
stalls.  :func:`gantt` renders the timeline as an ASCII chart per server.

Tracing is opt-in (``PerfEngine.trace = TaskTrace()``) and adds no cost
when off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TaskRecord", "TaskTrace", "gantt"]


@dataclass
class TaskRecord:
    """One task's lifecycle timestamps (simulation seconds)."""

    task_id: str
    kind: str                       # "map" | "reduce"
    server: int
    scheduled_at: float
    started_at: Optional[float] = None
    done_at: Optional[float] = None
    reassigned: bool = False
    cache_hit: Optional[bool] = None

    @property
    def wait(self) -> float:
        """Time from scheduling to slot grant (queueing + delay waits)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.scheduled_at

    @property
    def service(self) -> float:
        """Slot-occupancy time."""
        if self.started_at is None or self.done_at is None:
            return 0.0
        return self.done_at - self.started_at


class TaskTrace:
    """Collects task records during a run."""

    def __init__(self) -> None:
        self.records: list[TaskRecord] = []

    def open(self, task_id: str, kind: str, server: int, now: float) -> TaskRecord:
        rec = TaskRecord(task_id=task_id, kind=kind, server=server, scheduled_at=now)
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    # -- analysis -----------------------------------------------------------------

    def by_server(self) -> dict[int, list[TaskRecord]]:
        out: dict[int, list[TaskRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.server, []).append(rec)
        return out

    def total_wait(self) -> float:
        return sum(r.wait for r in self.records)

    def stragglers(self, factor: float = 2.0) -> list[TaskRecord]:
        """Tasks whose service time exceeds ``factor`` x the median."""
        services = sorted(r.service for r in self.records if r.done_at is not None)
        if not services:
            return []
        median = services[len(services) // 2]
        if median == 0:
            return []
        return [r for r in self.records if r.service > factor * median]

    def makespan(self) -> float:
        done = [r.done_at for r in self.records if r.done_at is not None]
        started = [r.scheduled_at for r in self.records]
        if not done or not started:
            return 0.0
        return max(done) - min(started)


def gantt(trace: TaskTrace, width: int = 80, max_servers: int = 20) -> str:
    """ASCII timeline: one row per server, ``#`` for busy, ``.`` for idle.

    Rows are down-sampled to ``width`` columns over the trace's makespan;
    a column is busy if any task on that server overlaps it.
    """
    records = [r for r in trace.records if r.started_at is not None and r.done_at is not None]
    if not records:
        return "(no completed tasks)"
    t0 = min(r.scheduled_at for r in records)
    t1 = max(r.done_at for r in records)
    span = max(t1 - t0, 1e-9)
    lines = [f"task timeline: {len(records)} tasks over {span:.1f}s"]
    for server, recs in sorted(trace.by_server().items())[:max_servers]:
        row = []
        for col in range(width):
            lo = t0 + span * col / width
            hi = t0 + span * (col + 1) / width
            busy = any(
                r.started_at is not None and r.done_at is not None
                and r.started_at < hi and r.done_at > lo
                for r in recs
            )
            row.append("#" if busy else ".")
        lines.append(f"  node {server:>3} |{''.join(row)}|")
    if len(trace.by_server()) > max_servers:
        lines.append(f"  ... ({len(trace.by_server()) - max_servers} more servers)")
    return "\n".join(lines)
