"""Input block layouts for the performance model.

Where blocks physically live drives locality and skew.  Two placements:

* :func:`dht_layout` -- EclipseMR's DHT file system: every block lands on
  the ring owner of its hash key (replicas on the neighbors), so block
  counts per server concentrate like a multinomial -- naturally even.
* :func:`hdfs_layout` -- HDFS-style placement with a configurable skew
  knob: by default blocks go to uniformly random servers (3 replicas,
  second and third rack-aware); a ``skew`` > 0 concentrates primaries on
  few servers, reproducing the input-block-skew problem of §I.

:func:`skewed_task_keys` builds the Fig. 7 access pattern: a task stream
whose *hash keys* follow two merged normal distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.dht.ring import ConsistentHashRing

__all__ = ["BlockSpec", "dht_layout", "hdfs_layout", "skewed_task_keys"]


@dataclass(frozen=True)
class BlockSpec:
    """One input block in the performance model."""

    block_id: str
    key: int
    size: int
    primary: int
    """Index of the server holding the primary copy."""

    holders: tuple[int, ...]
    """All servers holding a copy (primary first)."""


def dht_layout(
    space: HashSpace,
    ring: ConsistentHashRing,
    file_name: str,
    num_blocks: int,
    block_size: int,
    replication: int = 2,
) -> list[BlockSpec]:
    """Blocks placed by the DHT file system's consistent hashing."""
    blocks = []
    for i in range(num_blocks):
        key = space.block_key(file_name, i)
        holders = tuple(ring.replica_set(key, extra=replication))
        blocks.append(
            BlockSpec(
                block_id=f"{file_name}#{i}",
                key=key,
                size=block_size,
                primary=holders[0],
                holders=holders,
            )
        )
    return blocks


def hdfs_layout(
    space: HashSpace,
    servers: Sequence[int],
    file_name: str,
    num_blocks: int,
    block_size: int,
    seed: int = 0,
    replication: int = 3,
    skew: float = 0.0,
    rack_of=None,
) -> list[BlockSpec]:
    """HDFS-style placement: random primary, replicas on other servers.

    ``skew`` in [0, 1) biases primaries toward low-index servers with a
    geometric-like weighting; 0 is uniform.  Hash keys are still derived
    from the block id so consistent-hashing schedulers can be pointed at
    an HDFS layout in ablations.
    """
    rng = derive_rng(seed, "hdfs_layout", file_name)
    servers = list(servers)
    n = len(servers)
    if skew > 0:
        weights = np.power(1.0 - skew, np.arange(n))
        weights /= weights.sum()
    else:
        weights = np.full(n, 1.0 / n)
    blocks = []
    for i in range(num_blocks):
        primary = int(rng.choice(n, p=weights))
        others = [s for s in range(n) if s != primary]
        if rack_of is not None and replication >= 2:
            # HDFS default: second replica off-rack, third on that rack.
            off_rack = [s for s in others if rack_of(s) != rack_of(primary)] or others
            second = int(rng.choice(off_rack))
            rest = [s for s in others if s != second]
            same_as_second = [s for s in rest if rack_of(s) == rack_of(second)] or rest
            third = int(rng.choice(same_as_second)) if replication >= 3 and rest else None
            holders = [primary, second] + ([third] if third is not None else [])
        else:
            extra = rng.choice(others, size=min(replication - 1, len(others)), replace=False)
            holders = [primary] + [int(s) for s in extra]
        blocks.append(
            BlockSpec(
                block_id=f"{file_name}#{i}",
                key=space.block_key(file_name, i),
                size=block_size,
                primary=primary,
                holders=tuple(dict.fromkeys(holders)),
            )
        )
    return blocks


def skewed_task_keys(
    blocks: list[BlockSpec],
    num_tasks: int,
    seed: int = 0,
    centers: tuple[float, float] = (0.3, 0.7),
    stddev: float = 0.06,
) -> list[BlockSpec]:
    """A task stream accessing blocks with bimodal hash-key popularity.

    Reproduces the Fig. 7 workload: block access frequencies follow two
    merged normal distributions over the hash key space, so some blocks
    are hammered while others are rarely touched.
    """
    if not blocks:
        raise ValueError("need at least one block")
    rng = derive_rng(seed, "skewed_tasks")
    space_size = max(b.key for b in blocks) + 1
    keys = np.array([b.key for b in blocks], dtype=float)
    half = num_tasks // 2
    samples = np.concatenate(
        [
            rng.normal(centers[0] * space_size, stddev * space_size, size=half),
            rng.normal(centers[1] * space_size, stddev * space_size, size=num_tasks - half),
        ]
    ) % space_size
    rng.shuffle(samples)
    # Each sampled key is served by the block nearest in key space.
    order = np.argsort(keys)
    sorted_keys = keys[order]
    idx = np.searchsorted(sorted_keys, samples)
    idx = np.clip(idx, 0, len(blocks) - 1)
    # Snap to the closer of the two neighbors.
    left = np.clip(idx - 1, 0, len(blocks) - 1)
    pick = np.where(
        np.abs(sorted_keys[idx] - samples) <= np.abs(sorted_keys[left] - samples),
        idx,
        left,
    )
    return [blocks[order[i]] for i in pick]
