"""Framework behaviour descriptors.

One :class:`FrameworkModel` captures everything the engine needs to know
about how a framework runs a job -- per-task overheads, metadata path,
shuffle style, and caching behaviour.  The constants come from the paper's
own diagnosis of the baselines:

* Hadoop runs every task in a fresh YARN container costing **~7 seconds**
  of init/authentication per 128 MB block (§III-E, citing [16], [17]);
  metadata goes through the central NameNode; shuffle is disk-backed pull.
* Spark 1.2 launches tasks cheaply but pays to construct RDDs on the
  first iteration, keeps iteration outputs in memory (no fault-tolerance
  writes until the final output), uses delay scheduling, and its
  hash-based shuffle underperforms Hadoop's on sort (§III-E).
* EclipseMR is a lightweight C++ prototype: negligible task launch cost,
  decentralized DHT metadata, proactive push shuffle, and persistent
  iteration outputs (its fault-tolerance price on page rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.common.config import SchedulerConfig
from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing
from repro.scheduler.base import Scheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.fair import FairScheduler
from repro.scheduler.laf import LAFScheduler

__all__ = [
    "FrameworkModel",
    "eclipse_framework",
    "hadoop_framework",
    "spark_framework",
]

SchedulerFactory = Callable[[HashSpace, Sequence[Hashable], ConsistentHashRing], Scheduler]


@dataclass(frozen=True)
class FrameworkModel:
    """What the engine needs to know to run jobs "the X way"."""

    name: str
    scheduler_factory: SchedulerFactory

    task_overhead: float = 0.0
    """Seconds charged at the start of every map/reduce task (containers)."""

    job_overhead: float = 0.0
    """Seconds charged once per job submission."""

    metadata_central: bool = False
    """Metadata through a central NameNode (a shared resource) vs the DHT."""

    namenode_lookup_time: float = 0.02
    """NameNode service time per metadata operation (serialized)."""

    namenode_ops_per_task: int = 1
    """Metadata RPCs each task issues (open + block locate + commit for
    Hadoop; Spark resolves partitions once per stage)."""

    shuffle_mode: str = "proactive"
    """``proactive`` (push during map, EclipseMR), ``pull`` (disk-backed
    post-map fetch, Hadoop), or ``memory`` (in-memory map output fetched
    over the network, Spark)."""

    shuffle_inefficiency: float = 1.0
    """Multiplier on shuffle *transport* cost -- network bytes moved per
    intermediate byte (Spark 1.2's hash shuffle moves more small blocks
    than Hadoop's merged streams: > 1).  Reduce-side CPU is charged on the
    raw intermediate volume."""

    cache_input_blocks: bool = True
    """Whether input blocks are cached in memory after first use (iCache /
    RDD cache).  Hadoop 2.5 as configured in the paper: no."""

    compute_efficiency: float = 1.0
    """CPU throughput multiplier relative to the C++ profiles.  The paper
    credits its "faster C++ implementations" for part of the win over the
    JVM frameworks (§III-E); Hadoop and Spark run at ~0.5."""

    persist_iteration_outputs: bool = True
    """Write every iteration's output to the file system (EclipseMR,
    Hadoop) or keep it memory-resident until the last (Spark)."""

    rdd_build_rate: float = 0.0
    """Extra first-iteration cost in bytes/second (Spark RDD construction);
    0 disables."""

    replication: int = 2
    """Copies written per final-output block (incl. primary): both the DHT
    file system (predecessor+successor) and HDFS (pipeline) keep 3."""

    iteration_output_replication: int = 3
    """Copies per persisted iteration output: iteration outputs go through
    the DHT file system's normal replicated write (primary + predecessor +
    successor, §II-A) so a crashed job restarts "from the point of
    failure" (§II-B)."""

    def make_scheduler(
        self,
        space: HashSpace,
        servers: Sequence[Hashable],
        ring: ConsistentHashRing,
    ) -> Scheduler:
        return self.scheduler_factory(space, servers, ring)


def eclipse_framework(
    scheduler: str = "laf",
    scheduler_config: SchedulerConfig | None = None,
) -> FrameworkModel:
    """EclipseMR with the LAF or delay scheduler."""
    cfg = scheduler_config or SchedulerConfig()
    if scheduler == "laf":
        factory: SchedulerFactory = lambda space, servers, ring: LAFScheduler(space, list(servers), cfg, ring=ring)
    elif scheduler == "delay":
        factory = lambda space, servers, ring: DelayScheduler(space, list(servers), cfg, ring=ring)
    else:
        raise ValueError(f"unknown EclipseMR scheduler {scheduler!r}")
    return FrameworkModel(
        name=f"eclipsemr-{scheduler}",
        scheduler_factory=factory,
        task_overhead=0.1,
        job_overhead=0.2,
        metadata_central=False,
        shuffle_mode="proactive",
        cache_input_blocks=True,
        persist_iteration_outputs=True,
        compute_efficiency=1.0,
        replication=3,
    )


def hadoop_framework(container_overhead: float = 7.0) -> FrameworkModel:
    """Hadoop 2.5: YARN containers, NameNode, disk-backed pull shuffle."""
    return FrameworkModel(
        name="hadoop",
        scheduler_factory=lambda space, servers, ring: FairScheduler(list(servers)),
        task_overhead=container_overhead,
        job_overhead=5.0,
        metadata_central=True,
        namenode_lookup_time=0.03,
        namenode_ops_per_task=3,
        shuffle_mode="pull",
        cache_input_blocks=False,
        persist_iteration_outputs=True,
        compute_efficiency=0.5,
        replication=3,
    )


def spark_framework(delay_wait: float = 5.0) -> FrameworkModel:
    """Spark 1.2: cheap tasks, RDD cache, delay scheduling, memory shuffle."""
    cfg = SchedulerConfig(delay_wait=delay_wait)
    return FrameworkModel(
        name="spark",
        scheduler_factory=lambda space, servers, ring: DelayScheduler(space, list(servers), cfg, ring=ring),
        task_overhead=0.2,
        job_overhead=2.0,
        metadata_central=True,
        namenode_lookup_time=0.01,
        shuffle_mode="memory",
        shuffle_inefficiency=1.0,
        cache_input_blocks=True,
        persist_iteration_outputs=False,
        compute_efficiency=0.5,
        rdd_build_rate=8 * 1024 * 1024,
        replication=3,
    )
