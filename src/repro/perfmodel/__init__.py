"""The performance plane: MapReduce jobs on the discrete-event cluster.

The functional plane proves what EclipseMR computes; this package
reproduces how long the paper's systems take.  Jobs become discrete-event
processes that contend for map/reduce slots, a single HDD per node, the
OS page cache, and a two-level network -- with per-framework overheads
(YARN containers, NameNode lookups, RDD construction) layered on top.

* :mod:`repro.perfmodel.profiles` -- per-application cost profiles
  (CPU per byte, shuffle ratio, iteration output size).
* :mod:`repro.perfmodel.framework` -- framework behaviour descriptors for
  EclipseMR (LAF / delay), Hadoop and Spark.
* :mod:`repro.perfmodel.placement` -- input block layouts (DHT hashing vs
  HDFS-style placement, including skewed layouts).
* :mod:`repro.perfmodel.engine` -- the job execution engine.
"""

from repro.perfmodel.profiles import AppProfile, APP_PROFILES
from repro.perfmodel.framework import (
    FrameworkModel,
    eclipse_framework,
    hadoop_framework,
    spark_framework,
)
from repro.perfmodel.placement import BlockSpec, dht_layout, hdfs_layout, skewed_task_keys
from repro.perfmodel.engine import JobTiming, PerfEngine, SimJobSpec
from repro.perfmodel.trace import TaskRecord, TaskTrace, gantt
from repro.perfmodel.validation import PlaneComparison, compare_planes

__all__ = [
    "AppProfile",
    "APP_PROFILES",
    "FrameworkModel",
    "eclipse_framework",
    "hadoop_framework",
    "spark_framework",
    "BlockSpec",
    "dht_layout",
    "hdfs_layout",
    "skewed_task_keys",
    "JobTiming",
    "PerfEngine",
    "SimJobSpec",
    "TaskRecord",
    "TaskTrace",
    "gantt",
    "PlaneComparison",
    "compare_planes",
]
