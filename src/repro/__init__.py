"""EclipseMR reproduction: distributed and parallel task processing with
consistent hashing (IEEE CLUSTER 2017).

Two execution planes share the same algorithm code:

* the **functional plane** (:mod:`repro.mapreduce`, :class:`repro.EclipseMR`)
  runs real map/reduce functions over an in-process DHT file system,
  distributed in-memory caches, and the LAF / delay schedulers;
* the **performance plane** (:mod:`repro.perfmodel`, :mod:`repro.sim`)
  replays the same placement and scheduling decisions on a discrete-event
  cluster model calibrated to the paper's testbed, regenerating every
  evaluation figure (see :mod:`repro.experiments`).

Quickstart::

    from repro import EclipseMR

    mr = EclipseMR(workers=8, scheduler="laf")
    mr.upload("corpus.txt", b"to be or not to be")
    result = mr.map_reduce(
        "wc", "corpus.txt",
        map_fn=lambda block: ((w, 1) for w in block.decode().split()),
        reduce_fn=lambda word, counts: sum(counts),
    )
    assert result.output["be"] == 2
"""

from repro.common.hashing import HashSpace, KeyRange
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.dht.ring import ConsistentHashRing
from repro.dfs.filesystem import DHTFileSystem
from repro.cache.distributed import DistributedCache
from repro.scheduler.laf import LAFScheduler
from repro.scheduler.delay import DelayScheduler
from repro.mapreduce.api import EclipseMR
from repro.mapreduce.job import JobResult, MapReduceJob

__version__ = "1.0.0"

__all__ = [
    "HashSpace",
    "KeyRange",
    "CacheConfig",
    "ClusterConfig",
    "DFSConfig",
    "SchedulerConfig",
    "ConsistentHashRing",
    "DHTFileSystem",
    "DistributedCache",
    "LAFScheduler",
    "DelayScheduler",
    "EclipseMR",
    "JobResult",
    "MapReduceJob",
    "__version__",
]
