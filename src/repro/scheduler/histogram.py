"""The access-pattern statistics behind LAF scheduling (Algorithm 1).

The job scheduler quantizes the hash key space into a large number of
fine-grained bins and, for every input block access, credits ``1/k`` to
``k`` adjacent bins -- a *box kernel density estimate* whose bandwidth
``k`` smooths the probability distribution function.  Every ``N`` tasks
the fresh histogram is folded into a running estimate with an exponential
moving average (weight ``alpha``), the CDF is built, and the key space is
cut into equally probable ranges.

All hot paths are vectorized NumPy: recording an access touches one slice,
and re-partitioning is a ``cumsum`` plus one ``interp``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.scheduler.partition import SpacePartition

__all__ = ["AccessHistogram", "MovingAverageDistribution"]


class AccessHistogram:
    """Box-KDE histogram of the hash keys accessed by recent tasks."""

    def __init__(self, space: HashSpace, num_bins: int = 1024, bandwidth: int = 8) -> None:
        if num_bins < 1:
            raise SchedulingError("histogram needs at least one bin")
        if not 1 <= bandwidth <= num_bins:
            raise SchedulingError("bandwidth must be in [1, num_bins]")
        self.space = space
        self.num_bins = num_bins
        self.bandwidth = bandwidth
        self.counts = np.zeros(num_bins, dtype=np.float64)
        self.size = 0
        """Accesses recorded since the last reset (``distr.size`` in Alg. 1)."""

    def bin_of(self, key: int) -> int:
        self.space.validate(key)
        return int(key * self.num_bins // self.space.size)

    def record(self, key: int) -> None:
        """Credit ``1/k`` to the ``k`` bins centered on the key's bin.

        The key space is circular, so the kernel wraps at the ends.
        """
        center = self.bin_of(key)
        k = self.bandwidth
        start = center - (k - 1) // 2
        idx = np.arange(start, start + k) % self.num_bins
        self.counts[idx] += 1.0 / k
        self.size += 1

    def record_many(self, keys: Sequence[int]) -> None:
        for key in keys:
            self.record(key)

    def reset(self) -> None:
        """``initializeDistribution`` in Algorithm 1."""
        self.counts[:] = 0.0
        self.size = 0

    def pdf(self) -> np.ndarray:
        """Normalized copy of the counts (uniform when nothing recorded)."""
        total = self.counts.sum()
        if total <= 0:
            return np.full(self.num_bins, 1.0 / self.num_bins)
        return self.counts / total


class MovingAverageDistribution:
    """``maDistr`` in Algorithm 1: the exponentially smoothed access PDF.

    ``alpha = 1`` tracks only the current window (perfect load balance for
    the present workload); ``alpha = 0`` never moves, pinning the ranges to
    their initial (static) state -- the two extremes Fig. 7 sweeps.
    """

    def __init__(self, space: HashSpace, num_bins: int = 1024, alpha: float = 0.001) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise SchedulingError(f"alpha must be in [0, 1], got {alpha}")
        self.space = space
        self.num_bins = num_bins
        self.alpha = alpha
        # Start uniform: with no history every range is equally likely.
        self.ma = np.full(num_bins, 1.0 / num_bins, dtype=np.float64)

    def seed_from_boundaries(self, boundaries: Sequence[int]) -> None:
        """Initialize the PDF so equal-probability re-cuts reproduce the
        given boundaries.

        Used to align LAF's starting state with the DHT file system ring:
        each segment ``[b_i, b_{i+1})`` receives ``1/n`` of the mass spread
        uniformly over its bins, so until real access data accumulates,
        every re-partition returns (approximately) the same boundaries and
        cache affinity with block placement is preserved.
        """
        bounds = [int(b) for b in boundaries]
        n = len(bounds) - 1
        if n < 1 or bounds[0] != 0 or bounds[-1] != self.space.size:
            raise SchedulingError("seed boundaries must span [0, space.size]")
        edges = np.asarray(bounds, dtype=float) / self.space.size * self.num_bins
        pdf = np.zeros(self.num_bins, dtype=np.float64)
        share = 1.0 / n
        for i in range(n):
            lo, hi = edges[i], edges[i + 1]
            if hi <= lo:
                continue
            first, last = int(np.floor(lo)), int(np.ceil(hi)) - 1
            density = share / (hi - lo)
            for b in range(max(0, first), min(self.num_bins - 1, last) + 1):
                overlap = min(hi, b + 1) - max(lo, b)
                if overlap > 0:
                    pdf[b] += density * overlap
        total = pdf.sum()
        if total > 0:
            self.ma = pdf / total

    def merge(self, histogram: AccessHistogram) -> None:
        """Line 15 of Algorithm 1: ``ma = alpha*distr + (1-alpha)*ma``."""
        if histogram.num_bins != self.num_bins:
            raise SchedulingError("histogram and moving average bin counts differ")
        self.ma = self.alpha * histogram.pdf() + (1.0 - self.alpha) * self.ma

    def cdf(self) -> np.ndarray:
        """``constructCDF``: cumulative distribution at the bin edges.

        Returns ``num_bins + 1`` values from 0 to 1.
        """
        total = self.ma.sum()
        pdf = self.ma / total if total > 0 else np.full(self.num_bins, 1.0 / self.num_bins)
        out = np.empty(self.num_bins + 1)
        out[0] = 0.0
        np.cumsum(pdf, out=out[1:])
        out[-1] = 1.0
        return out

    def partition(self, servers: Sequence[Hashable]) -> SpacePartition:
        """``partitionCDF``: equally probable hash key ranges, one per server.

        Boundaries are found by inverse-CDF lookup with linear interpolation
        inside bins, so a popular narrow region yields narrow ranges exactly
        as in the paper's Fig. 3 example.
        """
        servers = list(servers)
        n = len(servers)
        if n == 0:
            raise SchedulingError("partition needs at least one server")
        cdf = self.cdf()
        edges = np.linspace(0.0, float(self.space.size), self.num_bins + 1)
        quantiles = np.arange(1, n) / n
        cuts = np.interp(quantiles, cdf, edges)
        bounds = [0] + [int(round(c)) for c in cuts] + [self.space.size]
        # Guard against rounding inversions on nearly-flat CDFs.
        for i in range(1, len(bounds)):
            bounds[i] = min(self.space.size, max(bounds[i], bounds[i - 1]))
        return SpacePartition(self.space, servers, bounds)
