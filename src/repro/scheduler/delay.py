"""The delay-scheduling baseline (paper §II-F).

EclipseMR's comparison point: tasks go to the worker whose *static* hash
key range (aligned with the DHT file system ring) covers the input's key,
and if that worker cannot start the task within a fixed wait (Spark's 5
seconds), the task is reassigned elsewhere.  The ranges never adapt, so
under skewed key popularity some workers queue deep while others idle --
the behaviour Fig. 7 quantifies (up to 2.86x slower than LAF).
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.common.config import SchedulerConfig
from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.dht.ring import ConsistentHashRing
from repro.scheduler.base import Assignment, Scheduler
from repro.scheduler.partition import SpacePartition

__all__ = ["DelayScheduler"]


class DelayScheduler(Scheduler):
    """Static consistent-hashing ranges + bounded waiting."""

    def __init__(
        self,
        space: HashSpace,
        servers: Sequence[Hashable],
        config: SchedulerConfig | None = None,
        ring: ConsistentHashRing | None = None,
    ) -> None:
        """With a ``ring`` the preferred server is the DHT file system owner
        of the key (the paper's alignment); without one, a fixed uniform
        partition anchored at 0 is used."""
        super().__init__(servers)
        self.space = space
        self.config = config or SchedulerConfig()
        self.ring = ring
        if ring is not None:
            missing = set(servers) - set(ring.nodes)
            if missing:
                raise SchedulingError(f"servers {missing!r} not on the ring")
        self.partition = None if ring is not None else SpacePartition.uniform(space, self.servers)

    def assign(
        self,
        hash_key: Optional[int] = None,
        locations: Optional[Sequence[Hashable]] = None,
    ) -> Assignment:
        if hash_key is None:
            raise SchedulingError("delay scheduling needs the task's hash key")
        if self.ring is not None:
            server = self.ring.owner_of(hash_key)
        else:
            server = self.partition.owner_of(hash_key)
        self._note_assignment(server)
        return Assignment(
            server,
            wait_limit=self.config.delay_wait,
            reason="static hash range owner (delay scheduling)",
        )

    def _on_membership_change(self) -> None:
        """Static ranges follow the ring (updated by the resource manager)
        or collapse to a uniform cut over the survivors."""
        if self.ring is None:
            self.partition = SpacePartition.uniform(self.space, self.servers)

    def reassign(self) -> Assignment:
        """After the wait expires the task runs wherever a slot frees first."""
        assignment = super().reassign()
        return Assignment(
            assignment.server,
            wait_limit=None,
            reason="delay wait expired; moved to least-loaded server",
        )
