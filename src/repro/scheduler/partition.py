"""Hash-key-range partitions of the key space.

The LAF scheduler's output is a *partition*: the key space ``[0, size)``
cut into one contiguous segment per worker, anchored at key 0 exactly as
in the paper's Fig. 3 example (five servers over ``[0, 140)`` become
``[0,35) [35,47) [47,91) [91,102) [102,140)``).

Segments may be *degenerate* (zero width): when a single hash key carries
all the probability mass, ``partitionCDF()`` produces ranges like
``[40,40)`` (paper §II-E).  A degenerate segment captures no key by
interval arithmetic, but the paper's intent is that the servers pinned to
the hot key *share* it ("all the worker servers will eventually read the
same hot data 40 ... and replicate it in their distributed in-memory
caches"), so :meth:`SpacePartition.candidates` returns every server whose
segment contains the key **or** whose degenerate segment sits exactly on
it; the scheduler load-balances among those candidates.
"""

from __future__ import annotations

import bisect
from typing import Hashable, Sequence

from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace

__all__ = ["SpacePartition"]


class SpacePartition:
    """An ordered cut of ``[0, space.size)`` into one segment per server."""

    def __init__(
        self,
        space: HashSpace,
        servers: Sequence[Hashable],
        boundaries: Sequence[int],
        offset: int = 0,
    ) -> None:
        """``boundaries`` has ``len(servers) + 1`` non-decreasing entries,
        starting at 0 and ending at ``space.size``; server ``i`` owns
        ``[boundaries[i], boundaries[i+1])`` *after* keys are rotated by
        ``offset`` (``key' = (key - offset) mod size``).  A rotation lets a
        linear partition represent a circular ring cut exactly."""
        servers = list(servers)
        if len(servers) == 0:
            raise SchedulingError("partition needs at least one server")
        bounds = [int(b) for b in boundaries]
        if len(bounds) != len(servers) + 1:
            raise SchedulingError(
                f"{len(servers)} servers need {len(servers) + 1} boundaries, got {len(bounds)}"
            )
        if bounds[0] != 0 or bounds[-1] != space.size:
            raise SchedulingError("boundaries must start at 0 and end at space.size")
        if any(lo > hi for lo, hi in zip(bounds, bounds[1:])):
            raise SchedulingError("boundaries must be non-decreasing")
        self.space = space
        self.servers = servers
        self.boundaries = bounds
        self.offset = int(offset) % space.size

    @classmethod
    def uniform(cls, space: HashSpace, servers: Sequence[Hashable]) -> "SpacePartition":
        """Equal-width segments (what LAF converges to on uniform access)."""
        n = len(list(servers))
        if n == 0:
            raise SchedulingError("partition needs at least one server")
        bounds = [space.size * i // n for i in range(n)] + [space.size]
        return cls(space, servers, bounds)

    @classmethod
    def from_ring(cls, ring) -> "SpacePartition":
        """A partition exactly matching a consistent hash ring's arcs.

        The key space is rotated so the top ring position lands on 0,
        turning the circular arcs into a plain linear cut.  This is the
        paper's "fixed static hash key ranges ... perfectly aligned with
        the hash keys of the DHT file system" starting state for LAF.
        """
        positions = ring.positions
        nodes = ring.nodes  # ordered by position
        if not nodes:
            raise SchedulingError("cannot align a partition to an empty ring")
        space = ring.space
        # Rotate the key space so the top ring position maps to 0: the
        # circular arcs then become a plain linear partition and ownership
        # matches the ring exactly.  Node i (at position p_i) owns the
        # rotated segment ending at (p_i - p_max) mod size.
        p_max = positions[-1]
        bounds = [0] + [(p - p_max) % space.size for p in positions[:-1]] + [space.size]
        return cls(space, list(nodes), bounds, offset=p_max)

    def __len__(self) -> int:
        return len(self.servers)

    def segment_of(self, server: Hashable) -> tuple[int, int]:
        """The ``[start, end)`` segment a server owns."""
        i = self.servers.index(server)
        return self.boundaries[i], self.boundaries[i + 1]

    def width_of(self, server: Hashable) -> int:
        start, end = self.segment_of(server)
        return end - start

    def owner_of(self, key: int) -> Hashable:
        """The unique server whose non-degenerate segment contains ``key``."""
        self.space.validate(key)
        key = self._rotate(key)
        # The last boundary <= key opens the segment containing it; that
        # segment can never be degenerate (a later equal boundary would
        # have been found instead), so the owner is unique.
        idx = bisect.bisect_right(self.boundaries, key) - 1
        return self.servers[idx]

    def _rotate(self, key: int) -> int:
        return (key - self.offset) % self.space.size if self.offset else key

    def candidates(self, key: int) -> list[Hashable]:
        """The owner plus every server whose degenerate segment pins ``key``.

        For ordinary keys this is a single server; for a hot key on which
        the CDF jumps, the degenerate-segment servers are returned too so
        the scheduler can spread the hot key across them (paper §II-E's
        extreme example).
        """
        owner = self.owner_of(key)
        rk = self._rotate(key)
        out = [
            server
            for server, (start, end) in zip(self.servers, self._segments())
            if (start <= rk < end) or (start == end == rk) or server == owner
        ]
        return out

    def _segments(self):
        return [
            (self.boundaries[i], self.boundaries[i + 1])
            for i in range(len(self.servers))
        ]

    def as_table(self) -> list[tuple[Hashable, int, int]]:
        """(server, start, end) rows -- the scheduler's hash key table."""
        return [
            (server, start, end)
            for server, (start, end) in zip(self.servers, self._segments())
        ]

    def __repr__(self) -> str:
        rows = ", ".join(f"{s!r}:[{a}~{b})" for s, a, b in self.as_table())
        return f"<SpacePartition {rows}>"
