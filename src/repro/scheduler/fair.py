"""A Hadoop-style locality-preference fair scheduler.

Used by the simulated Hadoop baseline: tasks prefer a server that holds a
copy of their input block (node-local), then a server in the same rack,
then anywhere, always taking the least-loaded choice within a level --
Hadoop's fair scheduler with the standard three locality levels.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.scheduler.base import Assignment, Scheduler

__all__ = ["FairScheduler"]


class FairScheduler(Scheduler):
    """Least-loaded scheduling with node/rack/any locality preference."""

    def __init__(
        self,
        servers: Sequence[Hashable],
        rack_of: Optional[Callable[[Hashable], int]] = None,
        locality_slack: int = 2,
    ) -> None:
        """``rack_of`` maps a server to its rack id; without it the rack
        locality level is skipped entirely.  ``locality_slack`` is how many
        more queued tasks a local server may have before the scheduler gives
        up locality -- the fair scheduler's bounded preference for
        data-local execution."""
        super().__init__(servers)
        self.rack_of = rack_of
        self.locality_slack = locality_slack
        self.local_assignments = 0
        self.rack_assignments = 0
        self.remote_assignments = 0

    def assign(
        self,
        hash_key: Optional[int] = None,
        locations: Optional[Sequence[Hashable]] = None,
    ) -> Assignment:
        locations = [s for s in (locations or []) if s in self._load]
        anywhere = self.least_loaded(self.servers)
        floor = self.load_of(anywhere)
        if locations:
            local = self.least_loaded(locations)
            if self.load_of(local) <= floor + self.locality_slack:
                self._note_assignment(local)
                self.local_assignments += 1
                return Assignment(local, reason="node-local")
            if self.rack_of is not None:
                racks = {self.rack_of(s) for s in locations}
                rack_servers = [s for s in self.servers if self.rack_of(s) in racks]
                rack_choice = self.least_loaded(rack_servers)
                if self.load_of(rack_choice) <= floor + self.locality_slack:
                    self._note_assignment(rack_choice)
                    self.rack_assignments += 1
                    return Assignment(rack_choice, reason="rack-local")
        self._note_assignment(anywhere)
        self.remote_assignments += 1
        return Assignment(anywhere, reason="least-loaded (no locality)")
