"""The locality-aware fair (LAF) job scheduler -- Algorithm 1 of the paper.

Every task carries the hash key of its input object.  The scheduler keeps
the hash key table -- one equally probable range per worker -- and assigns
each task to the worker whose range covers its key, so repeated accesses to
the same object land on the same worker and hit its in-memory cache.

Fairness comes from how the ranges are drawn: a box-KDE histogram of the
last ``N`` accesses is folded into a moving-average PDF (weight ``alpha``),
and the CDF is re-cut into equal-probability ranges.  Popular regions get
narrow ranges (fewer keys, same expected task count), so load stays even
under skew *without* giving up cache affinity.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.common.config import SchedulerConfig
from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.scheduler.base import Assignment, Scheduler
from repro.scheduler.histogram import AccessHistogram, MovingAverageDistribution
from repro.scheduler.partition import SpacePartition

__all__ = ["LAFScheduler"]


class LAFScheduler(Scheduler):
    """Predictive consistent-hashing scheduler with dynamic ranges."""

    def __init__(
        self,
        space: HashSpace,
        servers: Sequence[Hashable],
        config: SchedulerConfig | None = None,
        ring=None,
    ) -> None:
        """With a ``ring`` (the DHT file system's), the initial hash key
        table is aligned to the ring's arcs -- the paper's starting state,
        which keeps first-touch reads node-local until the access histogram
        has something to say.  Without one, ranges start uniform."""
        super().__init__(servers)
        self.space = space
        self.config = config or SchedulerConfig()
        cfg = self.config
        self.histogram = AccessHistogram(space, cfg.num_bins, cfg.kde_bandwidth)
        self.ma = MovingAverageDistribution(space, cfg.num_bins, cfg.alpha)
        if ring is not None:
            if set(ring.nodes) != set(self.servers):
                raise SchedulingError("ring nodes do not match the scheduler's servers")
            self.partition = SpacePartition.from_ring(ring)
            # Keep re-cut ranges in ring order so boundary moves stay small
            # and near-aligned with block placement...
            self._partition_order = list(ring.nodes)
            # ...and seed the moving average with the ring's arc structure:
            # otherwise the first window merge (weight alpha against a
            # *uniform* prior) would snap the ranges to near-uniform and
            # throw away cache affinity with block placement.
            self.ma.seed_from_boundaries([0] + ring.positions[:-1] + [space.size])
        else:
            self.partition = SpacePartition.uniform(space, self.servers)
            self._partition_order = list(self.servers)
        self.repartition_count = 0

    def assign(
        self,
        hash_key: Optional[int] = None,
        locations: Optional[Sequence[Hashable]] = None,
    ) -> Assignment:
        """Assign to the hash range owner; record the access (Algorithm 1).

        A key pinned by degenerate ranges (a hot spot that swallowed the
        whole CDF) has several candidate workers; the least loaded one wins,
        which is what replicates the hot object across the cluster in the
        paper's extreme example.
        """
        if hash_key is None:
            raise SchedulingError("LAF scheduling needs the task's hash key")
        candidates = self.partition.candidates(hash_key)
        server = candidates[0] if len(candidates) == 1 else self.least_loaded(candidates)
        self._note_assignment(server)
        self._record(hash_key)
        return Assignment(server, wait_limit=None, reason="LAF hash range owner")

    def _record(self, hash_key: int) -> None:
        """Lines 10-23 of Algorithm 1: histogram, then periodic re-cut."""
        self.histogram.record(hash_key)
        if self.histogram.size >= self.config.window_tasks:
            self.ma.merge(self.histogram)
            self.partition = self.ma.partition(self._partition_order)
            self.histogram.reset()
            self.repartition_count += 1

    def _on_membership_change(self) -> None:
        """Re-cut the ranges over the surviving servers.

        The moving-average PDF is membership-independent, so the new table
        keeps all learned popularity; only the number of quantiles changes.
        """
        self._partition_order = [s for s in self._partition_order if s in self._load]
        self.partition = self.ma.partition(self._partition_order)

    # -- elastic membership -------------------------------------------------------

    def _pristine(self) -> bool:
        """True while no access has ever been recorded: the table is still
        exactly the seeded (ring-aligned or uniform) starting state."""
        return self.histogram.size == 0 and self.repartition_count == 0

    def add_server(self, server: Hashable, ring=None) -> None:
        """Admit a joiner and re-cut the hash key table.

        On a *pristine* scheduler (no accesses recorded yet) with a ring
        covering exactly the enlarged server set, the table is re-seeded
        from the ring precisely as ``__init__`` would -- an idle-cluster
        join followed by a job is then bit-equal to a fresh cluster of the
        resulting size.  Otherwise the learned moving-average PDF is kept
        and only the number of quantiles grows.
        """
        if server in self._load:
            raise SchedulingError(f"server {server!r} already present")
        pristine = self._pristine()
        self.servers.append(server)
        self._load[server] = 0
        self.assigned_counts[server] = 0
        self._rebuild_membership(ring, pristine)

    def drain_server(self, server: Hashable, ring=None) -> None:
        """Gracefully retire a server; the inverse of :meth:`add_server`.

        Same pristine-reseed rule, so an idle-cluster drain followed by a
        job is bit-equal to a fresh cluster of the shrunken size.  Unlike
        :meth:`remove_server` (failover), the caller supplies the
        post-drain ring so the table can stay arc-aligned.
        """
        self._check(server)
        if len(self.servers) == 1:
            raise SchedulingError("cannot drain the last server")
        pristine = self._pristine()
        self.servers.remove(server)
        del self._load[server]
        self.assigned_counts.pop(server, None)
        self._rebuild_membership(ring, pristine)

    def _rebuild_membership(self, ring, pristine: bool) -> None:
        if ring is not None and set(ring.nodes) == set(self.servers):
            if pristine:
                self.partition = SpacePartition.from_ring(ring)
                self._partition_order = list(ring.nodes)
                self.ma.seed_from_boundaries(
                    [0] + ring.positions[:-1] + [self.space.size]
                )
                return
            self._partition_order = list(ring.nodes)
        else:
            self._partition_order = [s for s in self._partition_order if s in self._load]
            self._partition_order += [
                s for s in self.servers if s not in self._partition_order
            ]
        self.partition = self.ma.partition(self._partition_order)

    def range_table(self) -> list[tuple[Hashable, int, int]]:
        """The current hash key table (server, start, end)."""
        return self.partition.as_table()
