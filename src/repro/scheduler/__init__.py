"""Job schedulers (paper §II-E, §II-F).

* :mod:`repro.scheduler.partition` -- equally-probable hash-key-range
  partitions of the key space (the scheduler's hash key table).
* :mod:`repro.scheduler.histogram` -- the box-kernel-density access
  histogram and exponential moving average behind Algorithm 1.
* :mod:`repro.scheduler.base` -- the scheduling interface shared by the
  functional engine and the performance model.
* :mod:`repro.scheduler.laf` -- the locality-aware fair scheduler
  (Algorithm 1).
* :mod:`repro.scheduler.delay` -- the EclipseMR variant of Spark's delay
  scheduling used as the paper's baseline.
* :mod:`repro.scheduler.fair` -- a Hadoop-style locality-preference fair
  scheduler for the Hadoop baseline model.
"""

from repro.scheduler.partition import SpacePartition
from repro.scheduler.histogram import AccessHistogram, MovingAverageDistribution
from repro.scheduler.base import Assignment, Scheduler
from repro.scheduler.laf import LAFScheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.fair import FairScheduler

__all__ = [
    "SpacePartition",
    "AccessHistogram",
    "MovingAverageDistribution",
    "Assignment",
    "Scheduler",
    "LAFScheduler",
    "DelayScheduler",
    "FairScheduler",
]
