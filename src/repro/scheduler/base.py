"""The scheduling interface shared by the functional engine and the
performance model.

A scheduler is asked where to run a task and answers with an
:class:`Assignment`; the execution plane (threaded engine or discrete-event
model) is responsible for honoring the wait policy and reporting task
start/finish so the scheduler can track load.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

from repro.common.errors import SchedulingError

__all__ = ["Assignment", "Scheduler"]


@dataclass(frozen=True)
class Assignment:
    """Where a task should run and how hard to insist on it.

    ``wait_limit=None`` commits to the server unconditionally (LAF: the
    hash range owner *is* the right place; the queue is part of the deal).
    A finite ``wait_limit`` reproduces delay scheduling: if the task has
    not started within that many seconds, the execution plane reassigns it
    to the least-loaded server.
    """

    server: Hashable
    wait_limit: Optional[float] = None
    reason: str = ""


class Scheduler(abc.ABC):
    """Base class: load bookkeeping + the assignment hook."""

    def __init__(self, servers: Sequence[Hashable]) -> None:
        servers = list(servers)
        if not servers:
            raise SchedulingError("scheduler needs at least one server")
        self.servers = servers
        self._load: dict[Hashable, int] = {s: 0 for s in servers}
        self.assigned_counts: dict[Hashable, int] = {s: 0 for s in servers}

    # -- the decision -----------------------------------------------------------

    @abc.abstractmethod
    def assign(
        self,
        hash_key: Optional[int] = None,
        locations: Optional[Sequence[Hashable]] = None,
    ) -> Assignment:
        """Choose a server for a task.

        ``hash_key`` is the key of the task's input object (consistent-
        hashing schedulers use it); ``locations`` are servers currently
        holding a copy of the input (locality schedulers use them).
        """

    def reassign(self) -> Assignment:
        """Fallback after a wait limit expires: the least-loaded server."""
        server = self.least_loaded(self.servers)
        self._note_assignment(server)
        return Assignment(server, reason="reassigned after wait limit")

    # -- load bookkeeping ---------------------------------------------------------

    def notify_start(self, server: Hashable) -> None:
        """A task began executing on ``server``."""
        self._check(server)
        self._load[server] += 1

    def notify_finish(self, server: Hashable) -> None:
        """A task finished on ``server``."""
        self._check(server)
        if self._load[server] <= 0:
            raise SchedulingError(f"finish without start on {server!r}")
        self._load[server] -= 1

    def remove_server(self, server: Hashable) -> None:
        """Drop a failed server from scheduling (its load state is gone).

        Subclasses re-cut their hash key tables over the survivors.
        """
        self._check(server)
        if len(self.servers) == 1:
            raise SchedulingError("cannot remove the last server")
        self.servers.remove(server)
        del self._load[server]
        self.assigned_counts.pop(server, None)
        self._on_membership_change()

    def add_server(self, server: Hashable, ring=None) -> None:
        """Admit a new server into scheduling at zero load (elastic join).

        ``ring`` is the DHT ring *after* the join, for schedulers whose
        tables align to ring arcs; the base class ignores it.  Subclasses
        re-cut their hash key tables over the enlarged set.
        """
        if server in self._load:
            raise SchedulingError(f"server {server!r} already present")
        self.servers.append(server)
        self._load[server] = 0
        self.assigned_counts[server] = 0
        self._on_membership_change()

    def drain_server(self, server: Hashable, ring=None) -> None:
        """Gracefully retire a server (elastic drain).

        Identical to :meth:`remove_server` for schedulers with no
        ring-derived state; ``ring`` is the post-drain DHT ring for
        subclasses that align their tables to it.
        """
        self.remove_server(server)

    def _on_membership_change(self) -> None:
        """Hook: recompute any server-derived state after a membership change."""

    def load_of(self, server: Hashable) -> int:
        self._check(server)
        return self._load[server]

    @contextmanager
    def at_zero_load(self):
        """Temporarily present a zero running load to assignment draws.

        The cluster plane draws every one of a job's assignments *before*
        dispatching any of them, at the zero-load state the sequential
        runtime assigns in -- that is what makes the planes bit-equal.
        With several jobs sharing one scheduler the real load is no longer
        zero at draw time, so the multi-job scheduler wraps its draws in
        this context: histogram/moving-average state still evolves
        normally (determinism comes from drawing in submission order),
        while the transient in-flight load of *other* jobs cannot perturb
        degenerate-candidate tie-breaks.  Membership must not change while
        the context is held (the caller runs on one scheduler thread).
        """
        saved = dict(self._load)
        for server in self._load:
            self._load[server] = 0
        try:
            yield self
        finally:
            for server, load in saved.items():
                if server in self._load:
                    self._load[server] = load

    def least_loaded(self, candidates: Sequence[Hashable]) -> Hashable:
        """Lowest *running* load; stable tie-break by server order.

        Only running tasks count -- the scheduler does not see queued
        assignments, so simultaneous delay-wait expiries can herd onto the
        same momentarily-idle server, exactly the straggler pathology the
        paper attributes to delay scheduling under skew.
        """
        if not candidates:
            raise SchedulingError("no candidate servers")
        return min(candidates, key=lambda s: (self._load[s], self.servers.index(s)))

    def cancel_assignment(self, server: Hashable) -> None:
        """Hook: a task gave up on its assigned server (wait expired or the
        server died).  The base scheduler keeps no queued-assignment state,
        so this is a no-op; subclasses that track outstanding assignments
        can override it."""

    def _note_assignment(self, server: Hashable) -> None:
        self.assigned_counts[server] += 1

    def _check(self, server: Hashable) -> None:
        if server not in self._load:
            raise SchedulingError(f"unknown server {server!r}")

    # -- statistics -----------------------------------------------------------------

    def assignment_stddev(self) -> float:
        """Spread of per-server assignment counts (paper §III-C reports the
        stddev of tasks per slot: 4.07 for LAF vs 13.07 for delay)."""
        import numpy as np

        return float(np.std(list(self.assigned_counts.values())))
