"""The deterministic fault-injection plane.

Faults are scripted as :class:`~repro.common.config.FaultRule` entries in
a :class:`~repro.common.config.ChaosConfig` (so they travel in the config
manifest to every worker process) and executed by a per-node
:class:`FaultInjector` hooked into the RPC transport seam.  The same
seed replays the same fault schedule -- failover tests assert on exact
recovery metrics instead of racing wall clocks.
"""

from repro.chaos.plane import FaultInjector, partition_rules

__all__ = ["FaultInjector", "partition_rules"]
