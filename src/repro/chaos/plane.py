"""Per-node execution engine for scripted transport faults.

One :class:`FaultInjector` lives on each node (every worker process and
the coordinator).  It is wired into the RPC layer's fault hooks:

* ``on_send(addr, method)`` runs in the caller before a request's bytes
  hit the wire (``RpcClient.call_async`` / ``ConnectionPool``);
* ``on_serve(method)`` runs in the callee before a request is handled
  (``RpcServer``).

Faults are matched against *names*, not addresses: each node ``bind``\\ s
the peer addresses it learns (registration, ring broadcasts) to worker
ids / ``"coordinator"``, so a script reads like topology ("drop
everything worker-1 receives"), and one-way partitions fall out of the
site asymmetry -- dropping at the send seam of every peer leaves the
victim's *own* sends (heartbeats included) untouched.

Determinism: match counters advance in rule order per call, and each
node's RNG is seeded ``f"{seed}:{node_id}"``, so a fixed seed replays the
same fault schedule.  (Rules with ``probability < 1`` draw under the
node lock; with concurrent callers the draw *order* follows thread
interleaving, so fully deterministic scripts either keep
``probability=1.0`` or target single-threaded call sites.)  Every fired
fault lands in :attr:`FaultInjector.log` and counts into
``chaos.faults_injected`` / ``chaos.<op>`` so remote nodes' schedules
surface through ``get_stats``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Callable, Optional, Sequence

from repro.common.config import ChaosConfig, FaultRule

__all__ = ["FaultInjector", "partition_rules"]


def partition_rules(victim: str, *, heal_after: int | None = None) -> tuple[FaultRule, ...]:
    """Rules for a one-way partition: nothing *sent to* ``victim`` arrives.

    The victim's own outbound traffic -- heartbeats above all -- still
    flows, which is exactly the asymmetric failure a liveness design
    based only on heartbeats cannot see.  ``heal_after`` bounds the
    partition to that many dropped sends per peer (``None`` = permanent).
    """
    return (FaultRule(op="drop", site="send", dst=victim, count=heal_after),)


class FaultInjector:
    """Evaluates one node's fault rules at the transport seam.

    Rules are evaluated in script order; ``crash`` exits the process on
    the spot, and the first ``drop``/``blackhole`` ends evaluation and
    is returned as the action for the RPC layer to apply.  ``delay``
    keeps scanning, and its handling is site-dependent: at the *serve*
    seam the injector sleeps in place (each request runs on its own
    handler thread, so only the faulted request stalls), but at the
    *send* seam sleeping would block the caller's thread -- the
    scheduler's single event loop above all, freezing dispatch for every
    unrelated job -- so matched delays are instead summed and returned
    as a ``("delay", seconds)`` action for the transport to apply
    asynchronously (defer the send, keep the caller moving).  A
    drop/blackhole match subsumes any accumulated delay: the call fails
    or vanishes either way, and both are logged.  ``exit_fn`` and
    ``sleep`` are injectable so unit tests can observe crashes without
    dying.
    """

    def __init__(
        self,
        node_id: str,
        config: ChaosConfig,
        metrics=None,
        exit_fn: Callable[[int], None] = os._exit,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.rules: tuple[FaultRule, ...] = tuple(config.rules)
        self.rng = random.Random(f"{config.seed}:{node_id}")
        self.log: list[tuple[str, str, str, str, str, int]] = []
        self._counts = [0] * len(self.rules)
        self._names: dict[tuple[str, int], str] = {}
        self._metrics = metrics
        self._exit = exit_fn
        self._sleep = sleep
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether any rule exists; inactive injectors are never wired in."""
        return bool(self.rules)

    # -- topology ----------------------------------------------------------------

    def bind(self, name: str, addr: Sequence) -> None:
        """Teach this node that ``addr`` is node ``name`` (idempotent)."""
        with self._lock:
            self._names[(addr[0], addr[1])] = name

    def name_of(self, addr: Sequence) -> str:
        with self._lock:
            return self._names.get((addr[0], addr[1]), "?")

    # -- the seams ---------------------------------------------------------------

    def on_send(self, addr: Sequence, method: str):
        """Client seam: runs before a request's bytes hit the wire.

        Returns ``"drop"`` (fail the call as a connection error),
        ``"blackhole"`` (admit the call but never send it), a
        ``("delay", seconds)`` tuple (defer the send off the caller's
        thread), or ``None``.
        """
        return self._fire("send", self.node_id, self.name_of(addr), method)

    def on_serve(self, method: str) -> Optional[str]:
        """Server seam: runs before a request is dispatched to its handler.

        Returns ``"drop"`` (swallow the request -- no response ever goes
        back, the caller times out) or ``None``.
        """
        return self._fire("serve", "*", self.node_id, method)

    def _fire(self, site: str, src: str, dst: str, method: str):
        deferred_delay = 0.0
        for i, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.src not in ("*", src) or rule.dst not in ("*", dst):
                continue
            if rule.method not in ("*", method):
                continue
            with self._lock:
                n = self._counts[i]
                self._counts[i] += 1
                if n < rule.after_n:
                    continue
                if rule.count is not None and n >= rule.after_n + rule.count:
                    continue
                if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                    continue
                self.log.append((site, src, dst, method, rule.op, n))
            self._record(rule.op)
            if rule.op == "delay":
                if site == "serve":
                    self._sleep(rule.delay_s)  # handler thread: only this request stalls
                else:
                    deferred_delay += rule.delay_s  # send seam: never block the caller
                continue
            if rule.op == "crash":
                self._exit(137)
                continue  # only reached with an injected (non-exiting) exit_fn
            return rule.op  # drop | blackhole: first match ends evaluation (subsumes delay)
        if deferred_delay > 0.0:
            return ("delay", deferred_delay)
        return None

    # -- accounting ---------------------------------------------------------------

    def fault_counts(self) -> list[int]:
        """Per-rule match counts (window checks included), in rule order."""
        with self._lock:
            return list(self._counts)

    def schedule(self) -> list[tuple[str, str, str, str, str, int]]:
        """A copy of the fired-fault log: ``(site, src, dst, method, op, n)``."""
        with self._lock:
            return list(self.log)

    def _record(self, op: str) -> None:
        if self._metrics is not None:
            self._metrics.counter("chaos.faults_injected").inc()
            self._metrics.counter(f"chaos.{op}").inc()
