"""Consistency checking for the DHT file system (``fsck``).

After joins, failures and repairs, the file system should satisfy three
invariants:

1. **placement** -- every block's primary copy lives on the ring owner of
   its hash key, replicas on the owner's neighbors;
2. **replication** -- every block and metadata record has the configured
   number of copies (when the ring is large enough to host them);
3. **referential integrity** -- metadata references only blocks that
   exist, and no server stores blocks no metadata references (orphans).

:func:`check` returns a :class:`FsckReport` listing violations instead of
raising, so tests and operators can assert exactly what is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.dfs.blocks import BlockId
from repro.dfs.filesystem import DHTFileSystem

__all__ = ["FsckViolation", "FsckReport", "check"]


@dataclass(frozen=True)
class FsckViolation:
    """One invariant violation."""

    kind: str
    """``misplaced-primary``, ``missing-replica``, ``under-replicated``,
    ``missing-block``, ``orphan-block``, ``misplaced-metadata`` or
    ``under-replicated-metadata``."""

    subject: str
    detail: str = ""


@dataclass
class FsckReport:
    """All violations found, grouped for assertions."""

    violations: list[FsckViolation] = field(default_factory=list)
    files_checked: int = 0
    blocks_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> list[FsckViolation]:
        return [v for v in self.violations if v.kind == kind]

    def add(self, kind: str, subject: object, detail: str = "") -> None:
        self.violations.append(FsckViolation(kind, str(subject), detail))


def check(fs: DHTFileSystem) -> FsckReport:
    """Verify all three invariant families; never mutates the file system."""
    report = FsckReport()
    referenced: set[BlockId] = set()

    for name in fs.list_files():
        report.files_checked += 1
        meta = fs.servers[fs.metadata_owner(name)].metadata.get(name)
        if meta is None:
            report.add("misplaced-metadata", name, "metadata not on its ring owner")
            # Find it anywhere for the block checks.
            for server in fs.servers.values():
                meta = server.metadata.get(name) or server.metadata_replicas.get(name)
                if meta is not None:
                    break
        if meta is None:
            continue

        # Metadata replication: owner + up to `replication` distinct neighbors.
        targets = fs.ring.replica_set(fs.metadata_key(name), extra=fs.config.replication)
        holders = [
            sid
            for sid, srv in fs.servers.items()
            if name in srv.metadata or name in srv.metadata_replicas
        ]
        if len(holders) < len(targets):
            report.add(
                "under-replicated-metadata",
                name,
                f"{len(holders)} copies, expected {len(targets)}",
            )

        for desc in meta.blocks:
            report.blocks_checked += 1
            bid = BlockId(name, desc.index)
            referenced.add(bid)
            owner = fs.ring.owner_of(desc.key)
            expected = fs.ring.replica_set(desc.key, extra=fs.config.replication)
            copies = [sid for sid, srv in fs.servers.items() if srv.blocks.has(bid)]
            if not copies:
                report.add("missing-block", bid, "no copy on any server")
                continue
            if not fs.servers[owner].blocks.has_primary(bid):
                report.add("misplaced-primary", bid, f"ring owner {owner!r} lacks the primary")
            for sid in expected:
                if sid != owner and not fs.servers[sid].blocks.has(bid):
                    report.add("missing-replica", bid, f"neighbor {sid!r} lacks a copy")
            if len(copies) < len(expected):
                report.add(
                    "under-replicated", bid, f"{len(copies)} copies, expected {len(expected)}"
                )

    # Orphans: stored blocks no surviving metadata references.
    for sid, srv in fs.servers.items():
        for block in list(srv.blocks.primaries()) + list(srv.blocks.replicas()):
            if block.block_id not in referenced:
                report.add("orphan-block", block.block_id, f"stored on {sid!r}")

    return report
