"""The decentralized DHT file system (paper §II-A).

Replaces HDFS: files are partitioned into fixed-size blocks spread over the
ring by hash key; per-file metadata lives on the server owning the hash of
the file name; metadata and blocks are replicated on the owner's predecessor
and successor; any server can locate any block from its own finger table
with no NameNode in the path.

* :mod:`repro.dfs.blocks` -- block descriptors and per-server block stores.
* :mod:`repro.dfs.metadata` -- file metadata records and permissions.
* :mod:`repro.dfs.filesystem` -- the :class:`DHTFileSystem` facade.
* :mod:`repro.dfs.fault` -- failure recovery (takeover + re-replication).
* :mod:`repro.dfs.fsck` -- invariant checking (placement, replication,
  referential integrity).
"""

from repro.dfs.blocks import Block, BlockId, BlockStore
from repro.dfs.metadata import BlockDescriptor, FileMetadata
from repro.dfs.filesystem import DHTFileSystem, StorageServer
from repro.dfs.fault import RecoveryReport, rebalance, recover_from_failure
from repro.dfs.fsck import FsckReport, FsckViolation, check as fsck

__all__ = [
    "Block",
    "BlockId",
    "BlockStore",
    "BlockDescriptor",
    "FileMetadata",
    "DHTFileSystem",
    "StorageServer",
    "RecoveryReport",
    "rebalance",
    "recover_from_failure",
    "FsckReport",
    "FsckViolation",
    "fsck",
]
