"""Failure recovery for the DHT file system.

When a server crashes, its arc merges into its successor's, and the
replicas kept on the ring neighbors make every lost primary recoverable
(paper §II-A: "unless a server fails along with its predecessor and
successor at the same time, the DHT file system can tolerate system
failures").  The resource manager then *re-replicates* so the replication
factor is restored for the next failure.

This module implements that repair as a pure function over the functional
file system; the amount of data it moves is what the performance model
charges for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.dfs.blocks import Block, BlockId
from repro.dfs.filesystem import DHTFileSystem

__all__ = ["RecoveryReport", "recover_from_failure", "rebalance"]


@dataclass
class RecoveryReport:
    """What the repair did, for assertions and for the performance model."""

    failed_server: Hashable
    blocks_promoted: int = 0
    blocks_recopied: int = 0
    bytes_recopied: int = 0
    metadata_promoted: int = 0
    metadata_recopied: int = 0
    lost_blocks: list[BlockId] = field(default_factory=list)
    lost_files: list[str] = field(default_factory=list)

    @property
    def fully_recovered(self) -> bool:
        return not self.lost_blocks and not self.lost_files


def rebalance(fs: DHTFileSystem) -> RecoveryReport:
    """Restore placement invariants after membership changed (e.g. a join).

    When a server joins, it takes over part of its successor's arc; until
    data moves, reads are served by the old holders through the replica
    fallback.  The resource manager then migrates primaries and replicas so
    every block again sits on its ring owner and neighbors.  Returns the
    same report shape as failure recovery (nothing should ever be lost on
    a join).
    """
    report = RecoveryReport(failed_server=None)
    _repair_blocks(fs, report)
    _repair_metadata(fs, report)
    return report


def recover_from_failure(fs: DHTFileSystem, failed_id: Hashable) -> RecoveryReport:
    """Crash ``failed_id`` and restore placement invariants from survivors.

    After this returns, every surviving block and metadata record again has
    its primary on the ring owner and replicas on the owner's neighbors.
    Blocks whose every copy lived on the failed server (replication 0, or a
    correlated neighbor failure) are reported lost.
    """
    fs.remove_server(failed_id)
    report = RecoveryReport(failed_server=failed_id)
    _repair_blocks(fs, report)
    _repair_metadata(fs, report)
    return report


def _repair_blocks(fs: DHTFileSystem, report: RecoveryReport) -> None:
    # Collect the survivors' view: every copy of every block.
    copies: dict[BlockId, Block] = {}
    seen_ids: set[BlockId] = set()
    for server in fs.servers.values():
        for block in list(server.blocks.primaries()) + list(server.blocks.replicas()):
            copies.setdefault(block.block_id, block)
            seen_ids.add(block.block_id)

    # Every block any surviving metadata record references must exist.
    for name in fs.list_files():
        meta = fs.stat(name, user=_any_reader(fs, name))
        for desc in meta.blocks:
            bid = BlockId(name, desc.index)
            if bid not in seen_ids:
                report.lost_blocks.append(bid)

    for bid, block in copies.items():
        targets = fs.ring.replica_set(block.key, extra=fs.config.replication)
        primary, rest = targets[0], targets[1:]
        pserver = fs.servers[primary]
        if not pserver.blocks.has_primary(bid):
            if pserver.blocks.has_replica(bid):
                pserver.blocks.promote(bid)
                report.blocks_promoted += 1
            else:
                pserver.blocks.put(block)
                report.blocks_recopied += 1
                report.bytes_recopied += block.size
        for sid in rest:
            rserver = fs.servers[sid]
            if not rserver.blocks.has(bid):
                rserver.blocks.put(block, replica=True)
                report.blocks_recopied += 1
                report.bytes_recopied += block.size
        # Tidy stale copies left on servers no longer in the replica set
        # (e.g. the old predecessor after arcs shifted).
        for sid, server in fs.servers.items():
            if sid not in targets:
                server.blocks.drop(bid)


def _repair_metadata(fs: DHTFileSystem, report: RecoveryReport) -> None:
    records: dict[str, object] = {}
    for server in fs.servers.values():
        for name, meta in server.metadata.items():
            records.setdefault(name, meta)
        for name, meta in server.metadata_replicas.items():
            records.setdefault(name, meta)

    for name, meta in records.items():
        targets = fs.ring.replica_set(fs.metadata_key(name), extra=fs.config.replication)
        primary, rest = targets[0], targets[1:]
        pserver = fs.servers[primary]
        if name not in pserver.metadata:
            if name in pserver.metadata_replicas:
                pserver.metadata[name] = pserver.metadata_replicas.pop(name)
                report.metadata_promoted += 1
            else:
                pserver.metadata[name] = meta  # type: ignore[assignment]
                report.metadata_recopied += 1
        for sid in rest:
            rserver = fs.servers[sid]
            if name not in rserver.metadata and name not in rserver.metadata_replicas:
                rserver.metadata_replicas[name] = meta  # type: ignore[assignment]
                report.metadata_recopied += 1
        for sid, server in fs.servers.items():
            if sid not in targets:
                server.metadata.pop(name, None)
                server.metadata_replicas.pop(name, None)


def _any_reader(fs: DHTFileSystem, name: str) -> str:
    """The file's owner (recovery runs as the system, not a client)."""
    owner_server = fs.metadata_owner(name)
    meta = fs.servers[owner_server].metadata.get(name) or fs.servers[
        owner_server
    ].metadata_replicas.get(name)
    return meta.owner if meta is not None else "user"
