"""Block descriptors and per-server block storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, NamedTuple, Optional

from repro.common.errors import BlockNotFound

__all__ = ["BlockId", "Block", "BlockStore"]


class BlockId(NamedTuple):
    """Globally unique block identity: which file, which piece."""

    file_name: str
    index: int


@dataclass
class Block:
    """One fixed-size piece of a file.

    ``data`` is the real payload in functional runs and ``None`` in
    size-only runs (the performance model moves simulated bytes).
    """

    block_id: BlockId
    key: int
    size: int
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("block size must be non-negative")
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"block {self.block_id}: payload is {len(self.data)} bytes "
                f"but size says {self.size}"
            )


class BlockStore:
    """Blocks held by one server, primaries and replicas separately.

    Keeping the two classes distinct matters for recovery: a takeover server
    *promotes* its replicas instead of re-fetching them.
    """

    def __init__(self, server_id: Hashable) -> None:
        self.server_id = server_id
        self._primary: dict[BlockId, Block] = {}
        self._replica: dict[BlockId, Block] = {}

    # -- writes ---------------------------------------------------------------

    def put(self, block: Block, *, replica: bool = False) -> None:
        """Store a block; a primary put supersedes any replica copy."""
        if replica:
            if block.block_id not in self._primary:
                self._replica[block.block_id] = block
        else:
            self._replica.pop(block.block_id, None)
            self._primary[block.block_id] = block

    def promote(self, block_id: BlockId) -> Block:
        """Turn a replica into a primary (failure takeover)."""
        try:
            block = self._replica.pop(block_id)
        except KeyError:
            raise BlockNotFound(f"{self.server_id!r} has no replica of {block_id}") from None
        self._primary[block_id] = block
        return block

    def drop(self, block_id: BlockId) -> None:
        """Remove both copies if present."""
        self._primary.pop(block_id, None)
        self._replica.pop(block_id, None)

    # -- reads ----------------------------------------------------------------

    def get(self, block_id: BlockId) -> Block:
        """Fetch a block from either class; raises :class:`BlockNotFound`."""
        block = self._primary.get(block_id) or self._replica.get(block_id)
        if block is None:
            raise BlockNotFound(f"{self.server_id!r} does not hold {block_id}")
        return block

    def has(self, block_id: BlockId) -> bool:
        return block_id in self._primary or block_id in self._replica

    def has_primary(self, block_id: BlockId) -> bool:
        return block_id in self._primary

    def has_replica(self, block_id: BlockId) -> bool:
        return block_id in self._replica

    def primaries(self) -> Iterator[Block]:
        yield from self._primary.values()

    def replicas(self) -> Iterator[Block]:
        yield from self._replica.values()

    @property
    def primary_bytes(self) -> int:
        return sum(b.size for b in self._primary.values())

    @property
    def replica_bytes(self) -> int:
        return sum(b.size for b in self._replica.values())

    def __len__(self) -> int:
        return len(self._primary) + len(self._replica)
