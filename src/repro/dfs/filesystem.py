"""The DHT file system facade.

One :class:`DHTFileSystem` object coordinates a set of
:class:`StorageServer` peers placed on a consistent hash ring.  There is no
central directory: every lookup is two ring operations (metadata owner by
file-name hash, block owner by block hash), which is exactly what each
EclipseMR server computes locally from its finger table.

The implementation is *functional*: it stores real (or size-only) blocks
and is used both by the in-process MapReduce engine and as the placement
oracle for the discrete-event performance model.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional

from repro.common.config import DFSConfig
from repro.common.errors import BlockNotFound, FileNotFound, FileSystemError, RingError
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dfs.blocks import Block, BlockId, BlockStore
from repro.dfs.metadata import BlockDescriptor, FileMetadata
from repro.dht.finger import RoutingTable
from repro.dht.ring import ConsistentHashRing

__all__ = ["StorageServer", "DHTFileSystem"]


class StorageServer:
    """One peer: its blocks plus the metadata records it owns."""

    def __init__(self, server_id: Hashable) -> None:
        self.server_id = server_id
        self.blocks = BlockStore(server_id)
        self.metadata: dict[str, FileMetadata] = {}
        self.metadata_replicas: dict[str, FileMetadata] = {}

    @property
    def stored_bytes(self) -> int:
        """Primary bytes only (the skew statistics in the experiments)."""
        return self.blocks.primary_bytes

    def __repr__(self) -> str:
        return f"<StorageServer {self.server_id!r} files={len(self.metadata)} blocks={len(self.blocks)}>"


class DHTFileSystem:
    """Decentralized block storage over consistent hashing."""

    def __init__(
        self,
        server_ids: Iterable[Hashable],
        config: DFSConfig | None = None,
        space: HashSpace = DEFAULT_SPACE,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or DFSConfig()
        self.space = space
        self.ring = ConsistentHashRing(space)
        self.servers: dict[Hashable, StorageServer] = {}
        self._clock = clock or (lambda: 0.0)
        for sid in server_ids:
            self.add_server(sid)
        if not self.servers:
            raise RingError("DHT file system needs at least one server")
        self.routing = RoutingTable(self.ring, one_hop=self.config.one_hop_routing)

    # -- membership -----------------------------------------------------------

    def add_server(self, server_id: Hashable, position: int | None = None) -> StorageServer:
        """Join a new storage peer (ring position from its id by default)."""
        self.ring.add_node(server_id, position)
        server = StorageServer(server_id)
        self.servers[server_id] = server
        if getattr(self, "routing", None) is not None:
            self.routing.rebuild()
        return server

    def remove_server(self, server_id: Hashable) -> StorageServer:
        """Drop a peer from the ring (crash semantics: its data is *gone*).

        Call :func:`repro.dfs.fault.recover_from_failure` afterwards to
        restore replication from the surviving copies.
        """
        self.ring.remove_node(server_id)
        server = self.servers.pop(server_id)
        self.routing.rebuild()
        return server

    def server(self, server_id: Hashable) -> StorageServer:
        try:
            return self.servers[server_id]
        except KeyError:
            raise RingError(f"unknown server {server_id!r}") from None

    # -- key derivation ---------------------------------------------------------

    def metadata_key(self, name: str) -> int:
        return self.space.key_of(name)

    def metadata_owner(self, name: str) -> Hashable:
        """The server that answers ``open(name)`` (Fig. 2, step 1)."""
        return self.ring.owner_of(self.metadata_key(name))

    def block_owner(self, name: str, index: int) -> Hashable:
        return self.ring.owner_of(self.space.block_key(name, index))

    # -- writes -----------------------------------------------------------------

    def upload(
        self,
        name: str,
        data: bytes | None = None,
        *,
        size: int | None = None,
        owner: str = "user",
        permissions: int = 0o644,
        tags: dict[str, str] | None = None,
    ) -> FileMetadata:
        """Partition a file into blocks and spread it over the ring.

        Pass real ``data`` for functional runs, or ``size=`` alone for
        placement-only runs.  Replicas land on the block owner's predecessor
        and successor per the configured replication.
        """
        if (data is None) == (size is None):
            raise FileSystemError("pass exactly one of data= or size=")
        if name in self._all_metadata_names():
            raise FileSystemError(f"file {name!r} already exists")
        total = len(data) if data is not None else int(size)
        block_size = self.config.block_size
        descriptors: list[BlockDescriptor] = []
        index = 0
        offset = 0
        while True:
            this_size = min(block_size, total - offset)
            if this_size <= 0 and index > 0:
                break
            key = self.space.block_key(name, index)
            payload = data[offset : offset + this_size] if data is not None else None
            block = Block(BlockId(name, index), key, this_size, payload)
            self._place_block(block)
            descriptors.append(BlockDescriptor(index, key, this_size))
            offset += this_size
            index += 1
            if offset >= total:
                break
        meta = FileMetadata(
            name=name,
            owner=owner,
            size=total,
            permissions=permissions,
            created_at=self._clock(),
            blocks=descriptors,
            tags=dict(tags or {}),
        )
        self._place_metadata(meta)
        return meta

    def _place_block(self, block: Block) -> None:
        replicas = self.ring.replica_set(block.key, extra=self.config.replication)
        primary, rest = replicas[0], replicas[1:]
        self.servers[primary].blocks.put(block)
        for sid in rest:
            self.servers[sid].blocks.put(block, replica=True)

    def _place_metadata(self, meta: FileMetadata) -> None:
        replicas = self.ring.replica_set(self.metadata_key(meta.name), extra=self.config.replication)
        primary, rest = replicas[0], replicas[1:]
        self.servers[primary].metadata[meta.name] = meta
        for sid in rest:
            self.servers[sid].metadata_replicas[meta.name] = meta

    # -- hash-key-addressed objects ----------------------------------------------
    #
    # Map tasks persist intermediate results in the DHT file system *by the
    # hash key of the intermediate data* (paper §II-C step 5), so reducers
    # find them with the same consistent hashing used for blocks.  Objects
    # are single-block files placed at an explicit key.

    def put_object(
        self,
        name: str,
        data: bytes | None,
        key: int,
        *,
        size: int | None = None,
        owner: str = "user",
        tags: dict[str, str] | None = None,
    ) -> FileMetadata:
        """Store a one-block object at the server owning ``key``."""
        if (data is None) == (size is None):
            raise FileSystemError("pass exactly one of data= or size=")
        total = len(data) if data is not None else int(size)
        self.space.validate(key)
        if name in self._all_metadata_names():
            raise FileSystemError(f"object {name!r} already exists")
        block = Block(BlockId(name, 0), key, total, data)
        self._place_block(block)
        meta = FileMetadata(
            name=name,
            owner=owner,
            size=total,
            permissions=0o644,
            created_at=self._clock(),
            blocks=[BlockDescriptor(0, key, total)],
            tags=dict(tags or {}),
        )
        self._place_metadata(meta)
        return meta

    def get_object(self, name: str, user: str = "user") -> bytes:
        """Read back an object stored with :meth:`put_object`."""
        return self.read(name, user=user)

    def delete(self, name: str, user: str = "user") -> None:
        """Remove a file's metadata and every block copy."""
        meta = self.stat(name, user=user, write=True)
        for desc in meta.blocks:
            bid = BlockId(name, desc.index)
            for server in self.servers.values():
                server.blocks.drop(bid)
        for server in self.servers.values():
            server.metadata.pop(name, None)
            server.metadata_replicas.pop(name, None)

    # -- reads ------------------------------------------------------------------

    def stat(self, name: str, user: str = "user", *, write: bool = False) -> FileMetadata:
        """Fetch metadata from its owner (permission check included)."""
        meta = None
        # Check the owner first, then its neighbors: after a join or a
        # failure the record may still sit on the previous owner, which by
        # construction is inside the replica set.
        for sid in self.ring.replica_set(self.metadata_key(name), extra=max(1, self.config.replication)):
            server = self.servers[sid]
            meta = server.metadata.get(name) or server.metadata_replicas.get(name)
            if meta is not None:
                break
        if meta is None:
            raise FileNotFound(f"no such file: {name!r}")
        meta.check_access(user, write=write)
        return meta

    def exists(self, name: str) -> bool:
        try:
            self.stat(name)
            return True
        except (FileNotFound, FileSystemError):
            return False

    def read_block(self, name: str, index: int, user: str = "user") -> Block:
        """Read one block, falling back to replicas if the primary lost it."""
        meta = self.stat(name, user=user)
        if not 0 <= index < meta.num_blocks:
            raise BlockNotFound(f"{name!r} has no block {index}")
        desc = meta.blocks[index]
        bid = BlockId(name, index)
        for sid in self.ring.replica_set(desc.key, extra=self.config.replication):
            server = self.servers[sid]
            if server.blocks.has(bid):
                return server.blocks.get(bid)
        raise BlockNotFound(f"all copies of {bid} are lost")

    def read(self, name: str, user: str = "user") -> bytes:
        """Reassemble a whole file (functional runs only)."""
        meta = self.stat(name, user=user)
        parts: list[bytes] = []
        for desc in meta.blocks:
            block = self.read_block(name, desc.index, user=user)
            if block.data is None:
                raise FileSystemError(f"{name!r} was uploaded size-only; no payload to read")
            parts.append(block.data)
        return b"".join(parts)

    def block_locations(self, name: str, user: str = "user") -> list[tuple[BlockDescriptor, list[Hashable]]]:
        """Every block's descriptor plus the servers currently holding it."""
        meta = self.stat(name, user=user)
        out = []
        for desc in meta.blocks:
            bid = BlockId(name, desc.index)
            holders = [sid for sid, srv in self.servers.items() if srv.blocks.has(bid)]
            out.append((desc, holders))
        return out

    def list_files(self) -> list[str]:
        """All file names, gathered from every metadata owner."""
        return sorted(self._all_metadata_names())

    def _all_metadata_names(self) -> set[str]:
        names: set[str] = set()
        for server in self.servers.values():
            names.update(server.metadata.keys())
        return names

    # -- statistics ---------------------------------------------------------------

    def stored_bytes_per_server(self) -> dict[Hashable, int]:
        """Primary bytes per server (block-distribution skew metric)."""
        return {sid: srv.stored_bytes for sid, srv in self.servers.items()}
