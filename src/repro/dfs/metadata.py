"""Decentralized file metadata.

A file's metadata record -- name, owner, size, permissions, and how it was
partitioned -- lives on the server whose arc covers ``hash(file name)``
("file metadata owner", paper §II-A), replicated on that server's ring
neighbors like any block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PermissionDenied

__all__ = ["BlockDescriptor", "FileMetadata"]

READ = 0o4
WRITE = 0o2


@dataclass(frozen=True)
class BlockDescriptor:
    """Where one block of the file lives on the key space."""

    index: int
    key: int
    size: int


@dataclass
class FileMetadata:
    """Everything a client needs before touching block data."""

    name: str
    owner: str
    size: int
    permissions: int = 0o644
    created_at: float = 0.0
    blocks: list[BlockDescriptor] = field(default_factory=list)
    tags: dict[str, str] = field(default_factory=dict)
    """Free-form application tags (EclipseMR tags cached intermediates)."""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("file size must be non-negative")
        if not self.name:
            raise ValueError("file name must be non-empty")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def check_access(self, user: str, *, write: bool = False) -> None:
        """Unix-style owner/other permission check.

        Raises :class:`PermissionDenied` when ``user`` lacks the requested
        access.  (The DHT file system has no group database; the group bits
        are treated as "other".)
        """
        needed = WRITE if write else READ
        shift = 6 if user == self.owner else 0
        if not (self.permissions >> shift) & needed:
            mode = "write" if write else "read"
            raise PermissionDenied(
                f"user {user!r} may not {mode} {self.name!r} "
                f"(mode {oct(self.permissions)}, owner {self.owner!r})"
            )
