"""Pluggable cache replacement policies (``CacheConfig.eviction``).

The paper's workers evict strictly by recency (§II-E), which ages out
hot-but-briefly-idle objects on skewed workloads.  PAPERS.md's caching
surveys (H-SVM-LRU; Ghazali et al.) argue for scoring entries by access
*frequency* and *recompute cost* instead; :class:`CostAwarePolicy`
implements the classic GreedyDual-Size-Frequency form of that idea:

    priority = age + frequency x cost / size

``age`` is a monotone floor that rises to each evicted victim's priority,
so long-idle entries eventually lose to fresh ones no matter how hot they
once were -- the standard GDSF aging trick that keeps the score from
fossilizing.  ``cost`` defaults to the entry's byte size (recompute cost
proxied by rebuild volume), collapsing the score to ``age + frequency``:
frequency-aware LRU with aging.  Callers that know better (an oCache
entry whose map task took seconds to run) can pass an explicit cost.

A policy only *ranks* entries; the cache keeps ownership of the entry
table, byte accounting, TTLs, and counters.  State a policy needs lives
on the entries themselves (``freq``/``cost``/``priority`` fields) plus
whatever scalars the policy object carries -- which is why every cache
partition gets its **own policy instance**.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cache.lru import CacheEntry

__all__ = ["EvictionPolicy", "LRUPolicy", "CostAwarePolicy", "make_policy"]


class EvictionPolicy:
    """Ranks cache entries for eviction; owns no entry storage.

    The cache calls ``on_insert`` / ``on_access`` / ``on_evict`` as
    entries move through their lifecycle and ``select_victim`` when it
    must free space.  ``entries`` is the cache's live table in LRU order
    (least-recently-used first) -- policies may rely on that order but
    must not mutate it.
    """

    name = "?"

    def on_insert(self, entry: "CacheEntry") -> None:
        pass

    def on_access(self, entry: "CacheEntry") -> None:
        pass

    def on_evict(self, entry: "CacheEntry") -> None:
        pass

    def select_victim(self, entries: Mapping[Hashable, "CacheEntry"]) -> Hashable:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used entry (the paper's §II-E policy).

    The cache maintains recency order in its table, so the victim is
    simply the first key -- behavior identical to the pre-seam cache.
    """

    name = "lru"

    def select_victim(self, entries: Mapping[Hashable, "CacheEntry"]) -> Hashable:
        return next(iter(entries))


class CostAwarePolicy(EvictionPolicy):
    """GDSF: evict the minimum of ``age + freq x cost / size``.

    Ties break toward the least recently used of the tied entries (the
    scan keeps the first minimum in LRU order), so with uniform
    frequencies this degenerates to exact LRU -- which also makes its
    decisions deterministic across runs and planes.
    """

    name = "cost"

    def __init__(self) -> None:
        self._age = 0.0

    def _score(self, entry: "CacheEntry") -> float:
        return self._age + entry.freq * entry.cost / max(entry.size, 1)

    def on_insert(self, entry: "CacheEntry") -> None:
        entry.freq = 1
        entry.priority = self._score(entry)

    def on_access(self, entry: "CacheEntry") -> None:
        entry.freq += 1
        entry.priority = self._score(entry)

    def on_evict(self, entry: "CacheEntry") -> None:
        # Aging: future scores start from the departed victim's priority,
        # so an entry must out-score recent traffic to stay resident.
        self._age = max(self._age, entry.priority)

    def select_victim(self, entries: Mapping[Hashable, "CacheEntry"]) -> Hashable:
        victim = None
        best = None
        for key, entry in entries.items():
            if best is None or entry.priority < best:
                victim, best = key, entry.priority
        return victim


def make_policy(name: str) -> EvictionPolicy:
    """A fresh policy instance for one cache partition."""
    if name == "lru":
        return LRUPolicy()
    if name == "cost":
        return CostAwarePolicy()
    raise ConfigError(f"eviction policy must be 'lru' or 'cost', got {name!r}")
