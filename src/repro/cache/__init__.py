"""The distributed in-memory cache (paper §II-B).

EclipseMR's outer ring: every worker contributes memory, and objects are
cached by *hash key*, not by which server computed them, so globally
popular data spreads over the whole cluster and any server can locate a
cached object with one hash.

* :mod:`repro.cache.lru` -- byte-capacity cache with TTL and pluggable
  victim selection (LRU by default, the policy the paper assumes).
* :mod:`repro.cache.eviction` -- the replacement-policy seam
  (``CacheConfig.eviction``): exact LRU, or a GDSF-style
  frequency x recompute-cost score with aging for skewed workloads.
* :mod:`repro.cache.worker` -- one worker's cache, split into **iCache**
  (input blocks, implicit) and **oCache** (intermediate results and
  iteration outputs, explicit, tagged, TTL-invalidated).
* :mod:`repro.cache.distributed` -- the cluster-wide view: per-server hash
  key ranges (dynamic, set by the scheduler), lookup, and the misplaced-
  entry migration option.
"""

from repro.cache.lru import LRUCache, CacheEntry
from repro.cache.eviction import (
    CostAwarePolicy,
    EvictionPolicy,
    LRUPolicy,
    make_policy,
)
from repro.cache.worker import WorkerCache, CacheStats
from repro.cache.distributed import DistributedCache

__all__ = [
    "LRUCache",
    "CacheEntry",
    "EvictionPolicy",
    "LRUPolicy",
    "CostAwarePolicy",
    "make_policy",
    "WorkerCache",
    "CacheStats",
    "DistributedCache",
]
