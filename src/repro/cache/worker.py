"""One worker's slice of the distributed in-memory cache.

Two partitions per server (paper §II-B):

* **iCache** -- input file blocks, cached *implicitly* when a map task
  reads them; keyed by :class:`~repro.dfs.blocks.BlockId`.
* **oCache** -- intermediate results and iteration outputs, cached
  *explicitly* by the application; keyed by an application-chosen tag and
  stamped with the application id and an optional TTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.common.config import CacheConfig
from repro.cache.eviction import make_policy
from repro.cache.lru import LRUCache

__all__ = ["WorkerCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction totals across both partitions."""

    icache_hits: int
    icache_misses: int
    ocache_hits: int
    ocache_misses: int
    icache_evictions: int = 0
    ocache_evictions: int = 0
    icache_expirations: int = 0
    ocache_expirations: int = 0

    @property
    def hits(self) -> int:
        return self.icache_hits + self.ocache_hits

    @property
    def misses(self) -> int:
        return self.icache_misses + self.ocache_misses

    @property
    def evictions(self) -> int:
        return self.icache_evictions + self.ocache_evictions

    @property
    def expirations(self) -> int:
        return self.icache_expirations + self.ocache_expirations

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class WorkerCache:
    """iCache + oCache for one server, splitting one memory budget."""

    def __init__(
        self,
        server_id: Hashable,
        config: CacheConfig | None = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.server_id = server_id
        self.config = config or CacheConfig()
        capacity = self.config.capacity_per_server
        icache_bytes = int(capacity * self.config.icache_fraction)
        # Each partition gets its own policy instance: cost-aware
        # policies carry aging state that must not leak across
        # partitions (or servers).  With no injected clock the cache
        # falls back to ``time.monotonic``, so TTL'd oCache entries
        # really expire.
        self.icache = LRUCache(icache_bytes, clock,
                               policy=make_policy(self.config.eviction))
        self.ocache = LRUCache(capacity - icache_bytes, clock,
                               policy=make_policy(self.config.eviction))

    # -- iCache -----------------------------------------------------------------

    def get_input(self, block_id: Hashable) -> tuple[bool, Any]:
        """Look up an input block; a miss is how blocks *enter* the cache
        (the caller inserts after reading from the DHT FS)."""
        return self.icache.lookup(block_id)

    def put_input(self, block_id: Hashable, value: Any, size: int, hash_key: int | None = None) -> bool:
        return self.icache.put(block_id, value, size, hash_key=hash_key)

    # -- oCache -----------------------------------------------------------------

    def get_output(self, app_id: str, tag: str) -> tuple[bool, Any]:
        """Look up an explicitly cached object by its application tag."""
        return self.ocache.lookup((app_id, tag))

    def put_output(
        self,
        app_id: str,
        tag: str,
        value: Any,
        size: int,
        ttl: Optional[float] = None,
        hash_key: int | None = None,
    ) -> bool:
        """Explicitly cache an intermediate result / iteration output.

        ``ttl`` defaults to the configured application TTL; the entry is
        tagged ``(app_id, tag)`` as in the paper ("EclipseMR tags the cached
        data with their metadata (application ID, user-assigned ID)").
        """
        if ttl is None:
            ttl = self.config.default_ttl
        return self.ocache.put((app_id, tag), value, size, ttl=ttl, hash_key=hash_key)

    def invalidate_app(self, app_id: str) -> int:
        """Drop every oCache entry belonging to one application."""
        victims = [e.key for e in self.ocache.entries() if e.key[0] == app_id]
        for key in victims:
            self.ocache.pop(key)
        return len(victims)

    # -- shared ------------------------------------------------------------------

    def clear(self) -> None:
        self.icache.clear()
        self.ocache.clear()

    @property
    def used(self) -> int:
        return self.icache.used + self.ocache.used

    @property
    def capacity(self) -> int:
        return self.icache.capacity + self.ocache.capacity

    def stats(self) -> CacheStats:
        return CacheStats(
            icache_hits=self.icache.hits,
            icache_misses=self.icache.misses,
            ocache_hits=self.ocache.hits,
            ocache_misses=self.ocache.misses,
            icache_evictions=self.icache.evictions,
            ocache_evictions=self.ocache.evictions,
            icache_expirations=self.icache.expirations,
            ocache_expirations=self.ocache.expirations,
        )
