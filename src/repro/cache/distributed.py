"""The cluster-wide cache view: dynamic ranges + migration.

The scheduler owns the hash key ranges; this class applies them to the
per-worker caches, answers "which server should have key k cached", and
implements the optional misplaced-entry migration the paper describes in
§II-E: when LAF shifts a boundary, objects cached under the old ranges can
be handed to the left/right neighbor whose new range covers them (the
paper implements the option but leaves it off in the evaluation).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.common.config import CacheConfig
from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.cache.worker import CacheStats, WorkerCache
from repro.scheduler.partition import SpacePartition

__all__ = ["DistributedCache"]


class DistributedCache:
    """All workers' caches plus the current range assignment."""

    def __init__(
        self,
        servers: Sequence[Hashable],
        config: CacheConfig | None = None,
        space: HashSpace | None = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        servers = list(servers)
        if not servers:
            raise SchedulingError("distributed cache needs at least one server")
        self.space = space or HashSpace()
        self.config = config or CacheConfig()
        self.servers = servers
        self.workers: dict[Hashable, WorkerCache] = {
            s: WorkerCache(s, self.config, clock) for s in servers
        }
        self.partition = SpacePartition.uniform(self.space, servers)
        self.migrated_entries = 0

    def worker(self, server: Hashable) -> WorkerCache:
        try:
            return self.workers[server]
        except KeyError:
            raise SchedulingError(f"unknown server {server!r}") from None

    def remove_server(self, server: Hashable) -> None:
        """Drop a failed worker: its cached objects are gone; the remaining
        workers re-cover the key space uniformly until the scheduler pushes
        a fresh partition."""
        if server not in self.workers:
            raise SchedulingError(f"unknown server {server!r}")
        if len(self.workers) == 1:
            raise SchedulingError("cannot remove the last cache server")
        del self.workers[server]
        self.servers.remove(server)
        self.partition = SpacePartition.uniform(self.space, self.servers)

    def add_server(self, server: Hashable) -> None:
        """Admit a joiner with an empty cache; ranges re-cover the key
        space uniformly until the scheduler pushes a fresh partition."""
        if server in self.workers:
            raise SchedulingError(f"server {server!r} already present")
        self.workers[server] = WorkerCache(server, self.config)
        self.servers.append(server)
        self.partition = SpacePartition.uniform(self.space, self.servers)

    def home_of(self, hash_key: int) -> Hashable:
        """The server whose current range covers ``hash_key``."""
        return self.partition.owner_of(hash_key)

    def set_partition(self, partition: SpacePartition) -> None:
        """Adopt the scheduler's new ranges, optionally migrating entries."""
        if set(partition.servers) != set(self.servers):
            raise SchedulingError("partition servers do not match the cache servers")
        self.partition = partition
        if self.config.migrate_misplaced:
            self.migrated_entries += self._migrate_misplaced()

    def misplaced_entries(self) -> dict[Hashable, int]:
        """How many cached objects sit outside their server's current range."""
        out: dict[Hashable, int] = {}
        for server, cache in self.workers.items():
            count = 0
            for lru in (cache.icache, cache.ocache):
                for entry in lru.entries():
                    if entry.hash_key is not None and self.home_of(entry.hash_key) != server:
                        count += 1
            out[server] = count
        return out

    def _migrate_misplaced(self) -> int:
        """Hand misplaced entries to an *adjacent* server whose new range
        covers them (the paper only checks the left and right neighbors)."""
        moved = 0
        order = list(self.partition.servers)
        for i, server in enumerate(order):
            cache = self.workers[server]
            neighbors = {order[i - 1], order[(i + 1) % len(order)]}
            for lru_name in ("icache", "ocache"):
                lru = getattr(cache, lru_name)
                for entry in list(lru.entries()):
                    if entry.hash_key is None:
                        continue
                    home = self.home_of(entry.hash_key)
                    if home != server and home in neighbors:
                        lru.pop(entry.key)
                        target = getattr(self.workers[home], lru_name)
                        target.put(
                            entry.key,
                            entry.value,
                            entry.size,
                            hash_key=entry.hash_key,
                        )
                        moved += 1
        return moved

    # -- aggregate statistics ------------------------------------------------------

    def stats(self) -> CacheStats:
        """Summed hit/miss/eviction totals across all workers."""
        ih = im = oh = om = iev = oev = iex = oex = 0
        for cache in self.workers.values():
            s = cache.stats()
            ih += s.icache_hits
            im += s.icache_misses
            oh += s.ocache_hits
            om += s.ocache_misses
            iev += s.icache_evictions
            oev += s.ocache_evictions
            iex += s.icache_expirations
            oex += s.ocache_expirations
        return CacheStats(ih, im, oh, om, iev, oev, iex, oex)

    @property
    def used(self) -> int:
        return sum(c.used for c in self.workers.values())

    @property
    def capacity(self) -> int:
        return sum(c.capacity for c in self.workers.values())

    def clear(self) -> None:
        for cache in self.workers.values():
            cache.clear()
