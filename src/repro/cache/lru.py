"""Byte-capacity LRU cache with optional per-entry TTL.

The paper's worker caches evict by LRU ("each worker server caches only a
certain number of recently accessed data objects using the LRU cache
replacement policy", §II-E) and oCache entries carry an application-set
time-to-live (§II-C).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.common.errors import CacheMiss

__all__ = ["CacheEntry", "LRUCache"]


@dataclass
class CacheEntry:
    """One cached object."""

    key: Hashable
    value: Any
    size: int
    expires_at: Optional[float] = None
    hash_key: Optional[int] = None
    """Position on the hash ring, for misplaced-entry migration."""

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class LRUCache:
    """LRU over entries whose sizes sum to at most ``capacity`` bytes."""

    def __init__(
        self,
        capacity: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = int(capacity)
        self._clock = clock or (lambda: 0.0)
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    @property
    def used(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence check that honors TTL but does not count as an access."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if entry.expired(self._clock()):
            self._drop(key, expired=True)
            return False
        return True

    def get(self, key: Hashable) -> Any:
        """Strict lookup: returns the value or raises :class:`CacheMiss`."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            raise CacheMiss(f"{key!r} not cached")
        if entry.expired(self._clock()):
            self._drop(key, expired=True)
            self.misses += 1
            raise CacheMiss(f"{key!r} expired")
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """Tolerant lookup: ``(hit, value_or_None)``."""
        try:
            return True, self.get(key)
        except CacheMiss:
            return False, None

    def put(
        self,
        key: Hashable,
        value: Any,
        size: int,
        ttl: Optional[float] = None,
        hash_key: Optional[int] = None,
    ) -> bool:
        """Insert/replace an entry; returns False when it cannot fit at all."""
        if size < 0:
            raise ValueError("entry size must be non-negative")
        if size > self.capacity:
            self._entries.pop(key, None)
            self._recount()
            return False
        if key in self._entries:
            self._used -= self._entries.pop(key).size
        while self._used + size > self.capacity and self._entries:
            self._evict_lru()
        expires_at = self._clock() + ttl if ttl is not None else None
        self._entries[key] = CacheEntry(key, value, size, expires_at, hash_key)
        self._used += size
        return True

    def pop(self, key: Hashable) -> Optional[CacheEntry]:
        """Remove and return an entry (None when absent)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry.size
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate live entries, LRU first (do not mutate while iterating)."""
        now = self._clock()
        for entry in list(self._entries.values()):
            if not entry.expired(now):
                yield entry

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many went."""
        now = self._clock()
        stale = [k for k, e in self._entries.items() if e.expired(now)]
        for key in stale:
            self._drop(key, expired=True)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict_lru(self) -> None:
        _, entry = self._entries.popitem(last=False)
        self._used -= entry.size
        self.evictions += 1

    def _drop(self, key: Hashable, *, expired: bool) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry.size
            if expired:
                self.expirations += 1

    def _recount(self) -> None:
        self._used = sum(e.size for e in self._entries.values())
