"""Byte-capacity cache with optional per-entry TTL and pluggable eviction.

The paper's worker caches evict by LRU ("each worker server caches only a
certain number of recently accessed data objects using the LRU cache
replacement policy", §II-E) and oCache entries carry an application-set
time-to-live (§II-C).  Victim selection is delegated to an
:class:`~repro.cache.eviction.EvictionPolicy` (default: exact LRU);
everything else -- byte accounting, TTLs, recency order, counters --
stays here.

TTL expiry requires a clock.  With no injected clock the cache reads
``time.monotonic``, so TTL'd entries actually expire; tests that need
deterministic expiry inject a fake clock instead.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.cache.eviction import EvictionPolicy, LRUPolicy
from repro.common.errors import CacheMiss

__all__ = ["CacheEntry", "LRUCache"]


@dataclass
class CacheEntry:
    """One cached object."""

    key: Hashable
    value: Any
    size: int
    expires_at: Optional[float] = None
    hash_key: Optional[int] = None
    """Position on the hash ring, for misplaced-entry migration."""

    freq: int = 0
    """Accesses since insertion (maintained by frequency-aware policies)."""

    cost: float = 0.0
    """Recompute cost the GDSF score weighs by (defaults to ``size``)."""

    priority: float = 0.0
    """The eviction policy's current score for this entry."""

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class LRUCache:
    """Size-bounded cache whose entries sum to at most ``capacity`` bytes.

    Named for its default policy; pass an
    :class:`~repro.cache.eviction.EvictionPolicy` to rank victims
    differently (the entry table still tracks recency order either way).
    """

    def __init__(
        self,
        capacity: int,
        clock: Optional[Callable[[], float]] = None,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = int(capacity)
        self._clock = clock or time.monotonic
        self.policy = policy or LRUPolicy()
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    @property
    def used(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence check that honors TTL but does not count as an access."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        if entry.expired(self._clock()):
            self._drop(key, expired=True)
            return False
        return True

    def get(self, key: Hashable) -> Any:
        """Strict lookup: returns the value or raises :class:`CacheMiss`."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            raise CacheMiss(f"{key!r} not cached")
        if entry.expired(self._clock()):
            self._drop(key, expired=True)
            self.misses += 1
            raise CacheMiss(f"{key!r} expired")
        self._entries.move_to_end(key)
        self.policy.on_access(entry)
        self.hits += 1
        return entry.value

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """Tolerant lookup: ``(hit, value_or_None)``."""
        try:
            return True, self.get(key)
        except CacheMiss:
            return False, None

    def put(
        self,
        key: Hashable,
        value: Any,
        size: int,
        ttl: Optional[float] = None,
        hash_key: Optional[int] = None,
        cost: Optional[float] = None,
    ) -> bool:
        """Insert/replace an entry; returns False when it cannot fit at all.

        ``cost`` feeds cost-aware policies (what re-creating this object
        is worth); it defaults to the entry's byte size.
        """
        if size < 0:
            raise ValueError("entry size must be non-negative")
        if size > self.capacity:
            self._entries.pop(key, None)
            self._recount()
            return False
        if key in self._entries:
            self._used -= self._entries.pop(key).size
        while self._used + size > self.capacity and self._entries:
            self._evict_one()
        expires_at = self._clock() + ttl if ttl is not None else None
        entry = CacheEntry(key, value, size, expires_at, hash_key,
                           cost=float(cost) if cost is not None else float(size))
        self.policy.on_insert(entry)
        self._entries[key] = entry
        self._used += size
        return True

    def pop(self, key: Hashable) -> Optional[CacheEntry]:
        """Remove and return an entry (None when absent)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry.size
        return entry

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate live entries, LRU first (do not mutate while iterating)."""
        now = self._clock()
        for entry in list(self._entries.values()):
            if not entry.expired(now):
                yield entry

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many went."""
        now = self._clock()
        stale = [k for k, e in self._entries.items() if e.expired(now)]
        for key in stale:
            self._drop(key, expired=True)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _evict_one(self) -> None:
        victim = self.policy.select_victim(self._entries)
        entry = self._entries.pop(victim)
        self._used -= entry.size
        self.policy.on_evict(entry)
        self.evictions += 1

    def _drop(self, key: Hashable, *, expired: bool) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry.size
            if expired:
                self.expirations += 1

    def _recount(self) -> None:
        self._used = sum(e.size for e in self._entries.values())
