"""The EclipseMR cluster runtime (functional plane).

Wires together the DHT file system, the distributed in-memory cache, a
scheduler, and per-worker intermediate stores, then executes MapReduce
jobs the way Fig. 2 describes:

1. hash the input file name to find the metadata owner and the block keys;
2. assign each map task by the hash key of its block (LAF or delay);
3. the map task reuses iCache, else reads the block from the DHT file
   system (remote if needed) and caches it;
4. intermediate pairs are proactively pushed to the reduce-side server
   owning their hash key, in spill-buffer chunks, optionally persisted to
   the DHT file system and tagged in oCache;
5. reduce tasks run exactly where their data already sits.

Tasks execute sequentially and deterministically -- this plane verifies
*what* the system computes and *where* data moves; the discrete-event
plane measures how long it takes.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import Any, Hashable, Optional, Sequence

from repro.cache.distributed import DistributedCache
from repro.common.config import ClusterConfig
from repro.common.errors import FileSystemError, SchedulingError
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dfs.filesystem import DHTFileSystem
from repro.dfs.metadata import BlockDescriptor
from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.mapreduce.shuffle import IntermediateStore, SpillBuffer, combine_pairs
from repro.scheduler.base import Scheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.laf import LAFScheduler

__all__ = ["Worker", "FailureInjector", "EclipseMRRuntime"]


class Worker:
    """One worker server's execution-side state."""

    def __init__(self, worker_id: Hashable) -> None:
        self.worker_id = worker_id
        self.intermediates = IntermediateStore(worker_id)
        self.map_tasks_run = 0
        self.reduce_tasks_run = 0


class FailureInjector:
    """Deterministic task-failure injection for fault-tolerance tests.

    ``plan`` maps ``(app_id, block_index)`` to how many attempts of that
    map task should fail before one succeeds.
    """

    def __init__(self, plan: Optional[dict[tuple[str, int], int]] = None) -> None:
        self.plan = dict(plan or {})
        self._failed: dict[tuple[str, int], int] = defaultdict(int)
        self.injected = 0

    def should_fail(self, app_id: str, block_index: int) -> bool:
        key = (app_id, block_index)
        if self._failed[key] < self.plan.get(key, 0):
            self._failed[key] += 1
            self.injected += 1
            return True
        return False


class EclipseMRRuntime:
    """An in-process EclipseMR cluster."""

    MAX_TASK_ATTEMPTS = 4

    def __init__(
        self,
        worker_ids: Sequence[Hashable] | int,
        config: ClusterConfig | None = None,
        scheduler: str | Scheduler = "laf",
        space: HashSpace = DEFAULT_SPACE,
        failure_injector: Optional[FailureInjector] = None,
    ) -> None:
        if isinstance(worker_ids, int):
            worker_ids = [f"worker-{i}" for i in range(worker_ids)]
        self.worker_ids = list(worker_ids)
        if not self.worker_ids:
            raise SchedulingError("runtime needs at least one worker")
        self.config = config or ClusterConfig()
        self.space = space
        self.dfs = DHTFileSystem(self.worker_ids, self.config.dfs, space)
        self.dcache = DistributedCache(self.worker_ids, self.config.cache, space)
        self.workers = {wid: Worker(wid) for wid in self.worker_ids}
        self.failure_injector = failure_injector or FailureInjector()
        if isinstance(scheduler, Scheduler):
            self.scheduler = scheduler
        elif scheduler == "laf":
            # Ring-aligned initial ranges (and a ring-seeded moving average):
            # the paper's starting state, keeping first reads node-local.
            self.scheduler = LAFScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.dfs.ring
            )
        elif scheduler == "delay":
            self.scheduler = DelayScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.dfs.ring
            )
        else:
            raise SchedulingError(f"unknown scheduler {scheduler!r}")

    # -- membership --------------------------------------------------------------

    def fail_worker(self, worker_id: Hashable):
        """Crash a worker between jobs: its disk, caches and queues are gone.

        The DHT file system recovers from neighbor replicas (paper §II-A),
        the schedulers re-cut their hash key tables over the survivors, and
        subsequent jobs run normally.  Returns the DFS recovery report.
        """
        from repro.dfs.fault import recover_from_failure

        if worker_id not in self.workers:
            raise SchedulingError(f"unknown worker {worker_id!r}")
        if len(self.worker_ids) == 1:
            raise SchedulingError("cannot fail the last worker")
        report = recover_from_failure(self.dfs, worker_id)
        self.worker_ids.remove(worker_id)
        del self.workers[worker_id]
        self.dcache.remove_server(worker_id)
        self.scheduler.remove_server(worker_id)
        return report

    def join_worker(self, worker_id: Hashable | None = None):
        """Admit a new worker between jobs (elastic join).

        The joiner takes over its hash arc in the DHT file system, block
        placement is rebalanced onto it, and the schedulers re-cut their
        tables over the enlarged set.  On a cluster that has not yet run a
        job, the post-join state is bit-equal to a fresh cluster of the
        resulting size.  Returns the joiner's worker id.
        """
        from repro.dfs.fault import rebalance

        if worker_id is None:
            n = 0
            while f"worker-{n}" in self.workers:
                n += 1
            worker_id = f"worker-{n}"
        if worker_id in self.workers:
            raise SchedulingError(f"worker {worker_id!r} already present")
        self.dfs.add_server(worker_id)
        rebalance(self.dfs)
        self.worker_ids.append(worker_id)
        self.workers[worker_id] = Worker(worker_id)
        self.dcache.add_server(worker_id)
        self.scheduler.add_server(worker_id, ring=self.dfs.ring)
        return worker_id

    def drain_worker(self, worker_id: Hashable):
        """Gracefully retire a worker between jobs (elastic drain).

        The inverse of :meth:`join_worker`: the drainee's arc merges into
        its ring successor, its blocks are restored from the surviving
        replicas, and the schedulers re-cut over the shrunken set.  Unlike
        :meth:`fail_worker`, nothing is lost -- every block still has live
        replicas when the drainee leaves.  Returns the DFS repair report.
        """
        from repro.dfs.fault import recover_from_failure

        if worker_id not in self.workers:
            raise SchedulingError(f"unknown worker {worker_id!r}")
        if len(self.worker_ids) == 1:
            raise SchedulingError("cannot drain the last worker")
        report = recover_from_failure(self.dfs, worker_id)
        self.worker_ids.remove(worker_id)
        del self.workers[worker_id]
        self.dcache.remove_server(worker_id)
        self.scheduler.drain_server(worker_id, ring=self.dfs.ring)
        return report

    # -- data -----------------------------------------------------------------

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        """Put an input file into the DHT file system."""
        self.dfs.upload(name, data, **kwargs)

    # -- job execution -----------------------------------------------------------

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute one MapReduce job and return its outputs and statistics."""
        stats = JobStats(tasks_per_server={wid: 0 for wid in self.worker_ids})
        cache_before = self.dcache.stats()
        meta = self.dfs.stat(job.input_file, user=job.user)

        for desc in meta.blocks:
            self._run_map_task(job, desc, stats)

        output = self._run_reduce_phase(job, stats)

        cache_after = self.dcache.stats()
        stats.icache_hits = cache_after.icache_hits - cache_before.icache_hits
        stats.icache_misses = cache_after.icache_misses - cache_before.icache_misses
        stats.ocache_hits = cache_after.ocache_hits - cache_before.ocache_hits
        stats.ocache_misses = cache_after.ocache_misses - cache_before.ocache_misses
        # The job is done; its in-flight intermediate pairs are consumed.
        for worker in self.workers.values():
            worker.intermediates.discard_job(job.app_id)
        return JobResult(app_id=job.app_id, output=output, stats=stats)

    # -- map phase ------------------------------------------------------------------

    def _run_map_task(self, job: MapReduceJob, desc: BlockDescriptor, stats: JobStats) -> None:
        assignment = self.scheduler.assign(hash_key=desc.key)
        self._sync_cache_ranges()
        server = assignment.server
        worker = self.workers[server]
        stats.tasks_per_server[server] += 1
        self.scheduler.notify_start(server)
        try:
            if job.reuse_intermediates and self._replay_intermediates(job, desc, stats):
                stats.maps_skipped_by_reuse += 1
                return
            for attempt in range(self.MAX_TASK_ATTEMPTS):
                try:
                    self._execute_map(job, desc, server, stats)
                    break
                except _InjectedTaskFailure:
                    stats.task_retries += 1
            else:
                raise SchedulingError(
                    f"map task {desc.index} of {job.app_id!r} failed "
                    f"{self.MAX_TASK_ATTEMPTS} times"
                )
            worker.map_tasks_run += 1
            stats.map_tasks += 1
        finally:
            self.scheduler.notify_finish(server)

    def _execute_map(self, job: MapReduceJob, desc: BlockDescriptor, server: Hashable, stats: JobStats) -> None:
        data = self._read_block_with_cache(job, desc, server, stats)
        spill = SpillBuffer(
            space=self.space,
            route=self.dfs.ring.owner_of,
            deliver=lambda dest, sid, pairs, nbytes: self._deliver_spill(
                job, dest, sid, pairs, nbytes, stats
            ),
            threshold_bytes=job.spill_buffer_bytes,
            task_id=f"{job.app_id}/map{desc.index}",
            combiner=job.combiner if job.cross_spill_combine else None,
        )
        fail_pending = self.failure_injector.should_fail(job.app_id, desc.index)
        produced = 0
        for key, value in job.map_fn(data):
            spill.emit(key, value)
            produced += 1
            # Fail mid-stream: some spills may already be pushed; the retry
            # must overwrite them, not duplicate them.
            if fail_pending and produced >= 1:
                raise _InjectedTaskFailure()
        if fail_pending:
            raise _InjectedTaskFailure()
        spill.flush()
        stats.spills += spill.spills
        stats.spill_recombines += spill.recombines
        if job.cache_intermediates:
            self._write_completion_marker(job, desc, spill)

    def _read_block_with_cache(
        self, job: MapReduceJob, desc: BlockDescriptor, server: Hashable, stats: JobStats
    ) -> bytes:
        from repro.dfs.blocks import BlockId

        bid = BlockId(job.input_file, desc.index)
        cache = self.dcache.worker(server)
        hit, data = cache.get_input(bid)
        if hit:
            return data
        block = self.dfs.read_block(job.input_file, desc.index, user=job.user)
        if block.data is None:
            raise FileSystemError(
                f"{job.input_file!r} is size-only; the functional engine needs payloads"
            )
        holders = [
            sid for sid, srv in self.dfs.servers.items() if srv.blocks.has(bid)
        ]
        if server in holders:
            stats.local_block_reads += 1
        else:
            stats.remote_block_reads += 1
        cache.put_input(bid, block.data, size=block.size, hash_key=desc.key)
        return block.data

    # -- shuffle ------------------------------------------------------------------

    def _deliver_spill(
        self,
        job: MapReduceJob,
        dest: Hashable,
        spill_id: str,
        pairs: list[tuple[Any, Any]],
        nbytes: int,
        stats: JobStats,
    ) -> bool:
        pairs = combine_pairs(job.combiner, pairs)
        if not pairs:
            # The combiner dropped every pair: deliver nothing, cache
            # nothing, persist nothing (a keyless DFS object at key 0
            # would otherwise shadow a real spill's slot).
            return False
        self.workers[dest].intermediates.receive(job.app_id, spill_id, pairs, nbytes)
        stats.bytes_shuffled += nbytes
        if job.cache_intermediates:
            payload = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
            hash_key = self.space.key_of(repr(pairs[0][0]))
            self.dcache.worker(dest).put_output(
                job.app_id, spill_id, pairs, size=len(payload),
                ttl=job.intermediate_ttl, hash_key=hash_key,
            )
            obj_name = self._spill_object_name(job, spill_id)
            if not self.dfs.exists(obj_name):
                self.dfs.put_object(obj_name, payload, hash_key, owner=job.user)
        return True

    @staticmethod
    def _spill_object_name(job: MapReduceJob, spill_id: str) -> str:
        return f"_imr/{spill_id}"

    @staticmethod
    def _marker_name(job: MapReduceJob, block_index: int) -> str:
        return f"_imr-done/{job.app_id}/{job.intermediate_tag(block_index)}"

    def _write_completion_marker(self, job: MapReduceJob, desc: BlockDescriptor, spill: SpillBuffer) -> None:
        """Record which spills a finished map task produced, so a later job
        (or a restarted one) can reuse them without re-running the map."""
        manifest = spill.manifest()
        name = self._marker_name(job, desc.index)
        if self.dfs.exists(name):
            self.dfs.delete(name, user=job.user)
        self.dfs.put_object(
            name,
            pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL),
            self.space.key_of(name),
            owner=job.user,
        )

    def _replay_intermediates(self, job: MapReduceJob, desc: BlockDescriptor, stats: JobStats) -> bool:
        """Reuse a previous run's intermediates for this map task if present.

        Looks for the completion marker; for each recorded spill, takes the
        pairs from the destination's oCache (hit) or re-reads them from the
        DHT file system (miss), then feeds the reduce side as if the map had
        run.  Gathering is validate-then-apply: if any destination is gone
        or any spill object is unreadable, *nothing* is delivered and the
        map runs normally -- replay degrades to re-execution, never to a
        partial shuffle.  Returns True when the map computation was skipped.
        """
        name = self._marker_name(job, desc.index)
        if not self.dfs.exists(name):
            return False
        manifest = pickle.loads(self.dfs.get_object(name, user=job.user))
        staged: list[tuple[Hashable, str, list, int]] = []
        for dest, spill_id, nbytes in manifest:
            if dest not in self.workers:
                return False  # destination died since the marker was cut
            cache = self.dcache.worker(dest)
            hit, pairs = cache.get_output(job.app_id, spill_id)
            if not hit:
                obj_name = self._spill_object_name(job, spill_id)
                if not self.dfs.exists(obj_name):
                    return False  # persisted copy lost: re-run the map
                payload = self.dfs.get_object(obj_name, user=job.user)
                pairs = pickle.loads(payload)
                cache.put_output(job.app_id, spill_id, pairs, size=len(payload), ttl=job.intermediate_ttl)
            staged.append((dest, spill_id, pairs, nbytes))
        for dest, spill_id, pairs, nbytes in staged:
            # The marker's recorded nbytes, not a re-pickle: replayed
            # byte accounting matches the original push exactly.
            self.workers[dest].intermediates.receive(job.app_id, spill_id, pairs, nbytes)
            stats.spills += 1
            stats.bytes_shuffled += nbytes
        return True

    # -- reduce phase ------------------------------------------------------------------

    def _run_reduce_phase(self, job: MapReduceJob, stats: JobStats) -> dict[Any, Any]:
        """One reduce task per worker holding intermediates, run in place."""
        output: dict[Any, Any] = {}
        for wid in self.worker_ids:
            worker = self.workers[wid]
            pairs = worker.intermediates.pairs_for(job.app_id)
            if not pairs:
                continue
            self.scheduler.notify_start(wid)
            try:
                grouped: dict[Any, list[Any]] = defaultdict(list)
                for k, v in pairs:
                    grouped[k].append(v)
                for k, values in grouped.items():
                    if k in output:
                        raise SchedulingError(
                            f"intermediate key {k!r} reduced on two servers"
                        )
                    output[k] = job.reduce_fn(k, values)
                worker.reduce_tasks_run += 1
                stats.reduce_tasks += 1
                stats.tasks_per_server[wid] += 1
            finally:
                self.scheduler.notify_finish(wid)
        return output

    # -- plumbing -----------------------------------------------------------------------

    def _sync_cache_ranges(self) -> None:
        """Keep the distributed cache's ranges aligned with the scheduler's."""
        if isinstance(self.scheduler, LAFScheduler):
            if self.dcache.partition is not self.scheduler.partition:
                self.dcache.set_partition(self.scheduler.partition)

    def cache_hit_ratio(self) -> float:
        return self.dcache.stats().hit_ratio


class _InjectedTaskFailure(Exception):
    """Raised inside a map task by the failure injector."""
