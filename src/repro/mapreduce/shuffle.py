"""Proactive shuffle (paper §II-D).

Hadoop buffers map output on the mapper's local disk and ships it to
reducers in a separate shuffle phase.  EclipseMR instead decides the
reduce-side *location* of every intermediate pair up front -- the server
whose DHT range covers the hash key of the intermediate key -- and pushes
pairs there *while the map task is still producing them*: each mapper
keeps one memory buffer per destination range and spills a buffer to the
DHT file system whenever it crosses the application-set threshold (32 MB
in the paper's runs).

Because placement is determined by consistent hashing, reducers are then
scheduled exactly where their data already sits and the shuffle phase
disappears into the map phase.
"""

from __future__ import annotations

import pickle
from collections import defaultdict
from typing import Any, Callable, Hashable, Iterable

from repro.common.hashing import HashSpace

__all__ = ["combine_pairs", "SpillBuffer", "IntermediateStore"]


def combine_pairs(combiner, pairs: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
    """Apply a job's combiner to one spill's pairs (in-node combining).

    Grouping happens per spill, on the node that produced the pairs --
    before they are delivered, cached, or put on the wire -- so every
    execution plane combines identically.  ``combiner(key, values)``
    returns the (possibly empty) list of combined values for that key.
    With no combiner the pairs pass through untouched.
    """
    if combiner is None:
        return pairs
    grouped: dict[Any, list[Any]] = defaultdict(list)
    for k, v in pairs:
        grouped[k].append(v)
    return [(k, v) for k, vs in grouped.items() for v in combiner(k, vs)]


class IntermediateStore:
    """Reduce-side storage of pushed intermediate pairs, per job.

    Lives on each worker; what lands here is what that worker's reduce
    task will consume.  Each spill is stored under its deterministic
    spill id together with the **attempt number** of the map execution
    that pushed it, which is what makes duplicate results hygienic:

    * re-delivery of the same spill id at the *same or a higher* attempt
      (a retried, re-executed, or speculated map) overwrites rather than
      duplicates, and ``bytes_received`` is adjusted so the replaced
      spill no longer counts;
    * a delivery at a *lower* attempt than the stored one is **stale** --
      the push of a map the scheduler already gave up on, arriving after
      its replacement -- and is rejected (``stale_rejected`` counts it),
      closing the hole where a timed-out-then-retried map whose first
      execution eventually completed delivered its spills twice;
    * ``discard_spills(..., attempt=n)`` drops only spills still stored
      at exactly attempt ``n``, so retracting a speculative loser can
      never remove data the winning attempt delivered.
    """

    def __init__(self, server_id: Hashable) -> None:
        self.server_id = server_id
        # job_id -> spill_id -> (attempt, nbytes, pairs)
        self._pairs: dict[str, dict[str, tuple[int, int, list[tuple[Any, Any]]]]] = (
            defaultdict(dict)
        )
        self.bytes_received = 0
        self.stale_rejected = 0

    def receive(self, job_id: str, spill_id: str, pairs: list[tuple[Any, Any]],
                nbytes: int, attempt: int = 0) -> bool:
        """Accept one spill; returns False when it is stale (superseded
        by a higher-attempt delivery of the same spill id)."""
        spills = self._pairs[job_id]
        old = spills.get(spill_id)
        if old is not None:
            if attempt < old[0]:
                self.stale_rejected += 1
                return False
            self.bytes_received -= old[1]
        spills[spill_id] = (attempt, nbytes, pairs)
        self.bytes_received += nbytes
        return True

    def spills_for(self, job_id: str) -> dict[str, list[tuple[Any, Any]]]:
        """A job's spills keyed by spill id (callers choose their order)."""
        return {sid: entry[2]
                for sid, entry in self._pairs.get(job_id, {}).items()}

    def job_ids(self) -> list[str]:
        """Every job id with spills in the store (cluster workers key
        these by job *uid* so concurrent submissions stay apart)."""
        return list(self._pairs)

    def pairs_for(self, job_id: str) -> list[tuple[Any, Any]]:
        """All pairs pushed for a job, grouped later by the reduce task."""
        out: list[tuple[Any, Any]] = []
        for _, _, spill in self._pairs.get(job_id, {}).values():
            out.extend(spill)
        return out

    def discard_job(self, job_id: str) -> None:
        self._pairs.pop(job_id, None)

    def discard_spills(self, job_id: str, spill_ids: Iterable[str],
                       attempt: int | None = None) -> int:
        """Drop specific spills of a job (a partially replayed map task
        falling back to re-execution, or a speculative loser's retraction);
        returns how many were dropped.  With ``attempt`` given, only
        spills still stored at exactly that attempt are dropped -- a
        winner's overwrite is never retracted away."""
        spills = self._pairs.get(job_id)
        if not spills:
            return 0
        dropped = 0
        for sid in spill_ids:
            entry = spills.get(sid)
            if entry is None:
                continue
            if attempt is not None and entry[0] != attempt:
                continue
            del spills[sid]
            self.bytes_received -= entry[1]
            dropped += 1
        return dropped

    def spill_count(self, job_id: str) -> int:
        return len(self._pairs.get(job_id, {}))


class SpillBuffer:
    """A mapper's per-destination buffers with threshold-triggered pushes.

    ``deliver(dest_server, spill_id, pairs, nbytes)`` is called for every
    spill; the runtime wires it to the destination's
    :class:`IntermediateStore`, its oCache, and the DHT file system.  A
    deliverer may return ``False`` to declare the spill *skipped* (its
    combiner dropped every pair): a skipped spill counts toward nothing
    -- not ``spills``, not ``bytes_pushed``, not the manifest -- so no
    plane ever ships, caches, or persists an empty payload.

    With a ``combiner``, the buffer also combines *across spill
    boundaries* (Lee et al.'s in-node combiners, extended): when a
    destination's buffer hits the threshold it is first re-combined in
    place; only if the combined pairs still fill the threshold does the
    spill ship.  A wordcount-style combiner collapses duplicate keys as
    they accumulate, so far fewer (and denser) spills hit the wire --
    ``bytes_pushed`` shrinks at the source.  Combining is deterministic
    (insertion-ordered grouping), so every plane produces the identical
    spill sequence and byte accounting.
    """

    def __init__(
        self,
        space: HashSpace,
        route: Callable[[int], Hashable],
        deliver: Callable[[Hashable, str, list[tuple[Any, Any]], int], None],
        threshold_bytes: int,
        task_id: str,
        combiner=None,
    ) -> None:
        """``route`` maps an intermediate hash key to its reduce-side server
        (the DHT file system owner in EclipseMR)."""
        if threshold_bytes <= 0:
            raise ValueError("spill threshold must be positive")
        self.space = space
        self.route = route
        self.deliver = deliver
        self.threshold = threshold_bytes
        self.task_id = task_id
        self.combiner = combiner
        self._buffers: dict[Hashable, list[tuple[Any, Any]]] = defaultdict(list)
        self._sizes: dict[Hashable, int] = defaultdict(int)
        self._spill_seq: dict[Hashable, int] = defaultdict(int)
        self._manifest: list[tuple[Hashable, str, int]] = []
        self.spills = 0
        self.spills_skipped = 0
        self.recombines = 0
        self.bytes_pushed = 0

    @staticmethod
    def pair_size(key: Any, value: Any) -> int:
        """Serialized size of one pair -- what fills a 32 MB payload buffer."""
        return len(pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL))

    def key_of(self, key: Any) -> int:
        """Hash key of an intermediate key (its place on the ring)."""
        return self.space.key_of(repr(key))

    def emit(self, key: Any, value: Any) -> None:
        """Buffer one pair; spill its destination buffer when full.

        With a combiner, a full buffer is re-combined first and only
        spills if it *stays* full -- otherwise the (now smaller) combined
        buffer keeps accumulating, amortizing the combine across many
        emits.
        """
        dest = self.route(self.key_of(key))
        self._buffers[dest].append((key, value))
        self._sizes[dest] += self.pair_size(key, value)
        if self._sizes[dest] >= self.threshold:
            if self.combiner is not None and self._recombine(dest):
                return
            self._spill(dest)

    def _recombine(self, dest: Hashable) -> bool:
        """Combine a destination's buffer in place; True if the combined
        buffer dropped back under the threshold (no spill needed yet)."""
        combined = combine_pairs(self.combiner, self._buffers[dest])
        self._buffers[dest] = combined
        self._sizes[dest] = sum(self.pair_size(k, v) for k, v in combined)
        self.recombines += 1
        return self._sizes[dest] < self.threshold
    def _spill(self, dest: Hashable) -> None:
        pairs = self._buffers.pop(dest, [])
        nbytes = self._sizes.pop(dest, 0)
        if not pairs:
            return
        seq = self._spill_seq[dest]
        self._spill_seq[dest] = seq + 1
        spill_id = f"{self.task_id}/{dest}/{seq}"
        if self.deliver(dest, spill_id, pairs, nbytes) is False:
            self.spills_skipped += 1
            return
        self._manifest.append((dest, spill_id, nbytes))
        self.spills += 1
        self.bytes_pushed += nbytes

    def flush(self) -> None:
        """Push every remaining buffer (map task finished)."""
        for dest in list(self._buffers):
            self._spill(dest)

    @property
    def buffered_bytes(self) -> int:
        return sum(self._sizes.values())

    def manifest(self) -> list[tuple[Hashable, str, int]]:
        """Every ``(destination, spill_id, nbytes)`` this buffer delivered.

        Valid after :meth:`flush`; persisted as the map task's completion
        marker so later jobs can replay the spills without re-mapping.
        Skipped (empty post-combiner) spills never appear, and the
        recorded ``nbytes`` is exactly what each delivery reported, so a
        replay reproduces the original run's byte accounting.
        """
        return list(self._manifest)
