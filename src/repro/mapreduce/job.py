"""Job and result descriptions for the functional engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional

__all__ = ["MapReduceJob", "JobStats", "JobResult"]

MapFn = Callable[[bytes], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, list[Any]], Any]
CombineFn = Callable[[Any, list[Any]], list[Any]]


@dataclass
class MapReduceJob:
    """A single MapReduce job.

    ``map_fn`` receives one input block's payload and yields ``(key,
    value)`` pairs; ``reduce_fn`` receives one intermediate key with all its
    values and returns the reduced value.  The ``reuse_*`` switches are
    EclipseMR's oCache controls: applications "choose to tag and store
    intermediate results from map tasks or job outputs for future reuse"
    (paper §I).
    """

    app_id: str
    input_file: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    combiner: Optional[CombineFn] = None
    user: str = "user"

    cache_intermediates: bool = False
    """Tag this job's intermediate results in oCache for future jobs."""

    reuse_intermediates: bool = False
    """Skip map tasks whose tagged intermediates are already cached/stored."""

    intermediate_ttl: Optional[float] = None
    """TTL for the persisted intermediates (paper: app-set, default none)."""

    spill_buffer_bytes: int = 32 * 1024 * 1024
    """Per-range spill threshold; the paper uses 32 MB payload buffers."""

    cross_spill_combine: bool = False
    """Run the combiner *inside* the spill buffer, across spill
    boundaries: a full buffer is re-combined in place and only ships if
    it stays full, so duplicate keys collapse before a single byte
    leaves the mapper (requires ``combiner``; a no-op without one).
    Off by default -- the spill sequence and ``bytes_shuffled`` change
    (shrink) when enabled, identically on every plane."""

    def __post_init__(self) -> None:
        if not self.app_id:
            raise ValueError("app_id must be non-empty")
        if self.spill_buffer_bytes <= 0:
            raise ValueError("spill buffer must be positive")

    def intermediate_tag(self, block_index: int) -> str:
        """The oCache tag for one map task's output."""
        return f"{self.input_file}#map{block_index}"


@dataclass
class JobStats:
    """What happened while a job ran (the functional plane's metrics)."""

    map_tasks: int = 0
    reduce_tasks: int = 0
    maps_skipped_by_reuse: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    ocache_hits: int = 0
    ocache_misses: int = 0
    local_block_reads: int = 0
    remote_block_reads: int = 0
    bytes_shuffled: int = 0
    spills: int = 0
    spill_recombines: int = 0
    task_retries: int = 0
    tasks_per_server: dict[Hashable, int] = field(default_factory=dict)

    @property
    def cache_hit_ratio(self) -> float:
        hits = self.icache_hits + self.ocache_hits
        total = hits + self.icache_misses + self.ocache_misses
        return hits / total if total else 0.0


@dataclass
class JobResult:
    """Reduce outputs plus run statistics."""

    app_id: str
    output: dict[Any, Any]
    stats: JobStats

    def sorted_items(self) -> list[tuple[Any, Any]]:
        return sorted(self.output.items(), key=lambda kv: str(kv[0]))
