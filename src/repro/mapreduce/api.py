"""The user-facing EclipseMR facade.

A thin convenience layer over :class:`~repro.mapreduce.runtime.EclipseMRRuntime`
for the common flows::

    mr = EclipseMR(workers=8, scheduler="laf")
    mr.upload("corpus.txt", text.encode())
    result = mr.map_reduce(
        "wordcount", "corpus.txt",
        map_fn=lambda block: ((w, 1) for w in block.decode().split()),
        reduce_fn=lambda word, counts: sum(counts),
    )
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.mapreduce.iterative import IterativeDriver
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime, FailureInjector
from repro.scheduler.base import Scheduler

__all__ = ["EclipseMR"]


class EclipseMR:
    """An in-process EclipseMR cluster with a compact API."""

    def __init__(
        self,
        workers: int | Sequence[Hashable] = 8,
        scheduler: str | Scheduler = "laf",
        config: ClusterConfig | None = None,
        space: HashSpace = DEFAULT_SPACE,
        failure_injector: Optional[FailureInjector] = None,
    ) -> None:
        self.runtime = EclipseMRRuntime(
            workers, config=config, scheduler=scheduler, space=space,
            failure_injector=failure_injector,
        )

    # -- data ---------------------------------------------------------------

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        self.runtime.upload(name, data, **kwargs)

    def read(self, name: str) -> bytes:
        return self.runtime.dfs.read(name)

    def list_files(self) -> list[str]:
        return self.runtime.dfs.list_files()

    # -- jobs ---------------------------------------------------------------

    def map_reduce(
        self,
        app_id: str,
        input_file: str,
        map_fn: Callable[[bytes], Iterable[tuple[Any, Any]]],
        reduce_fn: Callable[[Any, list[Any]], Any],
        **job_kwargs: Any,
    ) -> JobResult:
        """Build and run a job in one call."""
        job = MapReduceJob(
            app_id=app_id,
            input_file=input_file,
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            **job_kwargs,
        )
        return self.runtime.run(job)

    def run(self, job: MapReduceJob) -> JobResult:
        return self.runtime.run(job)

    def iterative(
        self,
        app_id: str,
        make_job: Callable[[int, Any], MapReduceJob],
        extract_state: Callable[[JobResult, Any], Any],
        max_iterations: int,
        **driver_kwargs: Any,
    ) -> IterativeDriver:
        """Create an iterative driver bound to this cluster."""
        return IterativeDriver(
            runtime=self.runtime,
            app_id=app_id,
            make_job=make_job,
            extract_state=extract_state,
            max_iterations=max_iterations,
            **driver_kwargs,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.runtime.scheduler

    def cache_stats(self):
        return self.runtime.dcache.stats()

    def cache_hit_ratio(self) -> float:
        return self.runtime.cache_hit_ratio()

    def clear_caches(self) -> None:
        """Drop the distributed in-memory caches (between experiments)."""
        self.runtime.dcache.clear()
