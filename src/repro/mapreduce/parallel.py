"""Parallel execution for the functional engine.

:class:`ParallelEclipseMRRuntime` runs the user's map and reduce
*functions* on a thread pool while keeping every shared structure --
scheduler, caches, DHT file system, intermediate stores -- on the driving
thread.  The split mirrors the real system's separation between worker
compute and coordinator state, avoids locks entirely, and still yields
real speedups for NumPy-heavy applications (k-means, logistic
regression) whose kernels release the GIL.

Execution stays *semantically identical* to the sequential runtime: the
scheduler sees the same assignment sequence, spills carry the same ids,
and results are bit-equal (MapReduce outputs are order-independent by
construction).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Hashable

from repro.common.errors import SchedulingError
from repro.dfs.metadata import BlockDescriptor
from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime
from repro.mapreduce.shuffle import SpillBuffer

__all__ = ["ParallelEclipseMRRuntime"]


class ParallelEclipseMRRuntime(EclipseMRRuntime):
    """EclipseMR runtime with thread-pool map/reduce compute."""

    def __init__(self, *args: Any, max_workers: int = 4, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if max_workers < 1:
            raise SchedulingError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, job: MapReduceJob) -> JobResult:
        stats = JobStats(tasks_per_server={wid: 0 for wid in self.worker_ids})
        cache_before = self.dcache.stats()
        meta = self.dfs.stat(job.input_file, user=job.user)

        # Phase 1 (driver): schedule + read every block through the caches.
        # The scheduler and LRU mutations stay single-threaded.
        staged: list[tuple[BlockDescriptor, Hashable, bytes | None]] = []
        for desc in meta.blocks:
            assignment = self.scheduler.assign(hash_key=desc.key)
            self._sync_cache_ranges()
            server = assignment.server
            stats.tasks_per_server[server] += 1
            if job.reuse_intermediates and self._replay_intermediates(job, desc, stats):
                stats.maps_skipped_by_reuse += 1
                continue
            data = self._read_block_with_cache(job, desc, server, stats)
            staged.append((desc, server, data))

        # Phase 2 (pool): run the map function -- pure compute.
        def compute(desc: BlockDescriptor, data: bytes) -> list[tuple[Any, Any]]:
            return list(job.map_fn(data))

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                (desc, server, pool.submit(compute, desc, data))
                for desc, server, data in staged
            ]
            # Phase 3 (driver): retries, spills, markers -- shared state.
            for desc, server, future in futures:
                pairs = future.result()
                attempts = 0
                while self.failure_injector.should_fail(job.app_id, desc.index):
                    stats.task_retries += 1
                    attempts += 1
                    if attempts >= self.MAX_TASK_ATTEMPTS:
                        raise SchedulingError(
                            f"map task {desc.index} of {job.app_id!r} failed "
                            f"{self.MAX_TASK_ATTEMPTS} times"
                        )
                    pairs = compute(desc, self._read_block_with_cache(job, desc, server, stats))
                self._emit_pairs(job, desc, pairs, stats)
                self.workers[server].map_tasks_run += 1
                stats.map_tasks += 1

            # Phase 4: reduce -- grouping on the driver, reduce_fn on the pool.
            output = self._parallel_reduce(job, stats, pool)

        cache_after = self.dcache.stats()
        stats.icache_hits = cache_after.icache_hits - cache_before.icache_hits
        stats.icache_misses = cache_after.icache_misses - cache_before.icache_misses
        stats.ocache_hits = cache_after.ocache_hits - cache_before.ocache_hits
        stats.ocache_misses = cache_after.ocache_misses - cache_before.ocache_misses
        for worker in self.workers.values():
            worker.intermediates.discard_job(job.app_id)
        return JobResult(app_id=job.app_id, output=output, stats=stats)

    # -- internals ----------------------------------------------------------------

    def _emit_pairs(self, job: MapReduceJob, desc: BlockDescriptor, pairs, stats: JobStats) -> None:
        """Feed one map task's output through the normal spill machinery."""
        spill = SpillBuffer(
            space=self.space,
            route=self.dfs.ring.owner_of,
            deliver=lambda dest, sid, p, nbytes: self._deliver_spill(
                job, dest, sid, p, nbytes, stats
            ),
            threshold_bytes=job.spill_buffer_bytes,
            task_id=f"{job.app_id}/map{desc.index}",
            combiner=job.combiner if job.cross_spill_combine else None,
        )
        for key, value in pairs:
            spill.emit(key, value)
        spill.flush()
        stats.spills += spill.spills
        stats.spill_recombines += spill.recombines
        if job.cache_intermediates:
            self._write_completion_marker(job, desc, spill)

    def _parallel_reduce(self, job: MapReduceJob, stats: JobStats, pool: ThreadPoolExecutor) -> dict:
        from collections import defaultdict

        output: dict[Any, Any] = {}
        reduce_futures = []
        for wid in self.worker_ids:
            worker = self.workers[wid]
            pairs = worker.intermediates.pairs_for(job.app_id)
            if not pairs:
                continue
            grouped: dict[Any, list[Any]] = defaultdict(list)
            for k, v in pairs:
                grouped[k].append(v)

            def reduce_group(grouped=grouped):
                return {k: job.reduce_fn(k, vs) for k, vs in grouped.items()}

            reduce_futures.append((wid, pool.submit(reduce_group)))
        for wid, future in reduce_futures:
            partial = future.result()
            for k, v in partial.items():
                if k in output:
                    raise SchedulingError(f"intermediate key {k!r} reduced on two servers")
                output[k] = v
            self.workers[wid].reduce_tasks_run += 1
            stats.reduce_tasks += 1
            stats.tasks_per_server[wid] += 1
        return output
