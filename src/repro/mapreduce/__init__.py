"""The EclipseMR MapReduce engine (functional plane).

An in-process reproduction of the paper's C++ prototype: real map and
reduce functions run against the DHT file system, the distributed
in-memory caches, and a pluggable scheduler.  The engine demonstrates the
*algorithmic* behaviour end-to-end -- block placement, LAF range shifts,
iCache/oCache reuse, proactive shuffle, task retry from persisted
intermediates -- while the discrete-event plane (:mod:`repro.perfmodel`)
reproduces the timing results.

* :mod:`repro.mapreduce.job` -- job and task descriptions.
* :mod:`repro.mapreduce.shuffle` -- proactive shuffle: per-range spill
  buffers pushed to reducer-side servers while maps run.
* :mod:`repro.mapreduce.runtime` -- the cluster runtime executing jobs.
* :mod:`repro.mapreduce.iterative` -- the iterative-job driver with
  oCache-backed iteration outputs.
* :mod:`repro.mapreduce.api` -- the user-facing :class:`EclipseMR` facade.
"""

from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.mapreduce.shuffle import IntermediateStore, SpillBuffer
from repro.mapreduce.runtime import EclipseMRRuntime, FailureInjector, Worker
from repro.mapreduce.parallel import ParallelEclipseMRRuntime
from repro.mapreduce.iterative import IterativeDriver, IterationResult
from repro.mapreduce.api import EclipseMR

__all__ = [
    "MapReduceJob",
    "JobResult",
    "JobStats",
    "SpillBuffer",
    "IntermediateStore",
    "EclipseMRRuntime",
    "ParallelEclipseMRRuntime",
    "FailureInjector",
    "Worker",
    "IterativeDriver",
    "IterationResult",
    "EclipseMR",
]
