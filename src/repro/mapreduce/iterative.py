"""Iterative MapReduce jobs (paper §II-C, §III-F).

k-means, logistic regression and page rank re-run the same MapReduce
shape, each iteration consuming the previous iteration's output.
EclipseMR lets applications store those iteration outputs in oCache and --
for fault tolerance -- in the DHT file system, so iteration *i+1* reads
them from memory and a restarted job resumes from the last completed
iteration rather than from scratch.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.runtime import EclipseMRRuntime

__all__ = ["IterationResult", "IterativeDriver"]

MakeJob = Callable[[int, Any], MapReduceJob]
Extract = Callable[[JobResult, Any], Any]
Converged = Callable[[int, Any, Any], bool]


@dataclass
class IterationResult:
    """Per-iteration bookkeeping."""

    iteration: int
    state: Any
    job_result: JobResult
    resumed_from_cache: bool = False


@dataclass
class IterativeDriver:
    """Runs ``make_job(i, state)`` until convergence or ``max_iterations``.

    ``extract_state(result, prev_state)`` turns a :class:`JobResult` into
    the state the next iteration consumes (e.g. the new k-means centroids);
    it receives the previous state so sparse outputs can be merged onto it.  Each iteration's
    state is cached in oCache (tag ``iter{i}``) and persisted to the DHT
    file system; :meth:`run` transparently *resumes* past iterations whose
    persisted state already exists, which is the paper's restart-from-the-
    point-of-failure story.
    """

    runtime: EclipseMRRuntime
    app_id: str
    make_job: MakeJob
    extract_state: Extract
    max_iterations: int
    converged: Optional[Converged] = None
    persist_outputs: bool = True
    history: list[IterationResult] = field(default_factory=list)

    def _state_object_name(self, iteration: int) -> str:
        return f"_iter/{self.app_id}/{iteration}"

    def _home_of(self, iteration: int):
        key = self.runtime.space.key_of(self._state_object_name(iteration))
        return self.runtime.dcache.home_of(key)

    def _load_cached_state(self, iteration: int) -> tuple[bool, Any]:
        """oCache first, then the persistent DHT file system copy."""
        tag = f"iter{iteration}"
        home = self._home_of(iteration)
        hit, state = self.runtime.dcache.worker(home).get_output(self.app_id, tag)
        if hit:
            return True, state
        name = self._state_object_name(iteration)
        if self.persist_outputs and self.runtime.dfs.exists(name):
            return True, pickle.loads(self.runtime.dfs.get_object(name))
        return False, None

    def _store_state(self, iteration: int, state: Any) -> None:
        tag = f"iter{iteration}"
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        name = self._state_object_name(iteration)
        key = self.runtime.space.key_of(name)
        home = self.runtime.dcache.home_of(key)
        self.runtime.dcache.worker(home).put_output(
            self.app_id, tag, state, size=len(payload), hash_key=key
        )
        if self.persist_outputs and not self.runtime.dfs.exists(name):
            self.runtime.dfs.put_object(name, payload, key)

    def run(self, initial_state: Any) -> Any:
        """Iterate to completion; returns the final state."""
        state = initial_state
        for i in range(self.max_iterations):
            cached, persisted = self._load_cached_state(i)
            if cached:
                # A previous (possibly crashed) run already finished this
                # iteration; restart from its stored output.
                prev = state
                state = persisted
                self.history.append(
                    IterationResult(i, state, JobResult(self.app_id, {}, None), True)  # type: ignore[arg-type]
                )
            else:
                prev = state
                job = self.make_job(i, state)
                result = self.runtime.run(job)
                state = self.extract_state(result, prev)
                self._store_state(i, state)
                self.history.append(IterationResult(i, state, result))
            if self.converged is not None and self.converged(i, prev, state):
                break
        return state

    @property
    def iterations_run(self) -> int:
        return sum(1 for h in self.history if not h.resumed_from_cache)

    @property
    def iterations_resumed(self) -> int:
        return sum(1 for h in self.history if h.resumed_from_cache)
