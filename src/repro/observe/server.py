"""The coordinator-embedded observability HTTP server.

A stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread,
serving three routes:

* ``/metrics`` -- Prometheus text exposition: the coordinator registry
  plus the last sampled per-worker registries;
* ``/metrics.json`` -- the same data as JSON for the dashboard (and for
  tests, which prefer structure over text parsing);
* ``/`` -- the self-contained HTML dashboard.

**Isolation from the data plane.**  Reading the coordinator registry is
lock-free-ish (per-metric locks only, never a registry-wide pause), and
worker registries are *pulled on a sampled interval*: a scrape first
checks the cached sample's age and only issues ``get_stats`` RPCs when
it is older than ``observe.sample_interval`` -- an aggressive scraper
cannot amplify RPC load, and with no scraper at all the server performs
no work beyond holding an idle listening socket.  A sampling round that
fails (worker died mid-scrape, pool contention) serves the previous
sample and counts ``observe_sample_errors_total``; a scrape never
raises into the caller and never mutates the registries it reads.

The endpoint's own bookkeeping (scrape counts, sample errors) lives on
the server object, NOT in the shared registry -- enabling observation
must not change the observed metric key set.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.common.config import ObserveConfig
from repro.observe.dashboard import DASHBOARD_HTML
from repro.observe.prometheus import METRIC_PREFIX, render_exposition
from repro.sim.metrics import MetricsRegistry

__all__ = ["ObserveServer"]

_CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"


class ObserveServer:
    """Serve live cluster metrics over HTTP from a daemon thread."""

    def __init__(
        self,
        registry: MetricsRegistry,
        worker_poll: Callable[[], Mapping[str, Mapping[str, Any]]],
        config: ObserveConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.worker_poll = worker_poll
        self.config = config or ObserveConfig()
        self.clock = clock
        self._sample_lock = threading.Lock()
        self._sample: dict[str, Any] = {}
        self._sample_at: float | None = None
        self._scrapes = 0
        self._sample_errors = 0
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "ObserveServer":
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                server._route(self)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # stay off stderr; scrape counts live on the server

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"observe:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("observe server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def close(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObserveServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- sampling ------------------------------------------------------------------

    def _workers(self) -> tuple[dict[str, Any], float]:
        """The per-worker sample, refreshed at most once per interval."""
        now = self.clock()
        with self._sample_lock:
            age = None if self._sample_at is None else now - self._sample_at
            if age is not None and age < self.config.sample_interval:
                return self._sample, age
            try:
                fresh = dict(self.worker_poll())
            except Exception:
                # Serve the stale sample; the poll closure already
                # tolerates per-worker failures, so reaching this means
                # the cluster is mid-teardown or mid-failover.
                self._sample_errors += 1
                return self._sample, age if age is not None else 0.0
            self._sample = fresh
            self._sample_at = self.clock()
            return self._sample, 0.0

    def _payload(self) -> dict[str, Any]:
        workers, sample_age = self._workers()
        return {
            "coordinator": self.registry.export(),
            "workers": workers,
            "sample_age_s": sample_age,
            "scrapes": self._scrapes,
            "sample_errors": self._sample_errors,
        }

    def render_metrics(self) -> str:
        """The Prometheus text body (exposed for tests and artifacts)."""
        payload = self._payload()
        synthetic = (
            (f"{METRIC_PREFIX}_observe_scrapes_total", "counter",
             float(payload["scrapes"])),
            (f"{METRIC_PREFIX}_observe_sample_errors_total", "counter",
             float(payload["sample_errors"])),
            (f"{METRIC_PREFIX}_observe_sample_age_seconds", "gauge",
             float(payload["sample_age_s"])),
        )
        return render_exposition(
            payload["coordinator"], payload["workers"], synthetic
        )

    # -- routing -------------------------------------------------------------------

    def _route(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                with self._sample_lock:
                    self._scrapes += 1
                self._respond(handler, 200, _CONTENT_TYPE_TEXT,
                              self.render_metrics().encode())
            elif path == "/metrics.json":
                with self._sample_lock:
                    self._scrapes += 1
                body = json.dumps(self._payload()).encode()
                self._respond(handler, 200, "application/json", body)
            elif path == "/":
                self._respond(handler, 200, "text/html; charset=utf-8",
                              DASHBOARD_HTML.encode())
            else:
                self._respond(handler, 404, "text/plain; charset=utf-8",
                              b"not found\n")
        except BrokenPipeError:
            pass  # scraper went away mid-response; nothing to clean up
        except Exception as exc:
            # A scrape must never take the endpoint down: report the
            # failure to the scraper and keep serving.
            try:
                self._respond(handler, 500, "text/plain; charset=utf-8",
                              f"scrape failed: {exc}\n".encode())
            except Exception:
                pass

    @staticmethod
    def _respond(
        handler: BaseHTTPRequestHandler, status: int, ctype: str, body: bytes
    ) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)
