"""Live observability plane: Prometheus endpoint + HTML dashboard.

Enabled via ``ClusterConfig(observe=ObserveConfig(enabled=True, port=...))``
or ``eclipsemr-repro cluster --observe PORT``; off by default, in which
case nothing in this package is even imported by the runtime.
"""

from repro.observe.prometheus import (
    escape_label_value,
    render_exposition,
    sanitize_metric_name,
)
from repro.observe.server import ObserveServer

__all__ = [
    "ObserveServer",
    "escape_label_value",
    "render_exposition",
    "sanitize_metric_name",
]
