"""Prometheus text exposition (version 0.0.4) for metric exports.

Translates the structured :meth:`MetricsRegistry.export` shape -- the
coordinator's registry plus the sampled per-worker registries -- into
the plain-text format Prometheus scrapes:

* counters become ``<name>_total`` families of ``# TYPE ... counter``;
* gauges keep their name as ``# TYPE ... gauge`` families;
* histograms become summaries: ``{quantile="..."}`` sample lines plus
  exact ``_count`` and ``_sum`` series (the registry keeps count/total
  exact even past its bounded reservoir, so these two are always
  truthful; the quantiles are as good as the reservoir);
* worker-side series carry a ``worker_id`` label, coordinator series
  carry none, and one ``# TYPE`` header per family covers every labeled
  sample in it (required by the exposition format).

Everything is pure string building over plain dicts -- no sockets, no
registry access -- so it unit-tests without a cluster.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = [
    "METRIC_PREFIX",
    "escape_label_value",
    "render_exposition",
    "sanitize_metric_name",
]

METRIC_PREFIX = "eclipsemr"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

# Summary quantiles exported per histogram, mapped to registry stats.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """A dotted registry name as a legal, prefixed Prometheus name.

    ``rpc.in_flight`` -> ``eclipsemr_rpc_in_flight``.  Any character
    outside ``[a-zA-Z0-9_:]`` becomes ``_``; the fixed prefix also makes
    a leading digit impossible.
    """
    return f"{METRIC_PREFIX}_{_INVALID_CHARS.sub('_', name)}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (\\\\, \\n, \\")."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(val)}"' for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


class _FamilyTable:
    """Samples grouped into families so each gets exactly one TYPE header."""

    def __init__(self) -> None:
        self._families: dict[str, tuple[str, list[tuple[str, dict, float]]]] = {}

    def add(
        self,
        family: str,
        mtype: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        suffix: str = "",
    ) -> None:
        entry = self._families.setdefault(family, (mtype, []))
        entry[1].append((suffix, dict(labels or {}), float(value)))

    def render(self) -> str:
        lines: list[str] = []
        for family in sorted(self._families):
            mtype, samples = self._families[family]
            lines.append(f"# TYPE {family} {mtype}")
            for suffix, labels, value in samples:
                lines.append(
                    f"{family}{suffix}{_labels_text(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n" if lines else "\n"


def _counter_family(name: str) -> str:
    base = sanitize_metric_name(name)
    return base if base.endswith("_total") else base + "_total"


def _add_registry(
    table: _FamilyTable,
    export: Mapping[str, Any],
    labels: Mapping[str, str],
) -> None:
    """One registry export's counters/gauges/histograms into the table."""
    for name, value in (export.get("counters") or {}).items():
        table.add(_counter_family(name), "counter", value, labels)
    for name, gauge in (export.get("gauges") or {}).items():
        value = gauge.get("value", 0.0) if isinstance(gauge, Mapping) else gauge
        table.add(sanitize_metric_name(name), "gauge", value, labels)
    for name, summary in (export.get("histograms") or {}).items():
        family = sanitize_metric_name(name)
        count = float(summary.get("count", 0.0))
        for quantile, stat in _QUANTILES:
            table.add(family, "summary", summary.get(stat, 0.0),
                      {**labels, "quantile": quantile})
        table.add(family, "summary", count, labels, suffix="_count")
        # count * mean reconstructs the exact recorded total: the
        # registry keeps both exact regardless of reservoir eviction.
        table.add(family, "summary", count * float(summary.get("mean", 0.0)),
                  labels, suffix="_sum")
        table.add(family + "_max", "gauge", summary.get("max", 0.0), labels)


def render_exposition(
    coordinator: Mapping[str, Any],
    workers: Mapping[str, Mapping[str, Any]] | None = None,
    synthetic: Iterable[tuple[str, str, float]] = (),
) -> str:
    """The full ``/metrics`` payload.

    ``coordinator`` is the coordinator registry's :meth:`export`;
    ``workers`` maps worker id to the sampled per-worker payload (the
    ``get_stats(full=True)`` dict: flat legacy scalars plus a
    ``registry`` export); ``synthetic`` appends extra pre-named
    ``(family, type, value)`` series (the endpoint's own scrape
    counters), already prefixed/sanitized by the caller.
    """
    table = _FamilyTable()
    _add_registry(table, coordinator, {})
    for worker_id, stats in (workers or {}).items():
        labels = {"worker_id": str(worker_id)}
        registry = stats.get("registry") or {}
        _add_registry(table, registry, labels)
        counters = registry.get("counters") or {}
        for key, value in stats.items():
            if key == "registry" or key in counters:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue  # worker_id and other non-numeric fields
            table.add(sanitize_metric_name(key), "gauge", value, labels)
    for family, mtype, value in synthetic:
        table.add(family, mtype, value)
    return table.render()
