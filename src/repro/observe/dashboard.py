"""The self-contained HTML dashboard served at ``/``.

One static page, no external assets: inline CSS plus a small script
polling ``/metrics.json`` and re-rendering a per-worker table (task
counts, cache hit rates, in-flight RPC, shuffle rate, heartbeat age and
round trip, gray-failure health) and a coordinator summary row.  Rates
(shuffle MB/s) are computed client-side from consecutive samples, so
the server stays stateless about scrapers.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>EclipseMR cluster</title>
<style>
  body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
         margin: 1.5rem; background: #fafafa; color: #1a1a1a; }
  h1 { font-size: 1.2rem; margin: 0 0 0.25rem 0; }
  .sub { color: #666; font-size: 0.8rem; margin-bottom: 1rem; }
  .tiles { display: flex; flex-wrap: wrap; gap: 0.75rem; margin-bottom: 1.25rem; }
  .tile { background: #fff; border: 1px solid #e2e2e2; border-radius: 6px;
          padding: 0.6rem 0.9rem; min-width: 8.5rem; }
  .tile .v { font-size: 1.3rem; font-weight: 600; }
  .tile .k { font-size: 0.72rem; color: #666; text-transform: uppercase;
             letter-spacing: 0.04em; }
  table { border-collapse: collapse; width: 100%; background: #fff;
          border: 1px solid #e2e2e2; border-radius: 6px; overflow: hidden; }
  th, td { padding: 0.45rem 0.8rem; text-align: right;
           font-variant-numeric: tabular-nums; font-size: 0.85rem; }
  th { background: #f0f0f0; font-size: 0.72rem; text-transform: uppercase;
       letter-spacing: 0.04em; color: #555; }
  th:first-child, td:first-child { text-align: left; }
  tr + tr td { border-top: 1px solid #eee; }
  td.warn { color: #b00020; font-weight: 600; }
  #err { color: #b00020; font-size: 0.8rem; min-height: 1rem; }
  a { color: inherit; }
</style>
</head>
<body>
<h1>EclipseMR cluster</h1>
<div class="sub">live metrics &mdash; raw exposition at <a href="/metrics">/metrics</a>,
JSON at <a href="/metrics.json">/metrics.json</a></div>
<div class="tiles" id="tiles"></div>
<table>
  <thead><tr>
    <th>worker</th><th>maps</th><th>reduces</th>
    <th>iCache hit</th><th>oCache hit</th>
    <th>in-flight RPC</th><th>shuffle out</th><th>heartbeat age</th>
    <th>heartbeat rtt</th><th>health</th>
  </tr></thead>
  <tbody id="workers"></tbody>
</table>
<div id="err"></div>
<script>
"use strict";
let prev = null, prevAt = null;

function num(x) { return typeof x === "number" && isFinite(x) ? x : 0; }

function hitRate(hits, misses) {
  const total = num(hits) + num(misses);
  return total ? (100 * num(hits) / total).toFixed(1) + "%" : "\\u2013";
}

function mb(bytes) { return (num(bytes) / 1e6).toFixed(2); }

function tile(value, label) {
  return '<div class="tile"><div class="v">' + value +
         '</div><div class="k">' + label + "</div></div>";
}

function counterOf(reg, name) {
  return num(((reg || {}).counters || {})[name]);
}

function gaugeOf(reg, name) {
  const g = ((reg || {}).gauges || {})[name];
  return g ? num(g.value) : 0;
}

function render(data) {
  const coord = data.coordinator || {};
  const workers = data.workers || {};
  const ids = Object.keys(workers).sort();
  const now = Date.now() / 1000;
  const dt = prevAt ? now - prevAt : 0;

  document.getElementById("tiles").innerHTML =
    tile(gaugeOf(coord, "cluster.live_workers") || ids.length, "live workers") +
    tile(counterOf(coord, "rpc.calls"), "coordinator RPCs") +
    tile(counterOf(coord, "sched.jobs_completed"), "jobs completed") +
    tile(counterOf(coord, "cluster.failovers"), "failovers") +
    tile(gaugeOf(coord, "sched.queue_depth"), "queued jobs") +
    tile(num(data.sample_age_s).toFixed(1) + "s", "sample age");

  const rows = ids.map(function (wid) {
    const s = workers[wid] || {};
    const reg = s.registry || {};
    let rate = "\\u2013";
    if (prev && prev[wid] && dt > 0) {
      const d = counterOf(reg, "worker.bytes_shuffled_out") -
                counterOf((prev[wid] || {}).registry, "worker.bytes_shuffled_out");
      rate = mb(d / dt) + " MB/s";
    }
    const age = num(s.heartbeat_age_s);
    const ageCls = age > 1.5 ? ' class="warn"' : "";
    const rtt = typeof s.heartbeat_rtt_s === "number"
      ? (s.heartbeat_rtt_s * 1000).toFixed(1) + "ms" : "\\u2013";
    let health = "\\u2013";
    let healthCls = "";
    if (typeof s.health_score === "number") {
      health = s.health_score.toFixed(2);
      if (s.quarantined) { health += " \\u26d4"; healthCls = ' class="warn"'; }
    } else if (s.quarantined) {
      health = "\\u26d4"; healthCls = ' class="warn"';
    }
    return "<tr><td>" + wid + "</td>" +
      "<td>" + counterOf(reg, "worker.maps_run") + "</td>" +
      "<td>" + counterOf(reg, "worker.reduces_run") + "</td>" +
      "<td>" + hitRate(s.icache_hits, s.icache_misses) + "</td>" +
      "<td>" + hitRate(s.ocache_hits, s.ocache_misses) + "</td>" +
      "<td>" + gaugeOf(reg, "rpc.in_flight") + "</td>" +
      "<td>" + rate + "</td>" +
      "<td" + ageCls + ">" + age.toFixed(2) + "s</td>" +
      "<td>" + rtt + "</td>" +
      "<td" + healthCls + ">" + health + "</td></tr>";
  });
  document.getElementById("workers").innerHTML =
    rows.join("") || '<tr><td colspan="10">no workers sampled yet</td></tr>';
  prev = workers;
  prevAt = now;
}

function poll() {
  fetch("/metrics.json").then(function (r) {
    if (!r.ok) throw new Error("HTTP " + r.status);
    return r.json();
  }).then(function (data) {
    document.getElementById("err").textContent = "";
    render(data);
  }).catch(function (e) {
    document.getElementById("err").textContent =
      "scrape failed: " + e + " (cluster gone?)";
  });
}

poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
