"""Command-line interface: regenerate any figure from a shell.

::

    python -m repro.cli list
    python -m repro.cli fig3
    python -m repro.cli fig9 --style bars --blocks 64
    python -m repro.cli all --fast

Each subcommand runs the corresponding experiment module and prints the
table (or bar chart) the paper's figure reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import common
from repro.experiments.report import render

__all__ = ["main"]


def _fig3(args):
    from repro.experiments.fig3_cdf import run

    return [(run(), "")]


def _fig5(args):
    from repro.experiments.fig5_io import run

    blocks = 4 if args.fast else 8
    return [(run(blocks_per_node=blocks), " MB/s")]


def _fig6(args):
    from repro.experiments.fig6_schedulers import run, run_iterative

    blocks = 64 if args.fast else args.blocks
    out = [(run(blocks=blocks), "s")]
    out.append((run_iterative(kmeans_blocks=blocks, pagerank_blocks=8, iterations=3 if args.fast else 5), "s"))
    return out


def _fig7(args):
    from repro.experiments.fig7_load_balance import run

    jobs = 3 if args.fast else 6
    times, hits, _ = run(num_jobs=jobs, tasks_per_job=100 if args.fast else 150, blocks=64 if args.fast else 96)
    return [(times, "s"), (hits, "%")]


def _fig8(args):
    from repro.experiments.fig8_concurrent import run

    per_cache, summary = run(blocks_per_file=16 if args.fast else 32)
    return [(r, "s") for r in per_cache] + [(summary, "%")]


def _fig9(args):
    from repro.experiments.fig9_frameworks import run

    return [(run(base_blocks=64 if args.fast else args.blocks), "s")]


def _fig10(args):
    from repro.experiments.fig10_iterative import run

    results = run(
        iterations=5 if args.fast else 10,
        blocks=48 if args.fast else 96,
        pagerank_blocks=60 if args.fast else 120,
    )
    return [(r, "s") for r in results.values()]


def _namenode(args):
    from repro.experiments.supp_namenode import run

    return [(run(blocks_per_job=40 if args.fast else 80), "")]


def _recovery(args):
    from repro.experiments.supp_recovery import run

    return [(run(data_blocks=80 if args.fast else 160), "")]


def _drift(args):
    from repro.experiments.supp_drift import run

    return [(run(num_tasks=2000 if args.fast else 4000), "")]


def _timeseries(args):
    from repro.experiments.supp_timeseries import run

    return [(run(num_jobs=8 if args.fast else 16), "")]


def _validate(args):
    from repro.experiments.common import ExperimentResult
    from repro.perfmodel.validation import compare_planes

    cmp = compare_planes(
        num_workers=6 if args.fast else 8,
        blocks=12 if args.fast else 24,
        repeats=2 if args.fast else 3,
    )
    result = ExperimentResult(
        title="Cross-plane validation: functional engine vs discrete-event model",
        x_label="metric",
        x_values=["icache hit ratio", "assignment CV", "LAF re-cuts"],
    )
    result.add("functional", [cmp.functional_hit_ratio, cmp.functional_assignment_cv,
                              float(cmp.functional_repartitions)])
    result.add("simulated", [cmp.simulated_hit_ratio, cmp.simulated_assignment_cv,
                             float(cmp.simulated_repartitions)])
    result.note("with aligned ring positions the planes agree exactly on "
                "timing-independent quantities")
    return [(result, "")]


FIGURES: dict[str, tuple[Callable, str]] = {
    "fig3": (_fig3, "equally probable CDF partitioning (mechanism)"),
    "fig5": (_fig5, "IO throughput: DHT file system vs HDFS"),
    "fig6": (_fig6, "LAF vs delay scheduling"),
    "fig7": (_fig7, "load balance vs locality under skew"),
    "fig8": (_fig8, "seven concurrent jobs, cache sweep"),
    "fig9": (_fig9, "EclipseMR vs Hadoop vs Spark"),
    "fig10": (_fig10, "per-iteration times vs Spark"),
    "namenode": (_namenode, "supplementary: NameNode scalability"),
    "recovery": (_recovery, "supplementary: single-failure recovery cost"),
    "drift": (_drift, "supplementary: LAF alpha under popularity drift"),
    "timeseries": (_timeseries, "supplementary: Poisson job stream"),
    "validate": (_validate, "cross-plane validation (functional vs simulated)"),
}


def _observe_config(args):
    """The observe block for the cluster demos (off unless --observe)."""
    from repro.common.config import ObserveConfig

    if args.observe is None:
        return ObserveConfig()
    return ObserveConfig(enabled=True, port=args.observe)


def _announce_observer(rt) -> None:
    if rt.observer is not None:
        print(f"observability endpoint live at {rt.observer.url}/ "
              f"(Prometheus text: curl {rt.observer.url}/metrics)")


def _cluster(args) -> int:
    """Stand up a real N-process cluster, run wordcount, print stats."""
    from repro.apps.wordcount import wordcount_job
    from repro.apps.workloads import pack_records, text_corpus
    from repro.cluster import ClusterRuntime
    from repro.common.config import ClusterConfig, DFSConfig
    from repro.experiments.common import ExperimentResult

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.jobs > 1:
        return _cluster_jobs(args)
    num_words = 5000 if args.fast else 20000
    cfg = ClusterConfig(dfs=DFSConfig(block_size=16 * 1024),
                        observe=_observe_config(args))
    data = pack_records(
        text_corpus(7, num_words=num_words, vocab_size=500), cfg.dfs.block_size
    )
    print(f"starting {args.workers} worker processes on localhost ...")
    # monotonic, not wall-clock: an NTP step mid-run must not produce
    # negative or skewed elapsed/makespan numbers.
    t0 = time.monotonic()
    membership_notes = []
    with ClusterRuntime(args.workers, cfg) as rt:
        _announce_observer(rt)
        rt.upload("corpus.txt", data)
        res = rt.run(wordcount_job("corpus.txt", app_id="cli-wordcount"))
        if args.join_after is not None:
            joined = rt.join_worker()
            res = rt.run(wordcount_job("corpus.txt", app_id="cli-wordcount-post-join"))
            blocks = int(rt.metrics.counter("membership.blocks_handed_off").value)
            mb = rt.metrics.counter("membership.bytes_handed_off").value / 1e6
            membership_notes.append(
                f"live-joined {joined} ({blocks} blocks / {mb:.2f} MB handed off), "
                f"re-ran wordcount on {len(rt.coordinator.worker_ids)} workers"
            )
        if args.drain:
            rt.drain_worker(args.drain)
            failovers = int(rt.metrics.counter("cluster.failovers").value)
            membership_notes.append(
                f"drained {args.drain!r} gracefully "
                f"({failovers} failover-budget units spent)"
            )
        stats = rt.worker_stats()
        rpc_calls = rt.metrics.counter("rpc.calls").value
        rpc_retries = rt.metrics.counter("rpc.retries").value
        beats = rt.metrics.counter("heartbeat.received").value
        max_age = rt.metrics.gauge("heartbeat.max_age_s").max_seen
    elapsed = time.monotonic() - t0

    workers = list(stats)
    result = ExperimentResult(
        title=f"wordcount on a {args.workers}-process cluster "
              f"({res.stats.map_tasks} map tasks, {len(res.output)} distinct words)",
        x_label="worker",
        x_values=workers,
    )
    result.add("map tasks", [stats[w].get("worker.maps_run", 0.0) for w in workers])
    result.add("reduce tasks", [stats[w].get("worker.reduces_run", 0.0) for w in workers])
    result.add("blocks stored", [float(stats[w]["blocks_stored"]) for w in workers])
    result.add("spill bytes in", [float(stats[w]["bytes_received"]) for w in workers])
    result.add("shuffle bytes out",
               [stats[w].get("worker.bytes_shuffled_out", 0.0) for w in workers])
    result.note(
        f"{int(rpc_calls)} RPCs ({int(rpc_retries)} retried), "
        f"{int(beats)} heartbeats (max observed silence {max_age:.2f}s)"
    )
    for note in membership_notes:
        result.note(note)
    print(render(result, style=args.style, unit=""))
    print(f"\n(cluster job finished in {elapsed:.1f}s)")
    return 0


def _cluster_jobs(args) -> int:
    """Concurrent demo: N wordcount jobs multiplexed over one cluster."""
    from repro.apps.wordcount import wordcount_job
    from repro.apps.workloads import pack_records, text_corpus
    from repro.common.config import ClusterConfig, DFSConfig, JobsConfig
    from repro.experiments.common import ExperimentResult
    from repro.jobs import ClusterSession

    num_words = 5000 if args.fast else 20000
    cfg = ClusterConfig(
        dfs=DFSConfig(block_size=16 * 1024),
        jobs=JobsConfig(policy=args.policy, max_active_jobs=max(4, args.jobs)),
        observe=_observe_config(args),
    )
    data = pack_records(
        text_corpus(7, num_words=num_words, vocab_size=500), cfg.dfs.block_size
    )
    print(f"starting {args.workers} worker processes on localhost, "
          f"submitting {args.jobs} jobs under the {args.policy!r} policy ...")
    t0 = time.monotonic()
    membership_note = ""
    with ClusterSession(workers=args.workers, config=cfg) as session:
        _announce_observer(session.runtime)
        session.upload("corpus.txt", data)
        handles = session.submit_many(
            [wordcount_job("corpus.txt", app_id=f"cli-wc-{i}")
             for i in range(args.jobs)]
        )
        rt = session.runtime
        join_future = None
        results = []
        for i, h in enumerate(handles):
            results.append(h.result())
            if (args.join_after is not None and join_future is None
                    and i + 1 >= args.join_after):
                # Queued now, applied at the scheduler's quiesce barrier.
                join_future = rt.join_worker(wait=False)
        if join_future is not None:
            joined = join_future.result(
                timeout=cfg.membership.barrier_timeout
                + cfg.membership.join_register_timeout
            )
            membership_note = (
                f", {joined} live-joined after job {args.join_after}"
            )
        if args.drain:
            rt.drain_worker(args.drain)
            membership_note += f", {args.drain!r} drained gracefully"
        completed = rt.metrics.counter("sched.jobs_completed").value
        dispatched = rt.metrics.counter("sched.tasks_dispatched").value
    makespan = time.monotonic() - t0

    outputs = {len(r.output) for r in results}
    result = ExperimentResult(
        title=f"{args.jobs} concurrent wordcount jobs on a "
              f"{args.workers}-process cluster ({args.policy} policy)",
        x_label="job",
        x_values=[h.job_uid for h in handles],
    )
    result.add("queue wait", [h.metrics()["queue_wait_s"] for h in handles])
    result.add("run", [h.metrics()["run_s"] for h in handles])
    result.add("makespan", [h.metrics()["makespan_s"] for h in handles])
    result.note(
        f"{int(completed)} jobs completed, {int(dispatched)} tasks dispatched, "
        f"{'identical outputs' if len(outputs) == 1 else 'OUTPUTS DIVERGE'}"
        f"{membership_note}"
    )
    print(render(result, style=args.style, unit="s"))
    print(f"\n(all {args.jobs} jobs finished in {makespan:.1f}s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the EclipseMR paper's evaluation figures."
    )
    parser.add_argument("target", choices=sorted(FIGURES) + ["all", "cluster", "list"],
                        help="figure to regenerate, 'cluster' for a live "
                             "multi-process demo, 'all', or 'list'")
    parser.add_argument("--style", choices=("table", "bars"), default="table",
                        help="output rendering (default: table)")
    parser.add_argument("--fast", action="store_true", help="smaller datasets")
    parser.add_argument("--blocks", type=int, default=common.DEFAULT_BLOCKS,
                        help="base input size in 128 MB blocks where applicable")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker process count for 'cluster' (default: 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="for 'cluster': submit N concurrent wordcount "
                             "jobs through the job scheduler (default: 1)")
    parser.add_argument("--policy", choices=("fifo", "fair", "delay"),
                        default="fifo",
                        help="inter-job policy for 'cluster --jobs N' "
                             "(default: fifo)")
    parser.add_argument("--join-after", type=int, default=None, metavar="N",
                        dest="join_after",
                        help="for 'cluster': live-join one extra worker "
                             "after N jobs have completed (elastic "
                             "membership demo)")
    parser.add_argument("--drain", default=None, metavar="WORKER_ID",
                        help="for 'cluster': gracefully drain WORKER_ID "
                             "(e.g. worker-0) before printing stats")
    parser.add_argument("--observe", type=int, default=None, metavar="PORT",
                        help="for 'cluster': serve live metrics on PORT "
                             "(Prometheus text at /metrics, HTML dashboard "
                             "at /; 0 picks a free port)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "list":
        for name, (_, desc) in sorted(FIGURES.items()):
            print(f"  {name:10} {desc}")
        print("  cluster    live N-process cluster demo (wordcount + per-worker stats)")
        return 0
    if args.target == "cluster":
        return _cluster(args)
    targets = sorted(FIGURES) if args.target == "all" else [args.target]
    for name in targets:
        fn, desc = FIGURES[name]
        print(f"\n=== {name}: {desc} ===")
        t0 = time.monotonic()
        for result, unit in fn(args):
            print(render(result, style=args.style, unit=unit))
            print()
        print(f"({name} regenerated in {time.monotonic() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
