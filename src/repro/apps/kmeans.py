"""k-means clustering -- the paper's flagship iterative application.

Each iteration maps every point to its nearest centroid, emitting partial
``(cluster, (sum, count))`` pairs that a combiner collapses per spill; the
reduce side averages them into the new centroids.  The iteration output
(the centroid set, ~1.7 KB in the paper) is tiny next to the input, which
is why k-means shows EclipseMR's input-caching benefit so strongly
(Fig. 6b, 9, 10a).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.mapreduce.api import EclipseMR
from repro.mapreduce.iterative import IterativeDriver
from repro.mapreduce.job import JobResult, MapReduceJob

__all__ = ["parse_points", "kmeans_map_fn", "kmeans_reduce", "kmeans_combine", "kmeans_job", "kmeans_driver", "extract_centroids"]


def parse_points(block: bytes) -> np.ndarray:
    """Comma-separated float lines -> (n, dim) array (blank lines skipped)."""
    rows = [
        [float(tok) for tok in line.split(",")]
        for line in block.decode("utf-8", errors="replace").splitlines()
        if line.strip()
    ]
    return np.asarray(rows, dtype=float) if rows else np.empty((0, 0))


def kmeans_map_fn(centroids: np.ndarray):
    """Map closure over the current centroids (the iteration state)."""
    centroids = np.asarray(centroids, dtype=float)

    def kmeans_map(block: bytes) -> Iterable[tuple[int, tuple[tuple[float, ...], int]]]:
        pts = parse_points(block)
        if pts.size == 0:
            return
        # Vectorized nearest-centroid assignment for the whole block.
        d2 = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        nearest = d2.argmin(axis=1)
        for c in np.unique(nearest):
            members = pts[nearest == c]
            yield int(c), (tuple(members.sum(axis=0)), int(members.shape[0]))

    return kmeans_map


def kmeans_combine(cluster: int, partials: list[tuple[tuple[float, ...], int]]) -> list[tuple[tuple[float, ...], int]]:
    total = np.sum([np.asarray(s) for s, _ in partials], axis=0)
    count = sum(c for _, c in partials)
    return [(tuple(total), count)]


def kmeans_reduce(cluster: int, partials: list[tuple[tuple[float, ...], int]]) -> tuple[float, ...]:
    total = np.sum([np.asarray(s) for s, _ in partials], axis=0)
    count = sum(c for _, c in partials)
    return tuple(total / max(count, 1))


def kmeans_job(
    input_file: str,
    centroids: np.ndarray,
    iteration: int,
    app_id: str = "kmeans",
    **kwargs: Any,
) -> MapReduceJob:
    return MapReduceJob(
        app_id=f"{app_id}-it{iteration}",
        input_file=input_file,
        map_fn=kmeans_map_fn(centroids),
        reduce_fn=kmeans_reduce,
        combiner=kmeans_combine,
        **kwargs,
    )


def extract_centroids(prev: np.ndarray):
    """State extractor keeping centroid count stable across iterations
    (empty clusters keep their previous position)."""

    def extract(result: JobResult) -> np.ndarray:
        new = np.array(prev, dtype=float, copy=True)
        for cluster, centroid in result.output.items():
            new[int(cluster)] = np.asarray(centroid)
        return new

    return extract


def kmeans_driver(
    mr: EclipseMR,
    input_file: str,
    initial_centroids: np.ndarray,
    iterations: int,
    app_id: str = "kmeans",
    tolerance: float | None = None,
) -> IterativeDriver:
    """An iterative driver running k-means for ``iterations`` rounds.

    ``tolerance`` enables early convergence on max centroid movement.
    """

    def make_job(i: int, state: np.ndarray) -> MapReduceJob:
        return kmeans_job(input_file, state, i, app_id=app_id)

    def extract_state(result: JobResult, prev: np.ndarray) -> np.ndarray:
        return extract_centroids(prev)(result)

    driver = mr.iterative(
        app_id=app_id,
        make_job=make_job,
        extract_state=extract_state,
        max_iterations=iterations,
    )
    if tolerance is not None:
        driver.converged = lambda i, prev, new: bool(
            np.max(np.abs(np.asarray(new) - np.asarray(prev))) < tolerance
        )
    return driver
