"""Sort -- the shuffle-dominated benchmark (Fig. 6a, 8, 9).

Every record is shuffled to the reducer owning its key's hash; the global
order is reassembled by sorting the reduce output keys, exactly how
terasort-style jobs report.  This application moves the whole input across
the network, which is why the paper uses it to compare shuffle
implementations.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mapreduce.job import MapReduceJob

__all__ = ["sort_map", "sort_reduce", "sort_job", "sorted_output"]


def sort_map(block: bytes) -> Iterable[tuple[str, int]]:
    """Emit ``(record, 1)`` per line (duplicates carry their multiplicity)."""
    for line in block.decode("utf-8", errors="replace").splitlines():
        if line:
            yield line, 1


def sort_reduce(record: str, ones: list[int]) -> int:
    return sum(ones)


def sort_job(input_file: str, app_id: str = "sort", **kwargs: Any) -> MapReduceJob:
    return MapReduceJob(
        app_id=app_id,
        input_file=input_file,
        map_fn=sort_map,
        reduce_fn=sort_reduce,
        **kwargs,
    )


def sorted_output(result_output: dict[str, int]) -> list[str]:
    """Flatten the (record, multiplicity) output into the sorted record list."""
    out: list[str] = []
    for record in sorted(result_output):
        out.extend([record] * result_output[record])
    return out
