"""Inverted index -- word -> posting list over tagged documents (Fig. 6a, 9).

Input records are ``doc_id<TAB>text`` lines (see
:func:`repro.apps.workloads.documents`).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mapreduce.job import MapReduceJob

__all__ = ["inverted_index_map", "inverted_index_reduce", "inverted_index_job"]


def inverted_index_map(block: bytes) -> Iterable[tuple[str, str]]:
    """Emit ``(word, doc_id)`` for every word of every document."""
    for line in block.decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        doc_id, _, text = line.partition("\t")
        for word in text.split():
            yield word, doc_id


def inverted_index_reduce(word: str, doc_ids: list[str]) -> list[str]:
    """The posting list: sorted unique documents containing the word."""
    return sorted(set(doc_ids))


def inverted_index_job(input_file: str, app_id: str = "invertedindex", **kwargs: Any) -> MapReduceJob:
    return MapReduceJob(
        app_id=app_id,
        input_file=input_file,
        map_fn=inverted_index_map,
        reduce_fn=inverted_index_reduce,
        **kwargs,
    )
