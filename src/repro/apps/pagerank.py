"""Page rank -- the iterative application with *large* iteration outputs.

Each iteration distributes every node's rank over its out-edges and sums
contributions per destination (with damping).  Unlike k-means, the
iteration output is a full rank vector of the same order as the input --
the property that makes EclipseMR's persist-every-iteration design pay a
write penalty against Spark (paper Fig. 9, 10c).

Input records: ``src<TAB>dst1,dst2,...`` adjacency lines.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.mapreduce.api import EclipseMR
from repro.mapreduce.iterative import IterativeDriver
from repro.mapreduce.job import JobResult, MapReduceJob

__all__ = ["parse_adjacency", "pagerank_map_fn", "pagerank_reduce_fn", "pagerank_job", "pagerank_driver"]

DAMPING = 0.85


def parse_adjacency(block: bytes) -> list[tuple[int, list[int]]]:
    out = []
    for line in block.decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        src, _, rest = line.partition("\t")
        dsts = [int(d) for d in rest.split(",") if d]
        out.append((int(src), dsts))
    return out


def pagerank_map_fn(ranks: dict[int, float]):
    """Map closure over the current rank vector (the iteration state)."""

    def pagerank_map(block: bytes) -> Iterable[tuple[int, float]]:
        for src, dsts in parse_adjacency(block):
            rank = ranks.get(src, 0.0)
            if not dsts:
                continue
            share = rank / len(dsts)
            # Emit the node itself with zero contribution so sinks keep a
            # rank entry even when nothing links to them.
            yield src, 0.0
            for dst in dsts:
                yield dst, share

    return pagerank_map


def pagerank_reduce_fn(num_nodes: int):
    def pagerank_reduce(node: int, contributions: list[float]) -> float:
        return (1.0 - DAMPING) / num_nodes + DAMPING * sum(contributions)

    return pagerank_reduce


def pagerank_job(
    input_file: str,
    ranks: dict[int, float],
    num_nodes: int,
    iteration: int,
    app_id: str = "pagerank",
    **kwargs: Any,
) -> MapReduceJob:
    return MapReduceJob(
        app_id=f"{app_id}-it{iteration}",
        input_file=input_file,
        map_fn=pagerank_map_fn(ranks),
        reduce_fn=pagerank_reduce_fn(num_nodes),
        **kwargs,
    )


def pagerank_driver(
    mr: EclipseMR,
    input_file: str,
    num_nodes: int,
    iterations: int,
    app_id: str = "pagerank",
) -> IterativeDriver:
    """Driver starting from the uniform rank vector."""

    def make_job(i: int, state: dict[int, float]) -> MapReduceJob:
        return pagerank_job(input_file, state, num_nodes, i, app_id=app_id)

    def extract_state(result: JobResult, prev: dict[int, float]) -> dict[int, float]:
        merged = dict(prev)
        merged.update({int(k): float(v) for k, v in result.output.items()})
        return merged

    initial = {n: 1.0 / num_nodes for n in range(num_nodes)}
    driver = mr.iterative(
        app_id=app_id,
        make_job=make_job,
        extract_state=extract_state,
        max_iterations=iterations,
    )
    return driver
