"""Grep -- pattern search over text blocks (Fig. 6a, 7, 8, 9).

The map side filters lines against a pattern and the reduce side counts
matches per pattern occurrence line, which is how HiBench's grep reports.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.mapreduce.job import MapReduceJob

__all__ = ["grep_map_fn", "grep_reduce", "grep_job"]


def grep_map_fn(pattern: str):
    """A map function matching ``pattern`` (regular expression) per line."""
    compiled = re.compile(pattern)

    def grep_map(block: bytes) -> Iterable[tuple[str, int]]:
        for line in block.decode("utf-8", errors="replace").splitlines():
            if line and compiled.search(line):
                yield line, 1

    return grep_map


def grep_reduce(line: str, counts: list[int]) -> int:
    return sum(counts)


def grep_job(input_file: str, pattern: str, app_id: str = "grep", **kwargs: Any) -> MapReduceJob:
    return MapReduceJob(
        app_id=app_id,
        input_file=input_file,
        map_fn=grep_map_fn(pattern),
        reduce_fn=grep_reduce,
        **kwargs,
    )
