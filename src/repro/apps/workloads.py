"""Deterministic synthetic workload generators.

Stand-ins for the paper's inputs (HiBench text, Wikipedia dumps, synthetic
k-means points): every generator is seeded through
:func:`repro.common.rng.derive_rng`, so workloads replay exactly.

Because the DHT file system splits files at fixed byte offsets,
:func:`pack_records` packs whole records into block-sized chunks padded
with newlines -- the functional-engine equivalent of HDFS's record-aligned
input splits -- so no record ever straddles a block boundary.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng

__all__ = [
    "pack_records",
    "text_corpus",
    "documents",
    "graph_edges",
    "points",
    "labeled_points",
    "bimodal_keys",
]

_VOCAB_PREFIXES = (
    "data", "map", "reduce", "cluster", "cache", "hash", "ring", "node",
    "block", "shuffle", "task", "key", "range", "store", "disk", "memory",
)


def _vocabulary(size: int) -> list[str]:
    return [f"{_VOCAB_PREFIXES[i % len(_VOCAB_PREFIXES)]}{i}" for i in range(size)]


def pack_records(records: list[bytes], block_size: int) -> bytes:
    """Pack records into ``block_size`` chunks, newline-padded.

    Raises ``ValueError`` when a single record (plus its newline) cannot
    fit in one block.
    """
    if block_size < 2:
        raise ValueError("block_size must be at least 2")
    blocks: list[bytearray] = [bytearray()]
    for rec in records:
        if b"\n" in rec:
            raise ValueError("records must not contain newlines")
        if len(rec) + 1 > block_size:
            raise ValueError(f"record of {len(rec)} bytes exceeds block size {block_size}")
        if len(blocks[-1]) + len(rec) + 1 > block_size:
            blocks[-1].extend(b"\n" * (block_size - len(blocks[-1])))
            blocks.append(bytearray())
        blocks[-1].extend(rec)
        blocks[-1].extend(b"\n")
    # Pad the final block too so every block is exactly block_size: the
    # uploaded file then splits exactly at record boundaries.
    blocks[-1].extend(b"\n" * (block_size - len(blocks[-1])))
    return b"".join(bytes(b) for b in blocks)


def text_corpus(
    seed: int,
    *,
    num_words: int,
    vocab_size: int = 1000,
    words_per_line: int = 10,
    zipf_a: float | None = None,
) -> list[bytes]:
    """Lines of random words; ``zipf_a`` skews word frequency (HiBench-like)."""
    rng = derive_rng(seed, "text_corpus")
    vocab = _vocabulary(vocab_size)
    if zipf_a is not None:
        idx = (rng.zipf(zipf_a, size=num_words) - 1) % vocab_size
    else:
        idx = rng.integers(0, vocab_size, size=num_words)
    words = [vocab[i] for i in idx]
    return [
        " ".join(words[i : i + words_per_line]).encode()
        for i in range(0, num_words, words_per_line)
    ]


def documents(
    seed: int,
    *,
    num_docs: int,
    words_per_doc: int = 30,
    vocab_size: int = 500,
) -> list[bytes]:
    """``doc_id<TAB>text`` records for the inverted index application."""
    rng = derive_rng(seed, "documents")
    vocab = _vocabulary(vocab_size)
    out = []
    for d in range(num_docs):
        words = [vocab[i] for i in rng.integers(0, vocab_size, size=words_per_doc)]
        out.append(f"doc{d}\t{' '.join(words)}".encode())
    return out


def graph_edges(
    seed: int,
    *,
    num_nodes: int,
    avg_out_degree: int = 4,
) -> list[bytes]:
    """Adjacency records ``src<TAB>dst1,dst2,...`` with power-law-ish fan-in.

    Page rank's uneven computation per block (paper §I) comes from exactly
    this kind of degree skew.
    """
    rng = derive_rng(seed, "graph")
    # Preferential-attachment flavour: earlier nodes attract more edges.
    weights = 1.0 / np.arange(1, num_nodes + 1)
    weights /= weights.sum()
    out = []
    for src in range(num_nodes):
        degree = max(1, int(rng.poisson(avg_out_degree)))
        dsts = np.unique(rng.choice(num_nodes, size=degree, p=weights))
        dsts = dsts[dsts != src]
        if dsts.size == 0:
            dsts = np.array([(src + 1) % num_nodes])
        out.append(f"{src}\t{','.join(map(str, dsts))}".encode())
    return out


def points(
    seed: int,
    *,
    num_points: int,
    dim: int = 2,
    num_clusters: int = 3,
    spread: float = 0.05,
) -> tuple[list[bytes], np.ndarray]:
    """k-means points around ``num_clusters`` true centers.

    Returns (records, true_centers); records are comma-separated floats.
    """
    rng = derive_rng(seed, "points")
    centers = rng.random((num_clusters, dim))
    labels = rng.integers(0, num_clusters, size=num_points)
    data = centers[labels] + rng.normal(0.0, spread, size=(num_points, dim))
    recs = [",".join(f"{x:.6f}" for x in row).encode() for row in data]
    return recs, centers


def labeled_points(
    seed: int,
    *,
    num_points: int,
    dim: int = 4,
) -> tuple[list[bytes], np.ndarray]:
    """Linearly separable ``label,x1,...,xd`` records for logistic regression.

    Returns (records, true_weights).
    """
    rng = derive_rng(seed, "labeled_points")
    w = rng.normal(0.0, 1.0, size=dim)
    x = rng.normal(0.0, 1.0, size=(num_points, dim))
    y = (x @ w > 0).astype(int)
    recs = [
        (str(int(label)) + "," + ",".join(f"{v:.6f}" for v in row)).encode()
        for label, row in zip(y, x)
    ]
    return recs, w


def bimodal_keys(
    seed: int,
    *,
    count: int,
    space_size: int,
    centers: tuple[float, float] = (0.28, 0.64),
    stddev: float = 0.04,
) -> list[int]:
    """Hash keys drawn from two merged normal distributions.

    This is the Fig. 7 workload: "we synthetically merge two normal
    distributions that have different average hash keys".
    """
    rng = derive_rng(seed, "bimodal")
    half = count // 2
    a = rng.normal(centers[0] * space_size, stddev * space_size, size=half)
    b = rng.normal(centers[1] * space_size, stddev * space_size, size=count - half)
    keys = np.concatenate([a, b]).astype(np.int64) % space_size
    rng.shuffle(keys)
    return [int(k) for k in keys]
