"""The paper's benchmark applications and their workload generators.

The evaluation (§III) uses HiBench-style workloads: ``word count``,
``inverted index``, ``grep`` and ``sort`` over text; ``page rank`` over a
graph; ``k-means`` and ``logistic regression`` over numeric points.  Every
application here is a real map/reduce implementation runnable on the
functional engine, plus cost descriptors consumed by the performance
model.

* :mod:`repro.apps.workloads` -- deterministic synthetic data generators
  (our stand-in for the HiBench inputs and the Wikipedia corpus).
* one module per application.
"""

from repro.apps.workloads import (
    pack_records,
    text_corpus,
    documents,
    graph_edges,
    points,
    labeled_points,
    bimodal_keys,
)
from repro.apps.wordcount import wordcount_job
from repro.apps.grep import grep_job
from repro.apps.invertedindex import inverted_index_job
from repro.apps.sort_app import sort_job
from repro.apps.pagerank import pagerank_driver, pagerank_job
from repro.apps.kmeans import kmeans_driver, kmeans_job
from repro.apps.logreg import logreg_driver, logreg_job

__all__ = [
    "pack_records",
    "text_corpus",
    "documents",
    "graph_edges",
    "points",
    "labeled_points",
    "bimodal_keys",
    "wordcount_job",
    "grep_job",
    "inverted_index_job",
    "sort_job",
    "pagerank_job",
    "pagerank_driver",
    "kmeans_job",
    "kmeans_driver",
    "logreg_job",
    "logreg_driver",
]
