"""Word count -- the canonical MapReduce application (Fig. 6a, 8, 9)."""

from __future__ import annotations

from typing import Any, Iterable

from repro.mapreduce.job import MapReduceJob

__all__ = ["wordcount_map", "wordcount_reduce", "wordcount_combine", "wordcount_job"]


def wordcount_map(block: bytes) -> Iterable[tuple[str, int]]:
    """Emit ``(word, 1)`` for every whitespace-separated word."""
    for word in block.decode("utf-8", errors="replace").split():
        yield word, 1


def wordcount_reduce(word: str, counts: list[int]) -> int:
    return sum(counts)


def wordcount_combine(word: str, counts: list[int]) -> list[int]:
    """Map-side pre-aggregation: collapse a spill's counts to one partial."""
    return [sum(counts)]


def wordcount_job(input_file: str, app_id: str = "wordcount", **kwargs: Any) -> MapReduceJob:
    return MapReduceJob(
        app_id=app_id,
        input_file=input_file,
        map_fn=wordcount_map,
        reduce_fn=wordcount_reduce,
        combiner=wordcount_combine,
        **kwargs,
    )
