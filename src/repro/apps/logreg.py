"""Logistic regression by batch gradient descent (Fig. 9, 10b).

Every iteration computes the full gradient over the input: maps emit one
partial gradient per block (a ``dim``-vector), the reduce side sums them,
and the driver takes a gradient step.  Like k-means, the iteration output
(the weight vector) is tiny, so EclipseMR's input caching dominates.

Input records: ``label,x1,...,xd`` lines.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.mapreduce.api import EclipseMR
from repro.mapreduce.iterative import IterativeDriver
from repro.mapreduce.job import JobResult, MapReduceJob

__all__ = ["parse_labeled", "logreg_map_fn", "logreg_reduce", "logreg_job", "logreg_driver"]


def parse_labeled(block: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Records -> (labels, features)."""
    ys: list[float] = []
    xs: list[list[float]] = []
    for line in block.decode("utf-8", errors="replace").splitlines():
        if not line.strip():
            continue
        parts = line.split(",")
        ys.append(float(parts[0]))
        xs.append([float(p) for p in parts[1:]])
    if not xs:
        return np.empty(0), np.empty((0, 0))
    return np.asarray(ys), np.asarray(xs)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def logreg_map_fn(weights: np.ndarray):
    weights = np.asarray(weights, dtype=float)

    def logreg_map(block: bytes) -> Iterable[tuple[str, tuple[tuple[float, ...], int]]]:
        y, x = parse_labeled(block)
        if x.size == 0:
            return
        pred = _sigmoid(x @ weights)
        grad = x.T @ (pred - y)
        yield "grad", (tuple(grad), int(len(y)))

    return logreg_map


def logreg_reduce(key: str, partials: list[tuple[tuple[float, ...], int]]) -> tuple[tuple[float, ...], int]:
    total = np.sum([np.asarray(g) for g, _ in partials], axis=0)
    count = sum(n for _, n in partials)
    return tuple(total), count


def logreg_job(
    input_file: str,
    weights: np.ndarray,
    iteration: int,
    app_id: str = "logreg",
    **kwargs: Any,
) -> MapReduceJob:
    return MapReduceJob(
        app_id=f"{app_id}-it{iteration}",
        input_file=input_file,
        map_fn=logreg_map_fn(weights),
        reduce_fn=logreg_reduce,
        **kwargs,
    )


def logreg_driver(
    mr: EclipseMR,
    input_file: str,
    dim: int,
    iterations: int,
    learning_rate: float = 0.5,
    app_id: str = "logreg",
) -> IterativeDriver:
    def make_job(i: int, state: np.ndarray) -> MapReduceJob:
        return logreg_job(input_file, state, i, app_id=app_id)

    def extract_state(result: JobResult, prev: np.ndarray) -> np.ndarray:
        grad, count = result.output["grad"]
        return np.asarray(prev) - learning_rate * np.asarray(grad) / max(count, 1)

    driver = mr.iterative(
        app_id=app_id,
        make_job=make_job,
        extract_state=extract_state,
        max_iterations=iterations,
    )
    return driver
