"""Gray-failure detection: per-worker health scores with quarantine.

A crashed worker stops heartbeating and the liveness plane fails it
over.  A *gray-failing* worker is worse: it heartbeats on time but
serves slowly -- a degraded disk, a saturated NIC, a noisy neighbor --
so every task scheduled there becomes a straggler and the failure
detector never fires.  The :class:`HealthMonitor` accumulates a
per-worker suspicion score from three signals the cluster already
produces:

* heartbeat round-trip latency (shipped by the worker one beat late,
  see :func:`repro.cluster.messages.heartbeat_args`) over
  ``health.rtt_slow_s``;
* task attempts that ran long enough to be speculated against
  (``health.slow_task_penalty`` per event, fed by the scheduler);
* RPC timeouts and transport retries (``health.timeout_penalty``).

The score decays exponentially (half-life ``health.decay_halflife_s``)
so old sins are forgiven; crossing ``health.quarantine_threshold``
quarantines the worker -- the scheduler stops dispatching *new* tasks
there, but the worker keeps serving block fetches, spill pushes, and
heartbeats, and is **not** failed over (its data stays authoritative).
Recovery uses hysteresis: the worker is eligible again only once the
score has decayed to ``health.recover_threshold``, preventing flapping
at the boundary.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.common.config import HealthConfig
from repro.sim.metrics import MetricsRegistry

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Decaying per-worker suspicion scores plus the quarantine judgment.

    Thread-safe; takes an injectable clock so decay and hysteresis are
    unit-testable without sleeping.  All mutating entry points are
    no-ops when ``config.enabled`` is false, so a disabled monitor can
    stay wired into the coordinator at zero behavioral cost.
    """

    def __init__(
        self,
        config: HealthConfig,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self._lock = threading.Lock()
        # worker_id -> (score, stamped_at); score decays lazily on read
        self._scores: dict[str, tuple[float, float]] = {}
        self._quarantined: set[str] = set()

    # -- scoring -----------------------------------------------------

    def _decayed(self, worker_id: str, now: float) -> float:
        entry = self._scores.get(worker_id)
        if entry is None:
            return 0.0
        score, stamped = entry
        if now <= stamped:
            return score
        return score * 0.5 ** ((now - stamped) / self.config.decay_halflife_s)

    def _add(self, worker_id: str, amount: float) -> None:
        now = self.clock()
        score = self._decayed(worker_id, now) + amount
        self._scores[worker_id] = (score, now)
        if score >= self.config.quarantine_threshold and (
            worker_id not in self._quarantined
        ):
            self._quarantined.add(worker_id)
            self.metrics.counter("health.quarantines").inc()
            self._publish()

    def penalize(self, worker_id: str, amount: float) -> None:
        """Add raw suspicion (generic entry point for new signals)."""
        if not self.config.enabled or amount <= 0:
            return
        with self._lock:
            self._add(worker_id, amount)

    def observe_rtt(self, worker_id: str, rtt_s: float) -> None:
        """Feed one heartbeat round trip; only over-budget beats add
        suspicion, proportionally to how far over ``rtt_slow_s`` they
        ran (capped so a single pathological beat cannot instantly
        quarantine an otherwise healthy worker)."""
        if not self.config.enabled or rtt_s <= self.config.rtt_slow_s:
            return
        excess = min(rtt_s / self.config.rtt_slow_s - 1.0, 2.0)
        with self._lock:
            self._add(worker_id, excess)

    def observe_timeout(self, worker_id: str) -> None:
        """An RPC against the worker timed out (or exhausted transport
        retries) -- the strongest gray-failure signal."""
        if not self.config.enabled:
            return
        with self._lock:
            self._add(worker_id, self.config.timeout_penalty)

    def observe_slow_task(self, worker_id: str) -> None:
        """A task attempt on the worker ran long enough that the
        scheduler launched (or would launch) a speculative copy."""
        if not self.config.enabled:
            return
        with self._lock:
            self._add(worker_id, self.config.slow_task_penalty)

    # -- judgment ----------------------------------------------------

    def score(self, worker_id: str) -> float:
        """The worker's current (decayed) suspicion score."""
        with self._lock:
            return self._decayed(worker_id, self.clock())

    def is_quarantined(self, worker_id: str) -> bool:
        """True while the worker should receive no new task dispatches.

        Reading is where recovery happens: once the decayed score falls
        to ``recover_threshold`` the quarantine lifts (hysteresis -- the
        lift bar sits below the trip bar, so a worker hovering at the
        threshold cannot flap in and out)."""
        with self._lock:
            if worker_id not in self._quarantined:
                return False
            if self._decayed(worker_id, self.clock()) <= self.config.recover_threshold:
                self._quarantined.discard(worker_id)
                self.metrics.counter("health.recoveries").inc()
                self._publish()
                return False
            return True

    def quarantined(self) -> list[str]:
        """Currently quarantined workers (recovery applied first)."""
        with self._lock:
            now = self.clock()
            recovered = [
                wid
                for wid in self._quarantined
                if self._decayed(wid, now) <= self.config.recover_threshold
            ]
            for wid in recovered:
                self._quarantined.discard(wid)
                self.metrics.counter("health.recoveries").inc()
            if recovered:
                self._publish()
            return sorted(self._quarantined)

    def forget(self, worker_id: str) -> None:
        """Drop all state for a departed worker (failover or drain)."""
        with self._lock:
            self._scores.pop(worker_id, None)
            if worker_id in self._quarantined:
                self._quarantined.discard(worker_id)
                self._publish()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-worker ``{"score": float, "quarantined": bool}`` for the
        observability plane (no recovery side effects)."""
        with self._lock:
            now = self.clock()
            return {
                wid: {
                    "score": round(self._decayed(wid, now), 4),
                    "quarantined": wid in self._quarantined,
                }
                for wid in self._scores
            }

    def _publish(self) -> None:
        # callers hold the lock
        self.metrics.gauge("health.quarantined").set(len(self._quarantined))
