"""Heartbeat-based liveness.

Workers push a small heartbeat RPC to the coordinator on a fixed
interval; the coordinator's :class:`LivenessTracker` stamps each arrival
and declares a worker dead once it has been silent for
``miss_threshold`` intervals.  The tracker takes an injectable clock so
failure detection is unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.common.config import NetConfig
from repro.common.errors import ClusterError, NetworkError
from repro.cluster.messages import heartbeat_args
from repro.net.rpc import RpcClient

__all__ = ["LivenessTracker", "HeartbeatSender"]


class LivenessTracker:
    """Last-seen timestamps plus the miss-threshold liveness judgment."""

    def __init__(
        self,
        interval: float,
        miss_threshold: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ClusterError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ClusterError("miss threshold must be >= 1")
        self.interval = float(interval)
        self.miss_threshold = int(miss_threshold)
        self.clock = clock
        self._last_seen: dict[str, float] = {}
        self._beats: dict[str, int] = {}
        self._rtts: dict[str, float] = {}
        self._lock = threading.Lock()

    @property
    def deadline(self) -> float:
        """Silence longer than this means dead."""
        return self.interval * self.miss_threshold

    def register(self, worker_id: str) -> None:
        """Start tracking a worker (registration counts as a first beat)."""
        with self._lock:
            self._last_seen[worker_id] = self.clock()
            self._beats.setdefault(worker_id, 0)

    def beat(self, worker_id: str, rtt_s: Optional[float] = None) -> None:
        with self._lock:
            if worker_id not in self._last_seen:
                return  # late heartbeat from a worker already declared dead
            self._last_seen[worker_id] = self.clock()
            self._beats[worker_id] += 1
            if rtt_s is not None and rtt_s >= 0:
                self._rtts[worker_id] = float(rtt_s)

    def remove(self, worker_id: str) -> None:
        with self._lock:
            self._last_seen.pop(worker_id, None)
            self._beats.pop(worker_id, None)
            self._rtts.pop(worker_id, None)

    def age(self, worker_id: str) -> float:
        """Seconds since the worker's last heartbeat."""
        with self._lock:
            if worker_id not in self._last_seen:
                raise ClusterError(f"worker {worker_id!r} is not tracked")
            return self.clock() - self._last_seen[worker_id]

    def alive(self, worker_id: str) -> bool:
        return self.age(worker_id) <= self.deadline

    def dead_workers(self) -> list[str]:
        """Workers whose silence has crossed the miss threshold."""
        now = self.clock()
        with self._lock:
            return [
                wid
                for wid, last in self._last_seen.items()
                if now - last > self.deadline
            ]

    def beats_of(self, worker_id: str) -> int:
        with self._lock:
            return self._beats.get(worker_id, 0)

    def rtt_of(self, worker_id: str) -> Optional[float]:
        """Latest heartbeat round-trip latency a worker reported, or
        ``None`` before its first measured beat arrives."""
        with self._lock:
            return self._rtts.get(worker_id)

    def tracked(self) -> list[str]:
        with self._lock:
            return list(self._last_seen)


class HeartbeatSender:
    """Worker-side thread pushing heartbeats to the coordinator.

    Reconnects on failure; after ``max_consecutive_failures`` straight
    misses it assumes the coordinator is gone and fires
    ``on_coordinator_lost`` so the orphaned worker process can exit
    instead of lingering forever.
    """

    def __init__(
        self,
        worker_id: str,
        coordinator: tuple[str, int],
        net: NetConfig,
        on_coordinator_lost: Optional[Callable[[], None]] = None,
        fault_hook: Optional[Callable] = None,
    ) -> None:
        self.worker_id = worker_id
        self.coordinator = coordinator
        self.net = net
        self.on_coordinator_lost = on_coordinator_lost
        #: Chaos seam (see ``RpcClient.fault_hook``): heartbeats go over
        #: their own connection, so partitioning data traffic away from a
        #: worker can leave its heartbeats flowing -- or vice versa.
        self.fault_hook = fault_hook
        self.max_consecutive_failures = max(2, 2 * net.heartbeat_miss_threshold)
        self.sent = 0
        self.last_rtt: float | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat:{worker_id}", daemon=True
        )
        self._client: RpcClient | None = None

    def start(self) -> "HeartbeatSender":
        self._thread.start()
        return self

    def _run(self) -> None:
        failures = 0
        rtt: float | None = None  # previous beat's round trip, shipped one late
        while not self._stop.wait(self.net.heartbeat_interval):
            try:
                if self._client is None:
                    self._client = RpcClient(*self.coordinator, net=self.net)
                    self._client.fault_hook = self.fault_hook
                started = time.monotonic()
                self._client.call(
                    "heartbeat",
                    heartbeat_args(self.worker_id, self.sent, rtt),
                    timeout=max(self.net.heartbeat_interval, 1.0),
                )
                rtt = time.monotonic() - started
                self.last_rtt = rtt
                self.sent += 1
                failures = 0
            except NetworkError:
                failures += 1
                rtt = None  # a reconnect's first beat carries no sample
                if self._client is not None:
                    self._client.close()
                    self._client = None
                if failures >= self.max_consecutive_failures:
                    if self.on_coordinator_lost is not None:
                        self.on_coordinator_lost()
                    return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        if self._client is not None:
            self._client.close()
            self._client = None
