"""Ship map/reduce functions to worker processes.

Plain :mod:`pickle` serializes functions *by reference* (module + name),
which fails for exactly the functions MapReduce users write: lambdas,
and closures like ``kmeans_map_fn(centroids)`` that capture iteration
state.  This module serializes such functions *by value*: the code object
via :mod:`marshal`, the closure cells, defaults, and -- crucially -- the
subset of module globals the code actually references, each captured
recursively (so a closure calling a helper function ships the helper too,
and a reference to ``numpy`` travels as a module name, not an object).

By-reference pickling is still used for functions in ``repro.*`` and
``numpy.*`` modules, which every worker can import; test code and user
scripts go by value so workers never need to import them.

Both sides of a cluster run the same interpreter (workers are spawned
from the coordinator's ``sys.executable``), so ``marshal``'s bytecode-
version sensitivity is not a concern.
"""

from __future__ import annotations

import builtins
import importlib
import marshal
import pickle
import types
from typing import Any

from repro.common.errors import SerializationError

__all__ = ["dumps_fn", "loads_fn"]

# Capture tags.
_PICKLE = "p"     # plain picklable value (incl. by-reference functions)
_FUNC = "f"       # function captured by value
_MODULE = "m"     # module, captured as its import name
_SELF = "s"       # the function currently being captured (recursion)
_EMPTY = "e"      # an empty closure cell

_BY_REFERENCE_PREFIXES = ("repro.", "numpy")


def dumps_fn(fn: Any) -> bytes:
    """Serialize a callable (or any picklable object) for the wire."""
    try:
        return pickle.dumps(_pack(fn, seen=()), protocol=pickle.HIGHEST_PROTOCOL)
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"cannot serialize {fn!r}: {exc}") from exc


def loads_fn(data: bytes) -> Any:
    """Rebuild what :func:`dumps_fn` produced."""
    try:
        return _unpack(pickle.loads(data))
    except SerializationError:
        raise
    except Exception as exc:
        raise SerializationError(f"cannot deserialize function payload: {exc}") from exc


# -- capture ------------------------------------------------------------------


def _pack(obj: Any, seen: tuple[int, ...]) -> tuple[str, Any]:
    if isinstance(obj, types.ModuleType):
        return (_MODULE, obj.__name__)
    if isinstance(obj, types.FunctionType):
        if id(obj) in seen:
            # Direct self-recursion: resolved against the function being
            # rebuilt.  (Mutual recursion between two by-value functions is
            # not supported -- capture would never terminate.)
            if id(obj) != seen[-1]:
                raise SerializationError(
                    f"mutually recursive by-value functions are not supported: {obj!r}"
                )
            return (_SELF, None)
        if _picklable_by_reference(obj):
            return (_PICKLE, obj)
        return (_FUNC, _capture(obj, seen + (id(obj),)))
    return (_PICKLE, obj)


def _picklable_by_reference(fn: types.FunctionType) -> bool:
    module = fn.__module__ or ""
    if not (module in ("builtins",) or any(module == p.rstrip(".") or module.startswith(p)
                                           for p in _BY_REFERENCE_PREFIXES)):
        return False
    try:
        return pickle.loads(pickle.dumps(fn)) is fn
    except Exception:
        return False


def _referenced_names(code: types.CodeType) -> set[str]:
    """Global names referenced by ``code`` or any code object nested in it."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


def _capture(fn: types.FunctionType, seen: tuple[int, ...]) -> dict[str, Any]:
    code = fn.__code__
    globs: dict[str, tuple[str, Any]] = {}
    fn_globals = fn.__globals__
    for name in sorted(_referenced_names(code)):
        if name in fn_globals:
            globs[name] = _pack(fn_globals[name], seen)
    closure: list[tuple[str, Any]] = []
    for cell in fn.__closure__ or ():
        try:
            closure.append(_pack(cell.cell_contents, seen))
        except ValueError:  # empty cell
            closure.append((_EMPTY, None))
    return {
        "code": marshal.dumps(code),
        "name": fn.__name__,
        "qualname": fn.__qualname__,
        "module": fn.__module__,
        "doc": fn.__doc__,
        "globals": globs,
        "closure": tuple(closure),
        "defaults": tuple(_pack(v, seen) for v in (fn.__defaults__ or ())),
        "kwdefaults": {k: _pack(v, seen) for k, v in (fn.__kwdefaults__ or {}).items()},
    }


# -- rebuild ------------------------------------------------------------------


def _unpack(packed: tuple[str, Any], self_ref: list | None = None) -> Any:
    tag, value = packed
    if tag == _PICKLE:
        return value
    if tag == _MODULE:
        return importlib.import_module(value)
    if tag == _EMPTY:
        return _EMPTY_CELL
    if tag == _SELF:
        if self_ref is None:
            raise SerializationError("self-reference outside a function capture")
        return self_ref  # placeholder; patched once the function exists
    if tag == _FUNC:
        return _rebuild(value)
    raise SerializationError(f"unknown capture tag {tag!r}")


_EMPTY_CELL = object()


def _rebuild(cap: dict[str, Any]) -> types.FunctionType:
    self_ref: list = []
    g: dict[str, Any] = {"__builtins__": builtins}
    patches: list[tuple[str, str]] = []  # (kind, key/index) needing the self ref
    for name, packed in cap["globals"].items():
        value = _unpack(packed, self_ref)
        if value is self_ref:
            patches.append(("global", name))
        else:
            g[name] = value
    cells = []
    cell_patches: list[int] = []
    for i, packed in enumerate(cap["closure"]):
        value = _unpack(packed, self_ref)
        if value is _EMPTY_CELL:
            cells.append(types.CellType())
        elif value is self_ref:
            cells.append(types.CellType())
            cell_patches.append(i)
        else:
            cells.append(types.CellType(value))
    defaults = tuple(_unpack(p, self_ref) for p in cap["defaults"])
    fn = types.FunctionType(
        marshal.loads(cap["code"]), g, cap["name"], defaults or None, tuple(cells)
    )
    fn.__qualname__ = cap["qualname"]
    fn.__module__ = cap["module"]
    fn.__doc__ = cap["doc"]
    if cap["kwdefaults"]:
        fn.__kwdefaults__ = {k: _unpack(p, self_ref) for k, p in cap["kwdefaults"].items()}
    for kind, name in patches:
        g[name] = fn
    for i in cell_patches:
        cells[i].cell_contents = fn
    return fn
