"""The cluster coordinator: ring, scheduler, job state, liveness.

The coordinator is the control plane only -- the paper's data paths
(block reads, spill pushes) run worker-to-worker.  It owns:

* the DHT ring and the block/metadata placement derived from it;
* the LAF (or delay) scheduler and its hash key table;
* worker addresses, the heartbeat-fed :class:`LivenessTracker`, and the
  failover procedure: a dead worker's arc merges into its successor's
  (ring removal), lost copies are re-replicated from survivors, and the
  new ring table is broadcast to every live worker.

RPC/heartbeat traffic is counted into one :class:`MetricsRegistry`
shared with the runtime, so ``eclipsemr-repro cluster`` can print it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Hashable, Optional, Sequence

from repro.chaos.plane import FaultInjector
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ClusterError,
    NetworkError,
    RpcRemoteError,
    SchedulingError,
    WorkerLost,
)
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dfs.metadata import BlockDescriptor, FileMetadata
from repro.dht.ring import ConsistentHashRing
from repro.cluster.heartbeat import LivenessTracker
from repro.cluster.messages import CompletionMarker, RingTable, WorkerAddress
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcServer
from repro.scheduler.base import Scheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.laf import LAFScheduler
from repro.sim.metrics import MetricsRegistry

__all__ = ["Coordinator"]


class Coordinator:
    """Owns cluster-wide state; never touches payload bytes on the data path
    (except when restoring replication after a failure)."""

    def __init__(
        self,
        worker_ids: Sequence[str],
        config: ClusterConfig | None = None,
        scheduler: str | Scheduler = "laf",
        space: HashSpace = DEFAULT_SPACE,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.worker_ids = [str(w) for w in worker_ids]
        if not self.worker_ids:
            raise ClusterError("cluster needs at least one worker")
        if len(set(self.worker_ids)) != len(self.worker_ids):
            raise ClusterError("duplicate worker ids")
        self.config = config or ClusterConfig()
        self.space = space
        self.metrics = metrics or MetricsRegistry()
        self.ring = ConsistentHashRing(space)
        for wid in self.worker_ids:
            self.ring.add_node(wid)
        if isinstance(scheduler, Scheduler):
            self.scheduler = scheduler
        elif scheduler == "laf":
            self.scheduler = LAFScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.ring
            )
        elif scheduler == "delay":
            self.scheduler = DelayScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.ring
            )
        else:
            raise SchedulingError(f"unknown scheduler {scheduler!r}")

        self.metadata: dict[str, FileMetadata] = {}
        self.holders: dict[tuple[str, int], list[str]] = {}
        self.block_keys: dict[tuple[str, int], int] = {}
        # Completion markers: per-map spill manifests for oCache replay,
        # keyed like the sequential plane's ``_imr-done/...`` objects.
        self.markers: dict[tuple[str, str, int], CompletionMarker] = {}
        self.addresses: dict[str, WorkerAddress] = {}
        self.epoch = 0
        self.liveness = LivenessTracker(
            self.config.net.heartbeat_interval,
            self.config.net.heartbeat_miss_threshold,
        )
        self.pool = ConnectionPool(self.config.net, metrics=self.metrics)
        self._registered = threading.Event()
        self._lock = threading.Lock()
        self.server = RpcServer(
            {"register": self._handle_register, "heartbeat": self._handle_heartbeat},
            net=self.config.net,
            metrics=self.metrics,
        )
        # The coordinator's slice of the chaos plane: faults scripted with
        # src/dst "coordinator" fire here; workers run their own injector
        # from the same (manifest-carried) config.  Inactive configs leave
        # the transport hooks unset.
        self.fault = FaultInjector("coordinator", self.config.chaos,
                                   metrics=self.metrics)
        if self.fault.active:
            self.pool.fault_hook = self.fault.on_send
            self.server.fault_hook = self.fault.on_serve
        self.server.start()
        self._update_live_gauge()

    # -- registration & heartbeats -------------------------------------------------

    def _handle_register(self, worker_id: str, host: str, port: int) -> bool:
        with self._lock:
            if worker_id not in self.worker_ids:
                raise ClusterError(f"unexpected worker {worker_id!r} tried to register")
            self.addresses[worker_id] = WorkerAddress(worker_id, host, port)
            complete = len(self.addresses) == len(self.worker_ids)
        self.fault.bind(worker_id, (host, port))
        self.liveness.register(worker_id)
        self.metrics.counter("cluster.registrations").inc()
        if complete:
            self._registered.set()
        return True

    def _handle_heartbeat(self, worker_id: str, seq: int) -> bool:
        self.liveness.beat(worker_id)
        self.metrics.counter("heartbeat.received").inc()
        return True

    def wait_for_workers(self, timeout: float) -> None:
        if not self._registered.wait(timeout):
            missing = sorted(set(self.worker_ids) - set(self.addresses))
            raise ClusterError(
                f"workers {missing} did not register within {timeout:.1f}s"
            )

    def set_stream_page_hook(self, hook) -> None:
        """Observe streamed-response pages on the coordinator's connections.

        ``hook(worker_addr, pages_so_far)`` fires as each page of a
        streamed reduce output (or any streamed RPC response) arrives.
        The fault-injection suite uses this to kill a worker between two
        of its ``stream chunk`` frames -- deterministic mid-stream death.
        """
        self.pool.stream_page_hook = hook

    # -- membership ------------------------------------------------------------------

    def alive_ids(self) -> list[str]:
        """Registered workers not yet declared dead, in creation order."""
        return [wid for wid in self.worker_ids if wid in self.addresses]

    def address_of(self, worker_id: str) -> WorkerAddress:
        try:
            return self.addresses[worker_id]
        except KeyError:
            raise WorkerLost(worker_id, "no registered address") from None

    def ring_table(self) -> RingTable:
        return RingTable.from_ring(self.ring, epoch=self.epoch)

    def broadcast_ring(self) -> None:
        """Push the current ring + peer addresses to every live worker,
        concurrently (each worker applies it independently; epoch stamps
        make stale deliveries harmless)."""
        wire = self.ring_table().to_wire()
        peers = {wid: a.addr for wid, a in self.addresses.items()}
        args = {"ring": wire, "peers": peers}

        def push(wid: str) -> None:
            try:
                self.pool.call(self.address_of(wid).addr, "update_ring", args)
            except NetworkError as exc:
                raise WorkerLost(wid, f"ring broadcast failed: {exc}") from exc

        self._fan_out(push, self.alive_ids())

    def check_heartbeats(self) -> list[str]:
        """Workers the heartbeat stream has declared dead (not yet removed)."""
        dead = self.liveness.dead_workers()
        if dead:
            self.metrics.counter("heartbeat.missed_deadlines").inc(len(dead))
        ages = []
        for wid in self.liveness.tracked():
            try:
                ages.append(self.liveness.age(wid))
            except ClusterError:
                continue  # removed between tracked() and age()
        if ages:
            self.metrics.gauge("heartbeat.max_age_s").set(max(ages))
        return dead

    def mark_dead(self, worker_id: str) -> None:
        """Fail a worker over: merge its arc, restore replication, re-ring.

        The dead worker's key range transfers to its ring successor, which
        by the paper's placement rule already replicates that range -- so
        every block stays readable.  Blocks that dropped below the
        replication factor are re-copied from survivors.
        """
        with self._lock:
            if worker_id not in self.addresses:
                return  # already failed over
            if len(self.addresses) == 1:
                raise ClusterError("cannot fail the last worker")
            gone = self.addresses.pop(worker_id)
            self.epoch += 1
        self.liveness.remove(worker_id)
        self.pool.close_address(gone.addr)
        self.ring.remove_node(worker_id)
        self.scheduler.remove_server(worker_id)
        self.metrics.counter("cluster.failovers").inc()
        self._update_live_gauge()
        lost = [bid for bid, hs in self.holders.items() if worker_id in hs]
        for bid in lost:
            self.holders[bid] = [h for h in self.holders[bid] if h != worker_id]
            if not self.holders[bid]:
                raise ClusterError(
                    f"all copies of block {bid} died with worker {worker_id!r}"
                )
        self._restore_replication(lost)
        self.broadcast_ring()

    def _restore_replication(self, block_ids: list[tuple[str, int]]) -> None:
        """Copy under-replicated blocks to their new replica holders, batched.

        Adaptive re-replication (ROADMAP item): each block is fetched
        *once*, from its least-loaded surviving holder (the LAF scheduler
        already tracks loads), and all copies bound for one target ship
        as a single pipelined :meth:`ConnectionPool.call_many` batch of
        ``restore_block`` calls with out-of-band payloads -- one wire
        round per target instead of one blocking RPC per block copy.  A
        target dying mid-batch surfaces as :class:`WorkerLost` so the
        failover loop can cascade onto it.
        """
        batches: dict[str, list[tuple[tuple[str, int], bytes, bool]]] = {}
        for bid in block_ids:
            key = self.block_keys[bid]
            targets = self.ring.replica_set(key, extra=self.config.dfs.replication)
            missing = [t for t in targets
                       if t not in self.holders[bid] and t in self.addresses]
            if not missing:
                continue
            data = self._fetch_from_any(bid, self.holders[bid])
            for target in missing:
                batches.setdefault(target, []).append(
                    (bid, data, target != targets[0])
                )
        for target, entries in batches.items():
            calls = [
                ("restore_block",
                 {"name": bid[0], "index": bid[1], "replica": replica},
                 data, "data")
                for bid, data, replica in entries
            ]
            try:
                self.pool.call_many(self.address_of(target).addr, calls)
            except NetworkError as exc:
                raise WorkerLost(target, f"re-replication failed: {exc}") from exc
            batch_bytes = 0
            for bid, data, _ in entries:
                self.holders[bid].append(target)
                batch_bytes += len(data)
                self.metrics.counter("failover.blocks_rereplicated").inc()
            self.metrics.counter("failover.bytes_rereplicated").inc(batch_bytes)
            self.metrics.counter("failover.rereplication_batches").inc()
            self.metrics.histogram("failover.rereplication_batch_bytes").record(batch_bytes)

    def ensure_replication(self) -> None:
        """Bring *every* block back to its replica target (post-cascade).

        A worker dying while it was a re-replication target leaves other
        blocks under-replicated; scanning all holders after the cluster
        stabilizes closes that hole.  Fully replicated blocks cost one
        membership check each, no bytes.
        """
        self._restore_replication(list(self.holders))

    def _fetch_from_any(self, bid: tuple[str, int], holders: list[str]) -> bytes:
        """Read one block for re-replication: best holders first, with retry.

        Candidates are the live *recorded* holders ordered by current
        scheduler load (least-loaded first -- they also serve map tasks),
        then every other survivor as a long shot against stale holder
        records.  Each sweep gives every candidate one transport attempt;
        sweeps retry under the pool's :class:`RetryPolicy` (backoff,
        ``max_elapsed`` deadline included).  A candidate answering
        ``BlockNotFound`` is skipped, not fatal.
        """
        args = {"name": bid[0], "index": bid[1]}
        one_shot = RetryPolicy(attempts=1, base_delay=self.pool.policy.base_delay)

        def candidates() -> list[str]:
            recorded = [w for w in holders if w in self.addresses]
            recorded.sort(key=self._load_rank)
            return recorded + [w for w in self.alive_ids() if w not in recorded]

        def sweep() -> bytes:
            last: Exception | None = None
            for wid in candidates():
                try:
                    return bytes(self.pool.call(self.address_of(wid).addr,
                                                "fetch_block", args,
                                                policy=one_shot))
                except RpcRemoteError as exc:
                    if exc.etype != "BlockNotFound":
                        raise ClusterError(
                            f"survivor {wid!r} failed serving block {bid}: {exc}"
                        ) from exc
                    last = exc  # stale holder record; try the next one
                except (NetworkError, WorkerLost) as exc:
                    last = exc
            if isinstance(last, NetworkError) and not isinstance(last, RpcRemoteError):
                raise last  # retryable: the outer policy sweeps again
            raise ClusterError(  # BlockNotFound everywhere: retry won't help
                f"could not read block {bid} from any survivor: {last}"
            )

        try:
            return self.pool.policy.call(sweep, retry_on=(NetworkError,))
        except NetworkError as exc:
            raise ClusterError(
                f"could not read block {bid} from any survivor: {exc}"
            ) from exc

    def _load_rank(self, wid: str) -> tuple[int, int]:
        """Sort key: current scheduler load, ties broken by worker order."""
        try:
            load = self.scheduler.load_of(wid)
        except (KeyError, SchedulingError):
            load = 0
        return (load, self.worker_ids.index(wid))

    def _update_live_gauge(self) -> None:
        self.metrics.gauge("cluster.live_workers").set(len(self.addresses))

    @staticmethod
    def _fan_out(fn, items: Sequence, max_workers: int = 16) -> list:
        """Run ``fn`` over ``items`` concurrently; results keep item order.

        Every call is drained before the first raised error propagates,
        so no thread is abandoned mid-RPC.
        """
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            return [fn(items[0])]
        results: list = []
        first_error: Exception | None = None
        with ThreadPoolExecutor(max_workers=min(max_workers, len(items)),
                                thread_name_prefix="coord-fanout") as pool:
            for future in [pool.submit(fn, item) for item in items]:
                try:
                    results.append(future.result())
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- data placement ----------------------------------------------------------------

    def upload(
        self,
        name: str,
        data: bytes,
        *,
        owner: str = "user",
        permissions: int = 0o644,
        tags: dict[str, str] | None = None,
    ) -> FileMetadata:
        """Split a file into blocks and spread them over the worker shards.

        Placement (replica sets, holders, descriptors) is computed
        serially so metadata is deterministic; the puts themselves fan
        out concurrently, each shipping its payload out-of-band beside a
        tiny envelope (no pickle copy of the block bytes).
        """
        if name in self.metadata:
            raise ClusterError(f"file {name!r} already exists")
        block_size = self.config.dfs.block_size
        view = memoryview(data)  # block payloads are zero-copy slices
        descriptors: list[BlockDescriptor] = []
        puts: list[tuple[str, dict, Any]] = []  # (wid, args, payload)
        index = 0
        offset = 0
        total = len(data)
        while True:
            this_size = min(block_size, total - offset)
            if this_size <= 0 and index > 0:
                break
            key = self.space.block_key(name, index)
            payload = view[offset : offset + this_size]
            replicas = self.ring.replica_set(key, extra=self.config.dfs.replication)
            for i, wid in enumerate(replicas):
                puts.append((wid, {"name": name, "index": index, "replica": i > 0},
                             payload))
            self.holders[(name, index)] = list(replicas)
            self.block_keys[(name, index)] = key
            descriptors.append(BlockDescriptor(index, key, this_size))
            self.metrics.counter("cluster.blocks_uploaded").inc()
            offset += this_size
            index += 1
            if offset >= total:
                break

        def put(entry: tuple[str, dict, Any]) -> None:
            wid, args, payload = entry
            try:
                self.pool.call(self.address_of(wid).addr, "put_block", args,
                               blob=payload, blob_arg="data")
            except NetworkError as exc:
                raise WorkerLost(wid, f"block upload failed: {exc}") from exc

        self._fan_out(put, puts)
        meta = FileMetadata(
            name=name, owner=owner, size=total, permissions=permissions,
            created_at=0.0, blocks=descriptors, tags=dict(tags or {}),
        )
        self.metadata[name] = meta
        return meta

    def stat(self, name: str, user: str = "user", *, write: bool = False) -> FileMetadata:
        try:
            meta = self.metadata[name]
        except KeyError:
            from repro.common.errors import FileNotFound

            raise FileNotFound(f"no such file: {name!r}") from None
        meta.check_access(user, write=write)
        return meta

    def block_holders(self, name: str, index: int) -> list[WorkerAddress]:
        """Live holders of one block, primaries first."""
        return [
            self.addresses[wid]
            for wid in self.holders.get((name, index), [])
            if wid in self.addresses
        ]

    # -- completion markers (oCache replay) --------------------------------------

    def record_marker(self, marker: CompletionMarker) -> None:
        """Store (or overwrite) one map task's completion marker.

        Markers are metadata and live here with the file metadata -- the
        spill payloads they name stay sharded on the destination
        workers, exactly like blocks."""
        with self._lock:
            self.markers[(marker.app_id, marker.input_file, marker.block_index)] = marker

    def marker_for(self, app_id: str, input_file: str, block_index: int) -> Optional[CompletionMarker]:
        """The completion marker for one map task, if one was recorded."""
        with self._lock:
            return self.markers.get((app_id, input_file, block_index))

    # -- teardown -----------------------------------------------------------------------

    def shutdown(self) -> None:
        policy = RetryPolicy(attempts=1, base_delay=0.01)

        def tell(wid: str) -> None:
            try:
                self.pool.call(self.address_of(wid).addr, "shutdown",
                               timeout=2.0, policy=policy)
            except NetworkError:
                pass  # it is being killed anyway

        self._fan_out(tell, self.alive_ids())
        self.pool.close_all()
        self.server.stop()
