"""The cluster coordinator: ring, scheduler, job state, liveness.

The coordinator is the control plane only -- the paper's data paths
(block reads, spill pushes) run worker-to-worker.  It owns:

* the DHT ring and the block/metadata placement derived from it;
* the LAF (or delay) scheduler and its hash key table;
* worker addresses, the heartbeat-fed :class:`LivenessTracker`, and the
  failover procedure: a dead worker's arc merges into its successor's
  (ring removal), lost copies are re-replicated from survivors, and the
  new ring table is broadcast to every live worker.

RPC/heartbeat traffic is counted into one :class:`MetricsRegistry`
shared with the runtime, so ``eclipsemr-repro cluster`` can print it.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Hashable, Optional, Sequence

from repro.chaos.plane import FaultInjector
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ClusterError,
    NetworkError,
    RpcRemoteError,
    SchedulingError,
    WorkerLost,
)
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dfs.metadata import BlockDescriptor, FileMetadata
from repro.dht.ring import ConsistentHashRing
from repro.cluster.health import HealthMonitor
from repro.cluster.heartbeat import LivenessTracker
from repro.cluster.messages import CompletionMarker, RingTable, WorkerAddress
from repro.net.retry import RetryPolicy
from repro.net.rpc import ConnectionPool, RpcServer
from repro.scheduler.base import Scheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.laf import LAFScheduler
from repro.sim.metrics import MetricsRegistry

__all__ = ["Coordinator"]


class Coordinator:
    """Owns cluster-wide state; never touches payload bytes on the data path
    (except when restoring replication after a failure)."""

    def __init__(
        self,
        worker_ids: Sequence[str],
        config: ClusterConfig | None = None,
        scheduler: str | Scheduler = "laf",
        space: HashSpace = DEFAULT_SPACE,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.worker_ids = [str(w) for w in worker_ids]
        if not self.worker_ids:
            raise ClusterError("cluster needs at least one worker")
        if len(set(self.worker_ids)) != len(self.worker_ids):
            raise ClusterError("duplicate worker ids")
        self.config = config or ClusterConfig()
        self.space = space
        self.metrics = metrics or MetricsRegistry()
        self.ring = ConsistentHashRing(space)
        for wid in self.worker_ids:
            self.ring.add_node(wid)
        if isinstance(scheduler, Scheduler):
            self.scheduler = scheduler
        elif scheduler == "laf":
            self.scheduler = LAFScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.ring
            )
        elif scheduler == "delay":
            self.scheduler = DelayScheduler(
                space, self.worker_ids, self.config.scheduler, ring=self.ring
            )
        else:
            raise SchedulingError(f"unknown scheduler {scheduler!r}")

        self.metadata: dict[str, FileMetadata] = {}
        self.holders: dict[tuple[str, int], list[str]] = {}
        self.block_keys: dict[tuple[str, int], int] = {}
        # Completion markers: per-map spill manifests for oCache replay,
        # keyed like the sequential plane's ``_imr-done/...`` objects.
        self.markers: dict[tuple[str, str, int], CompletionMarker] = {}
        self.addresses: dict[str, WorkerAddress] = {}
        self.epoch = 0
        self.liveness = LivenessTracker(
            self.config.net.heartbeat_interval,
            self.config.net.heartbeat_miss_threshold,
        )
        # Gray-failure plane: heartbeat RTTs feed it here; the scheduler
        # feeds slow-task/timeout signals and consults the quarantine
        # judgment at dispatch.  Disabled configs make it inert.
        self.health = HealthMonitor(self.config.health, metrics=self.metrics)
        self.pool = ConnectionPool(self.config.net, metrics=self.metrics)
        self._registered = threading.Event()
        # Per-worker registration events for workers expected *after*
        # startup (elastic joins): the monitored set follows live
        # membership instead of the list captured at construction.
        self._register_events: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self.server = RpcServer(
            {"register": self._handle_register, "heartbeat": self._handle_heartbeat},
            net=self.config.net,
            metrics=self.metrics,
        )
        # The coordinator's slice of the chaos plane: faults scripted with
        # src/dst "coordinator" fire here; workers run their own injector
        # from the same (manifest-carried) config.  Inactive configs leave
        # the transport hooks unset.
        self.fault = FaultInjector("coordinator", self.config.chaos,
                                   metrics=self.metrics)
        if self.fault.active:
            self.pool.fault_hook = self.fault.on_send
            self.server.fault_hook = self.fault.on_serve
        self.server.start()
        self._update_live_gauge()

    # -- registration & heartbeats -------------------------------------------------

    def _handle_register(self, worker_id: str, host: str, port: int) -> bool:
        with self._lock:
            if worker_id not in self.worker_ids:
                raise ClusterError(f"unexpected worker {worker_id!r} tried to register")
            self.addresses[worker_id] = WorkerAddress(worker_id, host, port)
            complete = len(self.addresses) == len(self.worker_ids)
            joined = self._register_events.get(worker_id)
        self.fault.bind(worker_id, (host, port))
        # Registration enters the worker into the liveness tracker, so the
        # heartbeat sweep monitors joiners exactly like startup workers --
        # a joiner that goes silent is detected, not silently untracked.
        self.liveness.register(worker_id)
        self.metrics.counter("cluster.registrations").inc()
        # Keep the live-membership gauge truthful from startup on: it was
        # only written by membership *events*, so a cluster that never
        # joined/drained/failed scraped as "0 live workers" forever.
        self._update_live_gauge()
        if complete:
            self._registered.set()
        if joined is not None:
            joined.set()
        return True

    def _handle_heartbeat(
        self, worker_id: str, seq: int, rtt_s: float | None = None
    ) -> bool:
        self.liveness.beat(worker_id, rtt_s=rtt_s)
        if rtt_s is not None:
            self.health.observe_rtt(worker_id, rtt_s)
        self.metrics.counter("heartbeat.received").inc()
        return True

    def wait_for_workers(self, timeout: float) -> None:
        if not self._registered.wait(timeout):
            missing = sorted(set(self.worker_ids) - set(self.addresses))
            raise ClusterError(
                f"workers {missing} did not register within {timeout:.1f}s"
            )

    def set_stream_page_hook(self, hook) -> None:
        """Observe streamed-response pages on the coordinator's connections.

        ``hook(worker_addr, pages_so_far)`` fires as each page of a
        streamed reduce output (or any streamed RPC response) arrives.
        The fault-injection suite uses this to kill a worker between two
        of its ``stream chunk`` frames -- deterministic mid-stream death.
        """
        self.pool.stream_page_hook = hook

    # -- membership ------------------------------------------------------------------

    def alive_ids(self) -> list[str]:
        """Registered workers not yet declared dead, in creation order."""
        return [wid for wid in self.worker_ids if wid in self.addresses]

    def address_of(self, worker_id: str) -> WorkerAddress:
        try:
            return self.addresses[worker_id]
        except KeyError:
            raise WorkerLost(worker_id, "no registered address") from None

    def ring_table(self) -> RingTable:
        return RingTable.from_ring(self.ring, epoch=self.epoch)

    def broadcast_ring(self) -> None:
        """Push the current ring + peer addresses to every live worker,
        concurrently (each worker applies it independently; epoch stamps
        make stale deliveries harmless)."""
        wire = self.ring_table().to_wire()
        peers = {wid: a.addr for wid, a in self.addresses.items()}
        args = {"ring": wire, "peers": peers}

        def push(wid: str) -> None:
            try:
                self.pool.call(self.address_of(wid).addr, "update_ring", args)
            except NetworkError as exc:
                raise WorkerLost(wid, f"ring broadcast failed: {exc}") from exc

        self._fan_out(push, self.alive_ids())

    def check_heartbeats(self) -> list[str]:
        """Workers the heartbeat stream has declared dead (not yet removed)."""
        dead = self.liveness.dead_workers()
        if dead:
            self.metrics.counter("heartbeat.missed_deadlines").inc(len(dead))
        ages = self.heartbeat_ages()
        if ages:
            self.metrics.gauge("heartbeat.max_age_s").set(max(ages.values()))
        return dead

    def heartbeat_ages(self) -> dict[str, float]:
        """Seconds since each tracked worker's last heartbeat (observability).

        A passive read of the liveness tracker: no deadline judgment, no
        metric writes -- the observe endpoint samples this next to
        ``get_stats`` so the dashboard can show per-worker silence.
        """
        ages: dict[str, float] = {}
        for wid in self.liveness.tracked():
            try:
                ages[wid] = self.liveness.age(wid)
            except ClusterError:
                continue  # removed between tracked() and age()
        return ages

    def heartbeat_rtts(self) -> dict[str, float]:
        """Latest worker-reported heartbeat round trips (observability).

        Mirrors :meth:`heartbeat_ages`: a passive read for the observe
        endpoint.  Workers that have not yet shipped a measured beat
        (the RTT rides one beat late) are simply absent.
        """
        rtts: dict[str, float] = {}
        for wid in self.liveness.tracked():
            rtt = self.liveness.rtt_of(wid)
            if rtt is not None:
                rtts[wid] = rtt
        return rtts

    def mark_dead(self, worker_id: str) -> None:
        """Fail a worker over: merge its arc, restore replication, re-ring.

        The dead worker's key range transfers to its ring successor, which
        by the paper's placement rule already replicates that range -- so
        every block stays readable.  Blocks that dropped below the
        replication factor are re-copied from survivors.
        """
        with self._lock:
            if worker_id not in self.addresses:
                return  # already failed over
            if len(self.addresses) == 1:
                raise ClusterError("cannot fail the last worker")
            gone = self.addresses.pop(worker_id)
            self.epoch += 1
        self.liveness.remove(worker_id)
        self.health.forget(worker_id)
        self.pool.close_address(gone.addr)
        # A worker can die half-way through a membership op that already
        # took it off the ring (a drain's handoff, an aborted join), so
        # ring/scheduler removal must tolerate it being gone already.
        if worker_id in self.ring:
            self.ring.remove_node(worker_id)
        try:
            self.scheduler.remove_server(worker_id)
        except SchedulingError:
            pass
        self.metrics.counter("cluster.failovers").inc()
        self._update_live_gauge()
        lost = [bid for bid, hs in self.holders.items() if worker_id in hs]
        for bid in lost:
            self.holders[bid] = [h for h in self.holders[bid] if h != worker_id]
            if not self.holders[bid]:
                raise ClusterError(
                    f"all copies of block {bid} died with worker {worker_id!r}"
                )
        self._restore_replication(lost)
        self.broadcast_ring()

    # -- elastic membership (live join / graceful drain) ----------------------------

    def expect_worker(self, worker_id: str) -> None:
        """Announce a joiner: admit its registration before it spawns.

        Appends the id to the mutable member list (so ``_handle_register``
        accepts it and enters it into the liveness tracker) and arms a
        per-worker registration event for :meth:`wait_for_worker`.
        """
        worker_id = str(worker_id)
        with self._lock:
            if worker_id in self.addresses:
                raise ClusterError(f"worker {worker_id!r} is already a live member")
            if worker_id not in self.worker_ids:
                self.worker_ids.append(worker_id)
            self._register_events[worker_id] = threading.Event()

    def wait_for_worker(self, worker_id: str, timeout: float) -> None:
        """Block until an expected joiner registers (or declare it lost)."""
        with self._lock:
            event = self._register_events.get(worker_id)
        if event is None:
            raise ClusterError(f"worker {worker_id!r} was never expected")
        if not event.wait(timeout):
            raise WorkerLost(
                worker_id, f"joiner did not register within {timeout:.1f}s"
            )

    def admit_worker(self, worker_id: str) -> None:
        """Admit a registered joiner into the ring and hand its arc over.

        The joiner takes the arc between its ring predecessor and its own
        position; every block whose (post-join) replica set includes the
        joiner is streamed to it through the batched ``call_many``
        re-replication path, under ``membership.*`` metrics.  The
        scheduler re-cuts its hash key table over the enlarged set (a
        pristine LAF table re-seeds from the new ring, keeping an
        idle-cluster join bit-equal to a fresh cluster of the resulting
        size), and the bumped-epoch ring is broadcast to every member.
        A joiner dying mid-handoff surfaces as :class:`WorkerLost`; the
        caller rolls back with :meth:`abort_join`.
        """
        with self._lock:
            if worker_id not in self.addresses:
                raise WorkerLost(worker_id, "joiner never registered")
            self.epoch += 1
        # Guarded for retry: a concurrent death mid-admit fails over and
        # the caller re-enters with the ring/scheduler already updated.
        if worker_id not in self.ring:
            self.ring.add_node(worker_id)
        if worker_id not in self.scheduler.servers:
            self.scheduler.add_server(worker_id, ring=self.ring)
        self._update_live_gauge()
        self._restore_replication(list(self.holders),
                                  metric_names=self._MEMBERSHIP_METRICS)
        self.broadcast_ring()
        with self._lock:
            self._register_events.pop(worker_id, None)
        self.metrics.counter("membership.joins").inc()

    def abort_join(self, worker_id: str, reason: str = "") -> None:
        """Roll back a failed join: the cluster returns to its prior state.

        Safe at any point of the join -- ring/scheduler/address/liveness
        state is undone only where it was applied.  The ring (with a
        bumped epoch) is re-broadcast so any member that saw the joiner's
        arc forgets it.
        """
        with self._lock:
            gone = self.addresses.pop(worker_id, None)
            self._register_events.pop(worker_id, None)
            if worker_id in self.worker_ids:
                self.worker_ids.remove(worker_id)
            self.epoch += 1
        self.liveness.remove(worker_id)
        self.health.forget(worker_id)
        if gone is not None:
            self.pool.close_address(gone.addr)
        if worker_id in self.ring:
            self.ring.remove_node(worker_id)
        try:
            self.scheduler.remove_server(worker_id)
        except SchedulingError:
            pass  # never admitted to the scheduler
        for bid, hs in self.holders.items():
            if worker_id in hs:
                self.holders[bid] = [h for h in hs if h != worker_id]
        self._update_live_gauge()
        self.metrics.counter("membership.joins_aborted").inc()
        self.broadcast_ring()

    def drain_worker(self, worker_id: str) -> None:
        """Gracefully retire a live worker: push state out, leave clean.

        The inverse of a join, and unlike :meth:`mark_dead` it spends no
        failover budget and loses nothing: the drainee's arc merges into
        its ring successor *while the drainee still serves reads*, every
        block it held is re-replicated onto the post-drain replica set
        (the drainee itself is the preferred source), its persisted spill
        objects are pushed worker-to-worker to the successor, and
        completion markers naming it as a spill destination are rewritten
        to the successor so oCache replay keeps working.  Only then does
        the drainee leave the address book and the ring broadcast go out.
        """
        with self._lock:
            if worker_id not in self.addresses:
                raise ClusterError(f"cannot drain {worker_id!r}: not a live member")
            if len(self.addresses) == 1:
                raise ClusterError("cannot drain the last worker")
            self.epoch += 1
        # Guarded for retry: a concurrent death mid-drain fails over and
        # the caller re-enters with the drainee already off the ring; its
        # successor is then whoever owns the drainee's old position.
        if worker_id in self.ring:
            successor = self.ring.successor(worker_id)
            self.ring.remove_node(worker_id)
        else:
            successor = self.ring.owner_of(self.space.key_of(str(worker_id)))
        if worker_id in self.scheduler.servers:
            self.scheduler.drain_server(worker_id, ring=self.ring)
        # Hand off block state.  The drainee is still addressable and
        # still a recorded holder, so it ranks as a fetch source; the
        # post-drain ring never targets it.
        held = [bid for bid, hs in self.holders.items() if worker_id in hs]
        self._restore_replication(held, metric_names=self._MEMBERSHIP_METRICS)
        # Hand off spill objects worker-to-worker (the coordinator stays
        # off the data path): the drainee batches its persisted spill
        # objects to the successor over one pipelined connection.
        succ_addr = self.address_of(successor)
        try:
            report = self.pool.call(
                self.address_of(worker_id).addr, "handoff_spills",
                {"host": succ_addr.host, "port": succ_addr.port},
                timeout=self.config.membership.drain_timeout,
            )
        except NetworkError as exc:
            raise WorkerLost(worker_id, f"drain handoff failed: {exc}") from exc
        self.metrics.counter("membership.spill_objects_handed_off").inc(
            int(report.get("objects", 0))
        )
        self.metrics.counter("membership.spill_bytes_handed_off").inc(
            int(report.get("bytes", 0))
        )
        with self._lock:
            # Replay markers follow the spill objects to the successor.
            for key, marker in list(self.markers.items()):
                if worker_id in marker.dests():
                    self.markers[key] = CompletionMarker(
                        app_id=marker.app_id,
                        input_file=marker.input_file,
                        block_index=marker.block_index,
                        entries=tuple(
                            (successor if dest == worker_id else dest, sid, nbytes)
                            for dest, sid, nbytes in marker.entries
                        ),
                    )
        for bid in held:
            self.holders[bid] = [h for h in self.holders[bid] if h != worker_id]
        with self._lock:
            gone = self.addresses.pop(worker_id)
        self.liveness.remove(worker_id)
        self.health.forget(worker_id)
        self._update_live_gauge()
        self.broadcast_ring()
        # Best-effort shutdown: the drainee is out of the ring either way.
        policy = RetryPolicy(attempts=1, base_delay=0.01)
        try:
            self.pool.call(gone.addr, "shutdown", timeout=2.0, policy=policy)
        except NetworkError:
            pass
        self.pool.close_address(gone.addr)
        self.metrics.counter("membership.drains").inc()

    # Metric-name quads for the batched copy path: (blocks, bytes,
    # batches, batch-bytes histogram).  Failover and elastic membership
    # share the mechanism but report under their own names so a graceful
    # drain never shows up as recovery traffic.
    _FAILOVER_METRICS = (
        "failover.blocks_rereplicated",
        "failover.bytes_rereplicated",
        "failover.rereplication_batches",
        "failover.rereplication_batch_bytes",
    )
    _MEMBERSHIP_METRICS = (
        "membership.blocks_handed_off",
        "membership.bytes_handed_off",
        "membership.handoff_batches",
        "membership.handoff_batch_bytes",
    )

    def _restore_replication(
        self,
        block_ids: list[tuple[str, int]],
        metric_names: tuple[str, str, str, str] | None = None,
    ) -> None:
        """Copy under-replicated blocks to their new replica holders, batched.

        Adaptive re-replication (ROADMAP item): each block is fetched
        *once*, from its least-loaded surviving holder (the LAF scheduler
        already tracks loads), and all copies bound for one target ship
        as a single pipelined :meth:`ConnectionPool.call_many` batch of
        ``restore_block`` calls with out-of-band payloads -- one wire
        round per target instead of one blocking RPC per block copy.  A
        target dying mid-batch surfaces as :class:`WorkerLost` so the
        failover loop can cascade onto it.  Elastic membership reuses the
        same path for join/drain handoff under ``metric_names`` of its
        own (:data:`_MEMBERSHIP_METRICS`).
        """
        blocks_name, bytes_name, batches_name, hist_name = (
            metric_names or self._FAILOVER_METRICS
        )
        batches: dict[str, list[tuple[tuple[str, int], bytes, bool]]] = {}
        for bid in block_ids:
            key = self.block_keys[bid]
            targets = self.ring.replica_set(key, extra=self.config.dfs.replication)
            missing = [t for t in targets
                       if t not in self.holders[bid] and t in self.addresses]
            if not missing:
                continue
            data = self._fetch_from_any(bid, self.holders[bid])
            for target in missing:
                batches.setdefault(target, []).append(
                    (bid, data, target != targets[0])
                )
        for target, entries in batches.items():
            calls = [
                ("restore_block",
                 {"name": bid[0], "index": bid[1], "replica": replica},
                 data, "data")
                for bid, data, replica in entries
            ]
            try:
                self.pool.call_many(self.address_of(target).addr, calls)
            except NetworkError as exc:
                raise WorkerLost(target, f"re-replication failed: {exc}") from exc
            batch_bytes = 0
            for bid, data, _ in entries:
                self.holders[bid].append(target)
                batch_bytes += len(data)
                self.metrics.counter(blocks_name).inc()
            self.metrics.counter(bytes_name).inc(batch_bytes)
            self.metrics.counter(batches_name).inc()
            self.metrics.histogram(hist_name).record(batch_bytes)

    def ensure_replication(self) -> None:
        """Bring *every* block back to its replica target (post-cascade).

        A worker dying while it was a re-replication target leaves other
        blocks under-replicated; scanning all holders after the cluster
        stabilizes closes that hole.  Fully replicated blocks cost one
        membership check each, no bytes.
        """
        self._restore_replication(list(self.holders))

    def _fetch_from_any(self, bid: tuple[str, int], holders: list[str]) -> bytes:
        """Read one block for re-replication: best holders first, with retry.

        Candidates are the live *recorded* holders ordered by current
        scheduler load (least-loaded first -- they also serve map tasks),
        then every other survivor as a long shot against stale holder
        records.  Each sweep gives every candidate one transport attempt;
        sweeps retry under the pool's :class:`RetryPolicy` (backoff,
        ``max_elapsed`` deadline included).  A candidate answering
        ``BlockNotFound`` is skipped, not fatal.
        """
        args = {"name": bid[0], "index": bid[1]}
        one_shot = RetryPolicy(attempts=1, base_delay=self.pool.policy.base_delay)

        def candidates() -> list[str]:
            recorded = [w for w in holders if w in self.addresses]
            recorded.sort(key=self._load_rank)
            return recorded + [w for w in self.alive_ids() if w not in recorded]

        def sweep() -> bytes:
            last: Exception | None = None
            for wid in candidates():
                try:
                    return bytes(self.pool.call(self.address_of(wid).addr,
                                                "fetch_block", args,
                                                policy=one_shot))
                except RpcRemoteError as exc:
                    if exc.etype != "BlockNotFound":
                        raise ClusterError(
                            f"survivor {wid!r} failed serving block {bid}: {exc}"
                        ) from exc
                    last = exc  # stale holder record; try the next one
                except (NetworkError, WorkerLost) as exc:
                    last = exc
            if isinstance(last, NetworkError) and not isinstance(last, RpcRemoteError):
                raise last  # retryable: the outer policy sweeps again
            raise ClusterError(  # BlockNotFound everywhere: retry won't help
                f"could not read block {bid} from any survivor: {last}"
            )

        try:
            return self.pool.policy.call(sweep, retry_on=(NetworkError,))
        except NetworkError as exc:
            raise ClusterError(
                f"could not read block {bid} from any survivor: {exc}"
            ) from exc

    def _load_rank(self, wid: str) -> tuple[int, int]:
        """Sort key: current scheduler load, ties broken by worker order."""
        try:
            load = self.scheduler.load_of(wid)
        except (KeyError, SchedulingError):
            load = 0
        return (load, self.worker_ids.index(wid))

    def _update_live_gauge(self) -> None:
        self.metrics.gauge("cluster.live_workers").set(len(self.addresses))

    @staticmethod
    def _fan_out(fn, items: Sequence, max_workers: int = 16) -> list:
        """Run ``fn`` over ``items`` concurrently; results keep item order.

        Every call is drained before the first raised error propagates,
        so no thread is abandoned mid-RPC.
        """
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            return [fn(items[0])]
        results: list = []
        first_error: Exception | None = None
        with ThreadPoolExecutor(max_workers=min(max_workers, len(items)),
                                thread_name_prefix="coord-fanout") as pool:
            for future in [pool.submit(fn, item) for item in items]:
                try:
                    results.append(future.result())
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                    results.append(None)
        if first_error is not None:
            raise first_error
        return results

    # -- data placement ----------------------------------------------------------------

    def upload(
        self,
        name: str,
        data: bytes,
        *,
        owner: str = "user",
        permissions: int = 0o644,
        tags: dict[str, str] | None = None,
    ) -> FileMetadata:
        """Split a file into blocks and spread them over the worker shards.

        Placement (replica sets, holders, descriptors) is computed
        serially so metadata is deterministic; the puts themselves fan
        out concurrently, each shipping its payload out-of-band beside a
        tiny envelope (no pickle copy of the block bytes).
        """
        if name in self.metadata:
            raise ClusterError(f"file {name!r} already exists")
        block_size = self.config.dfs.block_size
        view = memoryview(data)  # block payloads are zero-copy slices
        descriptors: list[BlockDescriptor] = []
        puts: list[tuple[str, dict, Any]] = []  # (wid, args, payload)
        index = 0
        offset = 0
        total = len(data)
        while True:
            this_size = min(block_size, total - offset)
            if this_size <= 0 and index > 0:
                break
            key = self.space.block_key(name, index)
            payload = view[offset : offset + this_size]
            replicas = self.ring.replica_set(key, extra=self.config.dfs.replication)
            for i, wid in enumerate(replicas):
                puts.append((wid, {"name": name, "index": index, "replica": i > 0},
                             payload))
            self.holders[(name, index)] = list(replicas)
            self.block_keys[(name, index)] = key
            descriptors.append(BlockDescriptor(index, key, this_size))
            self.metrics.counter("cluster.blocks_uploaded").inc()
            offset += this_size
            index += 1
            if offset >= total:
                break

        def put(entry: tuple[str, dict, Any]) -> None:
            wid, args, payload = entry
            try:
                self.pool.call(self.address_of(wid).addr, "put_block", args,
                               blob=payload, blob_arg="data")
            except NetworkError as exc:
                raise WorkerLost(wid, f"block upload failed: {exc}") from exc

        self._fan_out(put, puts)
        meta = FileMetadata(
            name=name, owner=owner, size=total, permissions=permissions,
            created_at=0.0, blocks=descriptors, tags=dict(tags or {}),
        )
        self.metadata[name] = meta
        return meta

    def stat(self, name: str, user: str = "user", *, write: bool = False) -> FileMetadata:
        try:
            meta = self.metadata[name]
        except KeyError:
            from repro.common.errors import FileNotFound

            raise FileNotFound(f"no such file: {name!r}") from None
        meta.check_access(user, write=write)
        return meta

    def block_holders(self, name: str, index: int) -> list[WorkerAddress]:
        """Live holders of one block, primaries first."""
        return [
            self.addresses[wid]
            for wid in self.holders.get((name, index), [])
            if wid in self.addresses
        ]

    # -- completion markers (oCache replay) --------------------------------------

    def record_marker(self, marker: CompletionMarker) -> None:
        """Store (or overwrite) one map task's completion marker.

        Markers are metadata and live here with the file metadata -- the
        spill payloads they name stay sharded on the destination
        workers, exactly like blocks."""
        with self._lock:
            self.markers[(marker.app_id, marker.input_file, marker.block_index)] = marker

    def marker_for(self, app_id: str, input_file: str, block_index: int) -> Optional[CompletionMarker]:
        """The completion marker for one map task, if one was recorded."""
        with self._lock:
            return self.markers.get((app_id, input_file, block_index))

    # -- teardown -----------------------------------------------------------------------

    def shutdown(self) -> None:
        policy = RetryPolicy(attempts=1, base_delay=0.01)

        def tell(wid: str) -> None:
            try:
                self.pool.call(self.address_of(wid).addr, "shutdown",
                               timeout=2.0, policy=policy)
            except NetworkError:
                pass  # it is being killed anyway

        self._fan_out(tell, self.alive_ids())
        self.pool.close_all()
        self.server.stop()
