"""One cluster worker: an OS process owning a shard of everything.

A worker holds its slice of the DHT file system (the blocks whose hash
keys fall in its arc, plus neighbor replicas), its iCache/oCache
partitions, and its reduce-side intermediate store.  It serves RPCs:

* ``put_block`` / ``fetch_block`` -- DHT FS shard reads and writes;
* ``run_map`` -- execute a map task: read the block (iCache, local
  shard, or a remote holder over TCP), run the user's map function, and
  push spill buffers to the reduce-side owners *worker-to-worker* over
  the wire (Fig. 2 step 4 -- the coordinator never touches a spill);
* ``push_spill`` -- accept another worker's spill into the local
  intermediate store (and oCache, when the job tags intermediates);
* ``run_reduce`` -- reduce everything that landed here, in place;
* ``update_ring`` / ``discard_job`` / ``get_stats`` / ``ping`` /
  ``shutdown`` -- control plane.

The process is started by :class:`repro.cluster.runtime.ClusterRuntime`
via :mod:`multiprocessing` and announces itself to the coordinator with a
``register`` RPC, then heartbeats until told to stop (or until the
coordinator disappears).
"""

from __future__ import annotations

import pickle
import threading
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from repro.cache.worker import WorkerCache
from repro.common.config import ClusterConfig
from repro.common.errors import BlockNotFound, ClusterError, NetworkError
from repro.common.hashing import HashSpace
from repro.common.serialization import config_from_dict
from repro.cluster.heartbeat import HeartbeatSender
from repro.cluster.messages import (
    RingTable,
    decode_job,
    decode_spill,
    encode_spill,
    iter_output_pages,
)
from repro.mapreduce.shuffle import IntermediateStore, SpillBuffer
from repro.net.rpc import Blob, ConnectionPool, RpcClient, RpcServer, Stream
from repro.sim.metrics import MetricsRegistry

__all__ = ["SpillDeliveryLost", "WorkerNode", "worker_main"]


class SpillDeliveryLost(ClusterError):
    """A spill push to a reduce-side peer failed (the peer is likely dead).

    The coordinator reads ``rpc_data['target']`` out of the RPC error to
    learn *which* peer died -- the mapper itself is healthy.
    """

    def __init__(self, target: str, spill_id: str) -> None:
        super().__init__(f"spill {spill_id} undeliverable to {target!r}")
        self.rpc_data = {"target": target, "spill_id": spill_id}


class WorkerNode:
    """A worker's state and RPC handlers (in-process; no sockets of its own).

    Separated from :func:`worker_main` so tests can drive handlers
    directly, and so the server wiring stays trivial.
    """

    def __init__(self, worker_id: str, config: ClusterConfig, space: HashSpace) -> None:
        self.worker_id = worker_id
        self.config = config
        self.space = space
        self.metrics = MetricsRegistry()
        self.blocks: dict[tuple[str, int], bytes] = {}
        self.block_replica: dict[tuple[str, int], bool] = {}
        self.cache = WorkerCache(worker_id, config.cache)
        self.intermediates = IntermediateStore(worker_id)
        self.ring: Optional[RingTable] = None
        self.peers: dict[str, tuple[str, int]] = {}
        self.pool = ConnectionPool(config.net, metrics=self.metrics)
        self._jobs: dict[str, Any] = {}  # app_id -> DecodedJob
        self._lock = threading.RLock()
        # Remote spill pushes to distinct reduce-side targets go out
        # concurrently (the map task only waits for all of them at flush).
        self._spill_pool = ThreadPoolExecutor(
            max_workers=config.net.rpc_concurrency,
            thread_name_prefix=f"spill:{worker_id}",
        )

    # -- DHT FS shard -------------------------------------------------------------

    def put_block(self, name: str, index: int, data, replica: bool = False) -> int:
        # ``data`` arrives as a memoryview over the connection's frame
        # buffer on the zero-copy path; snapshot it into owned bytes.
        if not isinstance(data, bytes):
            data = bytes(data)
        with self._lock:
            self.blocks[(name, index)] = data
            self.block_replica[(name, index)] = replica
        self.metrics.counter("worker.blocks_stored").inc()
        return len(data)

    def fetch_block(self, name: str, index: int) -> bytes:
        with self._lock:
            try:
                data = self.blocks[(name, index)]
            except KeyError:
                raise BlockNotFound(
                    f"{self.worker_id} does not hold block {index} of {name!r}"
                ) from None
        self.metrics.counter("worker.blocks_served").inc()
        return data

    def _fetch_block_rpc(self, name: str, index: int) -> Blob:
        """RPC wrapper: ship the block out-of-band instead of pickling it."""
        return Blob(self.fetch_block(name, index))

    def drop_block(self, name: str, index: int) -> bool:
        with self._lock:
            self.block_replica.pop((name, index), None)
            return self.blocks.pop((name, index), None) is not None

    # -- control ------------------------------------------------------------------

    def update_ring(self, ring: dict, peers: dict[str, tuple[str, int]]) -> int:
        table = RingTable.from_wire(ring)
        with self._lock:
            if self.ring is not None and table.epoch <= self.ring.epoch:
                return self.ring.epoch  # stale broadcast
            self.ring = table
            self.peers = {wid: tuple(addr) for wid, addr in peers.items()}
        return table.epoch

    def discard_job(self, app_id: str) -> None:
        """Drop a job's in-flight intermediates (failover restart or job end).

        oCache entries survive on purpose -- they are LRU/TTL-governed,
        exactly like the sequential runtime's distributed cache.
        """
        with self._lock:
            self.intermediates.discard_job(app_id)
            self._jobs.pop(app_id, None)

    def ping(self) -> str:
        return "pong"

    def get_stats(self) -> dict[str, Any]:
        cache = self.cache.stats()
        with self._lock:
            stored = len(self.blocks)
            replicas = sum(1 for r in self.block_replica.values() if r)
        out = {name: c.value for name, c in self.metrics.counters.items()}
        out.update(
            worker_id=self.worker_id,
            blocks_stored=stored,
            replica_blocks=replicas,
            icache_hits=cache.icache_hits,
            icache_misses=cache.icache_misses,
            ocache_hits=cache.ocache_hits,
            ocache_misses=cache.ocache_misses,
            bytes_received=self.intermediates.bytes_received,
        )
        return out

    # -- map path -----------------------------------------------------------------

    def _job(self, job_wire: dict) -> Any:
        app_id = job_wire["app_id"]
        with self._lock:
            job = self._jobs.get(app_id)
            if job is None:
                job = decode_job(job_wire)
                self._jobs[app_id] = job
        return job

    def run_map(
        self,
        job: dict,
        name: str,
        index: int,
        holders: list[tuple[str, str, int]],
    ) -> dict[str, Any]:
        decoded = self._job(job)
        with self._lock:
            ring = self.ring
            peers = dict(self.peers)
        if ring is None:
            raise ClusterError(f"{self.worker_id} has no ring table yet")
        data, source = self._read_block(name, index, holders)
        # Spills to *remote* reduce-side targets are dispatched
        # concurrently -- the map keeps producing while earlier spills are
        # still in flight (the paper's proactive shuffle, §II-D); the
        # task only joins them all after the final flush.
        pushes: list[Future] = []

        def dispatch(dest, sid, pairs, nbytes):
            if dest == self.worker_id:
                self._deliver_spill(decoded, peers, dest, sid, pairs, nbytes)
            else:
                pushes.append(self._spill_pool.submit(
                    self._deliver_spill, decoded, peers, dest, sid, pairs, nbytes
                ))

        spill = SpillBuffer(
            space=self.space,
            route=ring.owner_of,
            deliver=dispatch,
            threshold_bytes=decoded.spill_buffer_bytes,
            task_id=f"{decoded.app_id}/map{index}",
        )
        for key, value in decoded.map_fn(data):
            spill.emit(key, value)
        spill.flush()
        first_error: Exception | None = None
        for push in pushes:
            try:
                push.result()
            except Exception as exc:  # drain every push before failing
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        self.metrics.counter("worker.maps_run").inc()
        self.metrics.counter("worker.spills_out").inc(spill.spills)
        self.metrics.counter("worker.bytes_shuffled_out").inc(spill.bytes_pushed)
        return {
            "worker_id": self.worker_id,
            "source": source,
            "spills": spill.spills,
            "bytes_shuffled": spill.bytes_pushed,
        }

    def _read_block(
        self, name: str, index: int, holders: list[tuple[str, str, int]]
    ) -> tuple[bytes, str]:
        bid = (name, index)
        hit, data = self.cache.get_input(bid)
        if hit:
            return data, "icache"
        with self._lock:
            data = self.blocks.get(bid)
        if data is not None:
            self.cache.put_input(bid, data, size=len(data),
                                 hash_key=self.space.block_key(name, index))
            return data, "local"
        last: Exception | None = None
        for wid, host, port in holders:
            if wid == self.worker_id:
                continue
            try:
                data = self.pool.call((host, port), "fetch_block",
                                      {"name": name, "index": index})
            except NetworkError as exc:
                last = exc
                continue
            data = bytes(data)  # snapshot the out-of-band frame view
            self.metrics.counter("worker.remote_block_reads").inc()
            self.cache.put_input(bid, data, size=len(data),
                                 hash_key=self.space.block_key(name, index))
            return data, "remote"
        raise BlockNotFound(
            f"no reachable holder for block {index} of {name!r}: {last}"
        )

    def _deliver_spill(
        self,
        job: Any,
        peers: dict[str, tuple[str, int]],
        dest: str,
        spill_id: str,
        pairs: list[tuple[Any, Any]],
        nbytes: int,
    ) -> None:
        if job.combiner is not None:
            grouped: dict[Any, list[Any]] = defaultdict(list)
            for k, v in pairs:
                grouped[k].append(v)
            pairs = [(k, v) for k, vs in grouped.items() for v in job.combiner(k, vs)]
        if dest == self.worker_id:
            self.receive_spill(job.app_id, spill_id, pairs, nbytes,
                               cache=job.cache_intermediates, ttl=job.intermediate_ttl)
            self.metrics.counter("worker.local_spills").inc()
            return
        try:
            addr = peers[dest]
        except KeyError:
            raise SpillDeliveryLost(dest, spill_id) from None
        try:
            # The pairs ride out-of-band: a small envelope plus one raw
            # frame, never pickled into (or copied through) the envelope.
            self.pool.call(
                addr,
                "push_spill",
                {
                    "app_id": job.app_id,
                    "spill_id": spill_id,
                    "nbytes": nbytes,
                    "cache": job.cache_intermediates,
                    "ttl": job.intermediate_ttl,
                },
                blob=encode_spill(pairs),
                blob_arg="payload",
            )
        except NetworkError as exc:
            raise SpillDeliveryLost(dest, spill_id) from exc

    # -- reduce path --------------------------------------------------------------

    def push_spill(self, app_id: str, spill_id: str, pairs: list | None = None,
                   nbytes: int = 0, cache: bool = False, ttl: float | None = None,
                   payload=None) -> int:
        if pairs is None:
            pairs = decode_spill(payload)
        return self.receive_spill(app_id, spill_id, pairs, nbytes, cache, ttl)

    def receive_spill(self, app_id: str, spill_id: str, pairs: list,
                      nbytes: int, cache: bool = False, ttl: float | None = None) -> int:
        with self._lock:
            self.intermediates.receive(app_id, spill_id, pairs, nbytes)
        if cache:
            payload = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
            self.cache.put_output(app_id, spill_id, pairs, size=len(payload), ttl=ttl)
        self.metrics.counter("worker.spills_in").inc()
        return len(pairs)

    def run_reduce(self, job: dict) -> Any:
        decoded = self._job(job)
        with self._lock:
            # Deterministic consumption order: spill ids, not arrival order
            # (concurrent mappers race their pushes).
            spills = sorted(self.intermediates.spills_for(decoded.app_id).items())
        pairs = [pair for _, spill in spills for pair in spill]
        if not pairs:
            return {"worker_id": self.worker_id, "pairs": 0, "output": {}}
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for k, v in pairs:
            grouped[k].append(v)
        output = {k: decoded.reduce_fn(k, vs) for k, vs in grouped.items()}
        self.metrics.counter("worker.reduces_run").inc()
        # An output over the page threshold streams out as paged frames
        # (reassembled by the coordinator) instead of one giant envelope;
        # small outputs keep the inline shape.  Pages must also fit well
        # inside a frame beside their chunk envelopes.
        page_bytes = min(self.config.net.stream_page_bytes,
                         max(64, self.config.net.max_frame_bytes // 2))
        pager = iter_output_pages(output, page_bytes)
        first = next(pager, None)
        second = next(pager, None)
        if second is None and (first is None or len(first) <= page_bytes):
            return {"worker_id": self.worker_id, "pairs": len(pairs),
                    "output": output}
        self.metrics.counter("worker.reduces_streamed").inc()

        def pages():
            yield first
            if second is not None:
                yield second
            yield from pager

        return Stream(pages(), value={"worker_id": self.worker_id,
                                      "pairs": len(pairs)})

    # -- wiring -------------------------------------------------------------------

    def handlers(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        out = {
            "ping": self.ping,
            "put_block": self.put_block,
            "fetch_block": self._fetch_block_rpc,
            "drop_block": self.drop_block,
            "update_ring": self.update_ring,
            "discard_job": self.discard_job,
            "run_map": self.run_map,
            "push_spill": self.push_spill,
            "run_reduce": self.run_reduce,
            "get_stats": self.get_stats,
        }
        out.update(extra or {})
        return out

    def close(self) -> None:
        self._spill_pool.shutdown(wait=False)
        self.pool.close_all()


def worker_main(
    worker_id: str,
    coordinator_host: str,
    coordinator_port: int,
    manifest: dict,
    space_size: int,
    extra_sys_path: tuple[str, ...] = (),
) -> None:
    """Entry point of a worker process (the ``multiprocessing`` target).

    ``extra_sys_path`` carries the parent's source root explicitly (the
    import-path contract travels in the worker args, not via a mutated
    parent environment).
    """
    import sys

    for entry in extra_sys_path:
        if entry not in sys.path:
            sys.path.insert(0, entry)
    config = config_from_dict(manifest)
    node = WorkerNode(worker_id, config, HashSpace(space_size))
    stop = threading.Event()

    server = RpcServer(
        node.handlers({"shutdown": lambda: (stop.set(), "bye")[1]}),
        net=config.net,
        metrics=node.metrics,
    )
    server.start()
    heartbeats = HeartbeatSender(
        worker_id,
        (coordinator_host, coordinator_port),
        config.net,
        on_coordinator_lost=stop.set,
    )
    try:
        client = RpcClient(coordinator_host, coordinator_port, net=config.net)
        client.call(
            "register",
            {"worker_id": worker_id, "host": server.host, "port": server.port},
        )
        client.close()
        heartbeats.start()
        stop.wait()
    finally:
        heartbeats.stop()
        server.stop()
        node.close()
