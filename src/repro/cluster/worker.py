"""One cluster worker: an OS process owning a shard of everything.

A worker holds its slice of the DHT file system (the blocks whose hash
keys fall in its arc, plus neighbor replicas), its iCache/oCache
partitions, and its reduce-side intermediate store.  It serves RPCs:

* ``put_block`` / ``fetch_block`` -- DHT FS shard reads and writes;
* ``run_map`` -- execute a map task: read the block (iCache, local
  shard, or a remote holder over TCP), run the user's map function, and
  push spill buffers to the reduce-side owners *worker-to-worker* over
  the wire (Fig. 2 step 4 -- the coordinator never touches a spill);
* ``push_spill`` -- accept another worker's spill into the local
  intermediate store (and, when the job tags intermediates, into oCache
  plus a *persisted spill object* in the local DHT FS shard -- the
  durable copy behind oCache replay, paper §II-C step 5);
* ``replay_intermediates`` -- repopulate the local intermediate store
  for a ``reuse_intermediates`` job from oCache (hit) or the persisted
  spill object (miss), without any map running anywhere; the handler is
  check-then-apply, so a missing spill delivers *nothing* and the
  coordinator falls back to re-executing that map;
* ``discard_spills`` -- drop specific replayed spills (the fallback path
  un-doing a partially replayed map task before re-mapping it);
* ``run_reduce`` -- reduce everything that landed here, in place;
* ``update_ring`` / ``discard_job`` / ``get_stats`` / ``ping`` /
  ``shutdown`` -- control plane.

The process is started by :class:`repro.cluster.runtime.ClusterRuntime`
via :mod:`multiprocessing` and announces itself to the coordinator with a
``register`` RPC, then heartbeats until told to stop (or until the
coordinator disappears).
"""

from __future__ import annotations

import pickle
import threading
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from repro.cache.worker import WorkerCache
from repro.chaos.plane import FaultInjector
from repro.common.config import ClusterConfig
from repro.common.errors import BlockNotFound, ClusterError, NetworkError
from repro.common.hashing import HashSpace
from repro.common.serialization import config_from_dict
from repro.cluster.heartbeat import HeartbeatSender
from repro.cluster.messages import (
    RingTable,
    decode_job,
    decode_spill,
    encode_spill,
    iter_output_pages,
)
from repro.mapreduce.shuffle import IntermediateStore, SpillBuffer, combine_pairs
from repro.net.rpc import Blob, ConnectionPool, RpcClient, RpcServer, Stream
from repro.sim.metrics import MetricsRegistry

__all__ = ["SpillDeliveryLost", "WorkerNode", "worker_main"]


class SpillDeliveryLost(ClusterError):
    """A spill push to a reduce-side peer failed (the peer is likely dead).

    The coordinator reads ``rpc_data['target']`` out of the RPC error to
    learn *which* peer died -- the mapper itself is healthy.
    """

    def __init__(self, target: str, spill_id: str) -> None:
        super().__init__(f"spill {spill_id} undeliverable to {target!r}")
        self.rpc_data = {"target": target, "spill_id": spill_id}


class WorkerNode:
    """A worker's state and RPC handlers (in-process; no sockets of its own).

    Separated from :func:`worker_main` so tests can drive handlers
    directly, and so the server wiring stays trivial.
    """

    def __init__(self, worker_id: str, config: ClusterConfig, space: HashSpace) -> None:
        self.worker_id = worker_id
        self.config = config
        self.space = space
        self.metrics = MetricsRegistry()
        self.blocks: dict[tuple[str, int], bytes] = {}
        self.block_replica: dict[tuple[str, int], bool] = {}
        self.cache = WorkerCache(worker_id, config.cache)
        self.intermediates = IntermediateStore(worker_id)
        # Persisted spill objects: the durable, non-LRU copies behind
        # oCache replay, keyed ``(app_id, spill_id)``.  Insertion order
        # doubles as the FIFO eviction order against the configured
        # ``cache.spill_store_bytes`` budget.
        self.spill_objects: dict[tuple[str, str], bytes] = {}
        self.spill_object_bytes = 0
        self.ring: Optional[RingTable] = None
        self.peers: dict[str, tuple[str, int]] = {}
        self.pool = ConnectionPool(config.net, metrics=self.metrics)
        # This worker's slice of the chaos plane (rules arrive in the
        # config manifest); peer names are bound as ring broadcasts
        # deliver addresses.  Inactive configs leave the hooks unset.
        self.fault = FaultInjector(worker_id, config.chaos, metrics=self.metrics)
        if self.fault.active:
            self.pool.fault_hook = self.fault.on_send
        self._jobs: dict[str, Any] = {}  # app_id -> DecodedJob
        self._lock = threading.RLock()
        # Remote spill pushes to distinct reduce-side targets go out
        # concurrently (the map task only waits for all of them at flush).
        self._spill_pool = ThreadPoolExecutor(
            max_workers=config.net.rpc_concurrency,
            thread_name_prefix=f"spill:{worker_id}",
        )

    # -- DHT FS shard -------------------------------------------------------------

    def put_block(self, name: str, index: int, data, replica: bool = False) -> int:
        # ``data`` arrives as a memoryview over the connection's frame
        # buffer on the zero-copy path; snapshot it into owned bytes.
        if not isinstance(data, bytes):
            data = bytes(data)
        with self._lock:
            self.blocks[(name, index)] = data
            self.block_replica[(name, index)] = replica
        self.metrics.counter("worker.blocks_stored").inc()
        return len(data)

    def restore_block(self, name: str, index: int, data, replica: bool = False) -> int:
        """Accept a re-replicated copy after a failover.

        Same storage semantics as :meth:`put_block`; the distinct method
        lets chaos rules and metrics target repair traffic specifically
        (``worker.blocks_restored``), and keeps ordinary uploads out of
        failover scripts.
        """
        n = self.put_block(name, index, data, replica)
        self.metrics.counter("worker.blocks_restored").inc()
        return n

    def fetch_block(self, name: str, index: int) -> bytes:
        with self._lock:
            try:
                data = self.blocks[(name, index)]
            except KeyError:
                raise BlockNotFound(
                    f"{self.worker_id} does not hold block {index} of {name!r}"
                ) from None
        self.metrics.counter("worker.blocks_served").inc()
        return data

    def _fetch_block_rpc(self, name: str, index: int) -> Blob:
        """RPC wrapper: ship the block out-of-band instead of pickling it."""
        return Blob(self.fetch_block(name, index))

    def drop_block(self, name: str, index: int) -> bool:
        with self._lock:
            self.block_replica.pop((name, index), None)
            return self.blocks.pop((name, index), None) is not None

    # -- control ------------------------------------------------------------------

    def update_ring(self, ring: dict, peers: dict[str, tuple[str, int]]) -> int:
        table = RingTable.from_wire(ring)
        with self._lock:
            if self.ring is not None and table.epoch <= self.ring.epoch:
                return self.ring.epoch  # stale broadcast
            self.ring = table
            self.peers = {wid: tuple(addr) for wid, addr in peers.items()}
        if self.fault.active:
            for wid, addr in peers.items():
                self.fault.bind(wid, addr)
        return table.epoch

    def discard_job(self, app_id: str, job_uid: str | None = None) -> None:
        """Drop a job's in-flight intermediates (failover restart or job end).

        In-flight state is keyed by ``job_uid`` (one submission of the
        app); ``job_uid=None`` drops *every* uid of the app id, which is
        what a fresh attempt's start-of-job broadcast wants.  oCache
        entries survive on purpose -- they are LRU/TTL-governed, exactly
        like the sequential runtime's distributed cache.
        """
        with self._lock:
            if job_uid is not None:
                uids = [job_uid]
            else:
                known = set(self._jobs) | set(self.intermediates.job_ids()) | {app_id}
                uids = [uid for uid in known
                        if uid == app_id or uid.startswith(app_id + "@")]
            for uid in uids:
                self.intermediates.discard_job(uid)
                self._jobs.pop(uid, None)

    def ping(self) -> str:
        return "pong"

    def get_stats(self, full: bool = False) -> dict[str, Any]:
        """Per-worker statistics; the single stats RPC of the control plane.

        The default (flat counters + cache/shard scalars) is what
        ``ClusterRuntime.worker_stats`` has always returned -- reports and
        cross-plane equality tests depend on that exact shape.  The
        observability endpoint passes ``full=True`` to additionally get
        the worker's whole registry export (gauges such as
        ``rpc.in_flight`` and histogram summaries included) under a
        ``registry`` key, over the very same RPC.
        """
        cache = self.cache.stats()
        with self._lock:
            stored = len(self.blocks)
            replicas = sum(1 for r in self.block_replica.values() if r)
        out = {name: c.value for name, c in self.metrics.counters.items()}
        with self._lock:
            spill_objects = len(self.spill_objects)
            spill_object_bytes = self.spill_object_bytes
            spills_held = sum(self.intermediates.spill_count(uid)
                              for uid in self.intermediates.job_ids())
        out.update(
            worker_id=self.worker_id,
            blocks_stored=stored,
            replica_blocks=replicas,
            icache_hits=cache.icache_hits,
            icache_misses=cache.icache_misses,
            ocache_hits=cache.ocache_hits,
            ocache_misses=cache.ocache_misses,
            icache_evictions=cache.icache_evictions,
            ocache_evictions=cache.ocache_evictions,
            icache_expirations=cache.icache_expirations,
            ocache_expirations=cache.ocache_expirations,
            bytes_received=self.intermediates.bytes_received,
            spills_held=spills_held,
            spill_objects=spill_objects,
            spill_object_bytes=spill_object_bytes,
        )
        if full:
            out["registry"] = self.metrics.export()
        return out

    # -- map path -----------------------------------------------------------------

    def _job(self, job_wire: dict) -> Any:
        uid = job_wire.get("job_uid", job_wire["app_id"])
        with self._lock:
            job = self._jobs.get(uid)
            if job is None:
                job = decode_job(job_wire)
                self._jobs[uid] = job
        return job

    def run_map(
        self,
        job: dict,
        name: str,
        index: int,
        holders: list[tuple[str, str, int]],
        attempt: int = 0,
    ) -> dict[str, Any]:
        decoded = self._job(job)
        with self._lock:
            ring = self.ring
            peers = dict(self.peers)
        if ring is None:
            raise ClusterError(f"{self.worker_id} has no ring table yet")
        data, source = self._read_block(name, index, holders)
        # Spills to *remote* reduce-side targets are dispatched
        # concurrently -- the map keeps producing while earlier spills are
        # still in flight (the paper's proactive shuffle, §II-D); the
        # task only joins them all after the final flush.
        pushes: list[Future] = []

        def dispatch(dest, sid, pairs, nbytes):
            # In-node combining: pairs are collapsed *before* they leave
            # this worker, and a spill the combiner empties out is
            # skipped outright -- never shipped, cached, or persisted
            # (identical to the sequential plane's discipline).
            pairs = combine_pairs(decoded.combiner, pairs)
            if not pairs:
                self.metrics.counter("worker.spills_skipped_empty").inc()
                return False
            if dest == self.worker_id:
                self.receive_spill(decoded.app_id, sid, pairs, nbytes,
                                   cache=decoded.cache_intermediates,
                                   ttl=decoded.intermediate_ttl,
                                   job_uid=decoded.job_uid,
                                   attempt=attempt)
                self.metrics.counter("worker.local_spills").inc()
            else:
                pushes.append(self._spill_pool.submit(
                    self._push_spill_remote, decoded, peers, dest, sid, pairs,
                    nbytes, attempt
                ))
            return True

        spill = SpillBuffer(
            space=self.space,
            route=ring.owner_of,
            deliver=dispatch,
            threshold_bytes=decoded.spill_buffer_bytes,
            task_id=f"{decoded.app_id}/map{index}",
            combiner=decoded.combiner if decoded.cross_spill_combine else None,
        )
        for key, value in decoded.map_fn(data):
            spill.emit(key, value)
        spill.flush()
        first_error: Exception | None = None
        for push in pushes:
            try:
                push.result()
            except Exception as exc:  # drain every push before failing
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        self.metrics.counter("worker.maps_run").inc()
        self.metrics.counter("worker.spills_out").inc(spill.spills)
        self.metrics.counter("worker.spill_recombines").inc(spill.recombines)
        self.metrics.counter("worker.bytes_shuffled_out").inc(spill.bytes_pushed)
        return {
            "worker_id": self.worker_id,
            "source": source,
            "spills": spill.spills,
            "recombines": spill.recombines,
            "bytes_shuffled": spill.bytes_pushed,
            # The spill manifest: which spills this map delivered where,
            # at what size.  Always returned -- the coordinator needs the
            # destination set to decide whether this map survives a
            # failover (spills all on survivors = salvaged) -- and also
            # recorded as a completion marker when the job caches
            # intermediates for replay.
            "manifest": spill.manifest(),
        }

    def _read_block(
        self, name: str, index: int, holders: list[tuple[str, str, int]]
    ) -> tuple[bytes, str]:
        bid = (name, index)
        hit, data = self.cache.get_input(bid)
        if hit:
            return data, "icache"
        with self._lock:
            data = self.blocks.get(bid)
        if data is not None:
            self.cache.put_input(bid, data, size=len(data),
                                 hash_key=self.space.block_key(name, index))
            return data, "local"
        last: Exception | None = None
        for wid, host, port in holders:
            if wid == self.worker_id:
                continue
            try:
                data = self.pool.call((host, port), "fetch_block",
                                      {"name": name, "index": index})
            except NetworkError as exc:
                last = exc
                continue
            data = bytes(data)  # snapshot the out-of-band frame view
            self.metrics.counter("worker.remote_block_reads").inc()
            self.cache.put_input(bid, data, size=len(data),
                                 hash_key=self.space.block_key(name, index))
            return data, "remote"
        raise BlockNotFound(
            f"no reachable holder for block {index} of {name!r}: {last}"
        )

    def _push_spill_remote(
        self,
        job: Any,
        peers: dict[str, tuple[str, int]],
        dest: str,
        spill_id: str,
        pairs: list[tuple[Any, Any]],
        nbytes: int,
        attempt: int = 0,
    ) -> None:
        """Ship one (already combined, non-empty) spill to its reduce-side
        owner over the wire."""
        try:
            addr = peers[dest]
        except KeyError:
            raise SpillDeliveryLost(dest, spill_id) from None
        try:
            # The pairs ride out-of-band: a small envelope plus one raw
            # frame, never pickled into (or copied through) the envelope.
            self.pool.call(
                addr,
                "push_spill",
                {
                    "app_id": job.app_id,
                    "job_uid": job.job_uid,
                    "spill_id": spill_id,
                    "nbytes": nbytes,
                    "cache": job.cache_intermediates,
                    "ttl": job.intermediate_ttl,
                    "attempt": attempt,
                },
                blob=encode_spill(pairs),
                blob_arg="payload",
            )
        except NetworkError as exc:
            raise SpillDeliveryLost(dest, spill_id) from exc

    # -- reduce path --------------------------------------------------------------

    def push_spill(self, app_id: str, spill_id: str, pairs: list | None = None,
                   nbytes: int = 0, cache: bool = False, ttl: float | None = None,
                   payload=None, job_uid: str | None = None,
                   attempt: int = 0) -> int:
        if pairs is None:
            if cache:
                payload = bytes(payload)  # snapshot the frame view: we keep it
            pairs = decode_spill(payload)
        return self.receive_spill(app_id, spill_id, pairs, nbytes, cache, ttl,
                                  payload=payload if cache else None,
                                  job_uid=job_uid, attempt=attempt)

    def receive_spill(self, app_id: str, spill_id: str, pairs: list,
                      nbytes: int, cache: bool = False, ttl: float | None = None,
                      payload: bytes | None = None,
                      job_uid: str | None = None, attempt: int = 0) -> int:
        # In-flight reduce inputs are keyed by submission uid; the durable
        # replay copies (oCache entry + persisted spill object) stay keyed
        # by app_id so a later run of the same app can replay them.
        with self._lock:
            accepted = self.intermediates.receive(
                job_uid or app_id, spill_id, pairs, nbytes, attempt=attempt
            )
        if not accepted:
            # A stale delivery: the push of a map execution the scheduler
            # already replaced arrived after its replacement.  Nothing is
            # stored, cached, or persisted -- the durable replay copies
            # must not regress to the superseded content either.
            self.metrics.counter("worker.stale_spills_rejected").inc()
            return 0
        if cache:
            if payload is None:
                payload = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
            self.cache.put_output(app_id, spill_id, pairs, size=len(payload), ttl=ttl)
            self._persist_spill_object(app_id, spill_id, payload)
        self.metrics.counter("worker.spills_in").inc()
        return len(pairs)

    # -- oCache replay ------------------------------------------------------------

    def _persist_spill_object(self, app_id: str, spill_id: str, payload: bytes) -> None:
        """Keep a spill's serialized payload in the local DHT FS shard.

        Unlike the oCache entry (LRU/TTL-governed), the spill object is
        the durable replay source; it only leaves under the FIFO
        ``cache.spill_store_bytes`` budget.  Re-delivery of the same
        spill id (a retried map) overwrites in place.
        """
        budget = self.config.cache.spill_store_bytes
        if budget <= 0 or len(payload) > budget:
            self.metrics.counter("worker.spill_objects_rejected").inc()
            return
        key = (app_id, spill_id)
        with self._lock:
            old = self.spill_objects.pop(key, None)
            if old is not None:
                self.spill_object_bytes -= len(old)
            while self.spill_object_bytes + len(payload) > budget and self.spill_objects:
                victim, evicted = next(iter(self.spill_objects.items()))
                del self.spill_objects[victim]
                self.spill_object_bytes -= len(evicted)
                self.metrics.counter("worker.spill_objects_evicted").inc()
            self.spill_objects[key] = payload
            self.spill_object_bytes += len(payload)
        self.metrics.counter("worker.spill_objects_stored").inc()

    def import_spill_object(self, app_id: str, spill_id: str, payload) -> int:
        """Accept another worker's persisted spill object (drain handoff).

        The payload lands in the local persisted store only -- the oCache
        refills lazily from it on the first replay read, like any other
        store hit.
        """
        payload = bytes(payload)  # snapshot the out-of-band frame view
        self._persist_spill_object(app_id, spill_id, payload)
        self.metrics.counter("worker.spill_objects_imported").inc()
        return len(payload)

    def handoff_spills(self, host: str, port: int) -> dict[str, Any]:
        """Push every persisted spill object to a successor (drain path).

        Worker-to-worker: the draining node batches its whole persisted
        store to ``(host, port)`` as one pipelined ``call_many`` of
        ``import_spill_object`` calls with out-of-band payloads, keeping
        the coordinator off the data path.  Returns the handoff tally.
        """
        with self._lock:
            objects = list(self.spill_objects.items())
        if not objects:
            return {"objects": 0, "bytes": 0}
        calls = [
            ("import_spill_object",
             {"app_id": app_id, "spill_id": spill_id},
             payload, "payload")
            for (app_id, spill_id), payload in objects
        ]
        self.pool.call_many((host, int(port)), calls)
        total = sum(len(payload) for _, payload in objects)
        self.metrics.counter("worker.spill_objects_handed_off").inc(len(objects))
        self.metrics.counter("worker.spill_bytes_handed_off").inc(total)
        return {"objects": len(objects), "bytes": total}

    def replay_intermediates(self, app_id: str, spills: list[tuple[str, int]],
                             ttl: float | None = None,
                             job_uid: str | None = None,
                             attempt: int = 0) -> dict[str, Any]:
        """Repopulate the local intermediate store from cached/persisted spills.

        ``spills`` is this worker's slice of a completion marker:
        ``[(spill_id, nbytes), ...]`` with the *original* push sizes.
        Check-then-apply: if any spill is neither in oCache nor in the
        persisted store, nothing is delivered and ``{"ok": False}`` comes
        back -- the coordinator then re-executes the map instead.
        """
        staged: list[tuple[str, list, int, bytes | None]] = []
        ocache_hits = 0
        ocache_misses = 0
        for spill_id, nbytes in spills:
            hit, pairs = self.cache.get_output(app_id, spill_id)
            if hit:
                ocache_hits += 1
                staged.append((spill_id, pairs, nbytes, None))
                continue
            ocache_misses += 1
            with self._lock:
                payload = self.spill_objects.get((app_id, spill_id))
            if payload is None:
                self.metrics.counter("worker.replay_misses").inc()
                return {"ok": False, "missing": spill_id,
                        "worker_id": self.worker_id}
            staged.append((spill_id, pickle.loads(payload), nbytes, payload))
        replayed_bytes = 0
        for spill_id, pairs, nbytes, payload in staged:
            with self._lock:
                self.intermediates.receive(job_uid or app_id, spill_id, pairs,
                                           nbytes, attempt=attempt)
            if payload is not None:  # refill the oCache on a store read
                self.cache.put_output(app_id, spill_id, pairs,
                                      size=len(payload), ttl=ttl)
            replayed_bytes += nbytes
        self.metrics.counter("worker.spills_replayed").inc(len(staged))
        return {"ok": True, "worker_id": self.worker_id,
                "spills": len(staged), "bytes": replayed_bytes,
                "ocache_hits": ocache_hits, "ocache_misses": ocache_misses}

    def discard_spills(self, app_id: str, spill_ids: list[str],
                       job_uid: str | None = None,
                       attempt: int | None = None) -> int:
        """Drop specific in-flight spills (fallback after a partial replay,
        or a speculative loser's retraction when ``attempt`` is given)."""
        with self._lock:
            return self.intermediates.discard_spills(job_uid or app_id,
                                                     spill_ids, attempt=attempt)

    def run_reduce(self, job: dict) -> Any:
        decoded = self._job(job)
        with self._lock:
            # Deterministic consumption order: spill ids, not arrival order
            # (concurrent mappers race their pushes).
            spills = sorted(self.intermediates.spills_for(decoded.job_uid).items())
        pairs = [pair for _, spill in spills for pair in spill]
        if not pairs:
            return {"worker_id": self.worker_id, "pairs": 0, "output": {}}
        grouped: dict[Any, list[Any]] = defaultdict(list)
        for k, v in pairs:
            grouped[k].append(v)
        output = {k: decoded.reduce_fn(k, vs) for k, vs in grouped.items()}
        self.metrics.counter("worker.reduces_run").inc()
        # An output over the page threshold streams out as paged frames
        # (reassembled by the coordinator) instead of one giant envelope;
        # small outputs keep the inline shape.  Pages must also fit well
        # inside a frame beside their chunk envelopes.
        page_bytes = min(self.config.net.stream_page_bytes,
                         max(64, self.config.net.max_frame_bytes // 2))
        pager = iter_output_pages(output, page_bytes)
        first = next(pager, None)
        second = next(pager, None)
        if second is None and (first is None or len(first) <= page_bytes):
            return {"worker_id": self.worker_id, "pairs": len(pairs),
                    "output": output}
        self.metrics.counter("worker.reduces_streamed").inc()

        def pages():
            yield first
            if second is not None:
                yield second
            yield from pager

        return Stream(pages(), value={"worker_id": self.worker_id,
                                      "pairs": len(pairs)})

    # -- wiring -------------------------------------------------------------------

    def handlers(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        out = {
            "ping": self.ping,
            "put_block": self.put_block,
            "restore_block": self.restore_block,
            "fetch_block": self._fetch_block_rpc,
            "drop_block": self.drop_block,
            "update_ring": self.update_ring,
            "discard_job": self.discard_job,
            "run_map": self.run_map,
            "push_spill": self.push_spill,
            "replay_intermediates": self.replay_intermediates,
            "import_spill_object": self.import_spill_object,
            "handoff_spills": self.handoff_spills,
            "discard_spills": self.discard_spills,
            "run_reduce": self.run_reduce,
            "get_stats": self.get_stats,
        }
        out.update(extra or {})
        return out

    def close(self) -> None:
        self._spill_pool.shutdown(wait=False)
        self.pool.close_all()


def worker_main(
    worker_id: str,
    coordinator_host: str,
    coordinator_port: int,
    manifest: dict,
    space_size: int,
    extra_sys_path: tuple[str, ...] = (),
) -> None:
    """Entry point of a worker process (the ``multiprocessing`` target).

    ``extra_sys_path`` carries the parent's source root explicitly (the
    import-path contract travels in the worker args, not via a mutated
    parent environment).
    """
    import sys

    for entry in extra_sys_path:
        if entry not in sys.path:
            sys.path.insert(0, entry)
    config = config_from_dict(manifest)
    node = WorkerNode(worker_id, config, HashSpace(space_size))
    stop = threading.Event()

    server = RpcServer(
        node.handlers({"shutdown": lambda: (stop.set(), "bye")[1]}),
        net=config.net,
        metrics=node.metrics,
    )
    fault_hook = None
    if node.fault.active:
        node.fault.bind("coordinator", (coordinator_host, coordinator_port))
        server.fault_hook = node.fault.on_serve
        fault_hook = node.fault.on_send
    server.start()
    heartbeats = HeartbeatSender(
        worker_id,
        (coordinator_host, coordinator_port),
        config.net,
        on_coordinator_lost=stop.set,
        fault_hook=fault_hook,
    )
    try:
        client = RpcClient(coordinator_host, coordinator_port, net=config.net)
        client.fault_hook = fault_hook
        client.call(
            "register",
            {"worker_id": worker_id, "host": server.host, "port": server.port},
        )
        client.close()
        heartbeats.start()
        stop.wait()
    finally:
        heartbeats.stop()
        server.stop()
        node.close()
