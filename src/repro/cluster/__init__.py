"""Plane 3: a real multi-process EclipseMR cluster on localhost TCP.

Workers are OS processes (``multiprocessing``) each holding a DHT FS
shard, an iCache/oCache partition, and an intermediate store; the
coordinator owns the ring, the LAF scheduler, and heartbeat liveness.
:class:`ClusterRuntime` exposes the same ``run(job)`` API as the
sequential and thread-pool runtimes.
"""

from repro.cluster.coordinator import Coordinator
from repro.cluster.fnpickle import dumps_fn, loads_fn
from repro.cluster.heartbeat import HeartbeatSender, LivenessTracker
from repro.cluster.messages import RingTable, WorkerAddress, decode_job, encode_job
from repro.cluster.runtime import ClusterRuntime
from repro.cluster.worker import WorkerNode, worker_main

__all__ = [
    "ClusterRuntime",
    "Coordinator",
    "WorkerNode",
    "worker_main",
    "LivenessTracker",
    "HeartbeatSender",
    "RingTable",
    "WorkerAddress",
    "encode_job",
    "decode_job",
    "dumps_fn",
    "loads_fn",
]
