"""Wire-level value types shared by the coordinator and workers.

Workers never see the coordinator's full :class:`ConsistentHashRing`
object -- they receive a :class:`RingTable`, the flat ``(position,
worker)`` list every EclipseMR server derives from its one-hop finger
table, and route spill pushes with it locally.  Jobs travel as plain
dicts whose functions are pre-serialized by :mod:`repro.cluster.fnpickle`
so the RPC envelope itself never pickles a closure.
"""

from __future__ import annotations

import bisect
import pickle
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import ClusterError
from repro.mapreduce.job import MapReduceJob
from repro.cluster.fnpickle import dumps_fn, loads_fn

__all__ = [
    "WorkerAddress",
    "RingTable",
    "CompletionMarker",
    "heartbeat_args",
    "encode_job",
    "DecodedJob",
    "decode_job",
    "encode_spill",
    "decode_spill",
    "iter_output_pages",
    "decode_output_pages",
    "reassemble_reduce",
]


@dataclass(frozen=True)
class WorkerAddress:
    """Where a worker's RPC server listens."""

    worker_id: str
    host: str
    port: int

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host, self.port)


class RingTable:
    """An immutable snapshot of the DHT ring: sorted positions -> owners.

    Implements the same ownership rule as
    :meth:`repro.dht.ring.ConsistentHashRing.owner_of` (the node at the
    first position strictly greater than the key owns it, wrapping past
    the top), so the coordinator and every worker route a hash key to the
    same server without talking to each other.
    """

    def __init__(self, entries: list[tuple[int, str]], epoch: int = 0) -> None:
        if not entries:
            raise ClusterError("ring table needs at least one worker")
        ordered = sorted(entries)
        self.positions = [pos for pos, _ in ordered]
        self.owners = [wid for _, wid in ordered]
        if len(set(self.positions)) != len(self.positions):
            raise ClusterError("ring table has duplicate positions")
        self.epoch = epoch

    @classmethod
    def from_ring(cls, ring, epoch: int = 0) -> "RingTable":
        return cls([(ring.position_of(node), node) for node in ring.nodes], epoch)

    def owner_of(self, key: int) -> str:
        idx = bisect.bisect_right(self.positions, key)
        if idx == len(self.positions):
            idx = 0
        return self.owners[idx]

    def to_wire(self) -> dict[str, Any]:
        return {"entries": list(zip(self.positions, self.owners)), "epoch": self.epoch}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "RingTable":
        return cls([tuple(e) for e in wire["entries"]], wire["epoch"])

    def __len__(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class CompletionMarker:
    """One finished map task's spill manifest (the oCache replay unit).

    The cluster-plane analog of the sequential runtime's
    ``_imr-done/{app_id}/{input_file}#map{index}`` DFS object: it names
    every spill the map delivered as ``(dest_worker, spill_id, nbytes)``
    so a later ``reuse_intermediates`` job can repopulate the reduce-side
    stores -- with the *original* byte accounting -- without re-mapping.
    Markers are control-plane metadata and live on the coordinator, next
    to the file metadata; the spill payloads themselves stay sharded on
    the destination workers (oCache + persisted spill objects).
    """

    app_id: str
    input_file: str
    block_index: int
    entries: tuple[tuple[str, str, int], ...]  # (dest, spill_id, nbytes)

    @property
    def spill_count(self) -> int:
        return len(self.entries)

    @property
    def total_nbytes(self) -> int:
        return sum(nbytes for _, _, nbytes in self.entries)

    def by_dest(self) -> dict[str, list[tuple[str, int]]]:
        """Entries grouped per destination worker, manifest order kept:
        ``{dest: [(spill_id, nbytes), ...]}`` -- one replay RPC per dest."""
        out: dict[str, list[tuple[str, int]]] = {}
        for dest, spill_id, nbytes in self.entries:
            out.setdefault(dest, []).append((spill_id, nbytes))
        return out

    def spill_ids(self) -> list[str]:
        return [spill_id for _, spill_id, _ in self.entries]

    def dests(self) -> frozenset:
        """The destination workers holding this map's spills -- the
        salvage criterion: a completed map survives a failover iff every
        one of these is still alive."""
        return frozenset(dest for dest, _, _ in self.entries)

    def to_wire(self) -> dict[str, Any]:
        return {
            "app_id": self.app_id,
            "input_file": self.input_file,
            "block_index": self.block_index,
            "entries": [list(e) for e in self.entries],
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "CompletionMarker":
        return cls(
            app_id=wire["app_id"],
            input_file=wire["input_file"],
            block_index=wire["block_index"],
            entries=tuple((str(d), str(s), int(n)) for d, s, n in wire["entries"]),
        )


def heartbeat_args(
    worker_id: str, seq: int, rtt_s: Optional[float] = None
) -> dict[str, Any]:
    """The wire shape of one heartbeat RPC's args.

    ``rtt_s`` is the round-trip latency the *previous* beat measured on
    the worker side -- the coordinator learns each worker's control-plane
    latency one beat late, which is fine for health scoring.  ``None``
    (first beat, or a beat after a reconnect) means "no sample"; the key
    is omitted so old coordinators keep accepting the call.
    """
    args: dict[str, Any] = {"worker_id": worker_id, "seq": seq}
    if rtt_s is not None:
        args["rtt_s"] = float(rtt_s)
    return args


def encode_job(job: MapReduceJob, job_uid: str | None = None) -> dict[str, Any]:
    """A job as wire-safe plain data (functions pre-serialized).

    ``job_uid`` names one *submission* of the app: two concurrent jobs
    sharing an ``app_id`` (or a replayed job racing a fresh one) keep
    their in-flight worker state -- intermediate stores, decoded-job
    caches, reduce inputs -- apart under distinct uids, while durable
    state (oCache entries, persisted spill objects, completion markers)
    stays keyed by ``app_id`` so replays keep working across runs.
    """
    return {
        "app_id": job.app_id,
        "job_uid": job_uid or job.app_id,
        "input_file": job.input_file,
        "user": job.user,
        "map_fn": dumps_fn(job.map_fn),
        "reduce_fn": dumps_fn(job.reduce_fn),
        "combiner": dumps_fn(job.combiner) if job.combiner is not None else None,
        "spill_buffer_bytes": job.spill_buffer_bytes,
        "cross_spill_combine": job.cross_spill_combine,
        "cache_intermediates": job.cache_intermediates,
        "intermediate_ttl": job.intermediate_ttl,
    }


@dataclass
class DecodedJob:
    """A worker-side job: same fields, functions rebuilt and callable."""

    app_id: str
    job_uid: str
    input_file: str
    user: str
    map_fn: Any
    reduce_fn: Any
    combiner: Optional[Any]
    spill_buffer_bytes: int
    cross_spill_combine: bool
    cache_intermediates: bool
    intermediate_ttl: Optional[float]


def encode_spill(pairs: list[tuple[Any, Any]]) -> bytes:
    """Serialize a spill's pairs for the out-of-band payload frame.

    The payload rides *beside* the RPC envelope (a raw frame the receiver
    gets as a memoryview), so the envelope stays a few hundred bytes no
    matter how large the spill is -- the proactive-shuffle bulk path.
    """
    return pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)


def decode_spill(payload) -> list[tuple[Any, Any]]:
    """Rebuild a spill's pairs from an out-of-band payload (bytes-like)."""
    return pickle.loads(payload)


def iter_output_pages(output: dict[Any, Any], page_bytes: int):
    """Page a reduce output dict into pickled slices of bounded size.

    Lazily yields ``bytes`` pages, each the pickle of a list of ``(key,
    value)`` pairs whose individual pickled sizes sum to at most
    ``page_bytes`` -- except that a single pair bigger than a page gets a
    page of its own (a key's value cannot be split).  Pages preserve dict
    order, so ``decode_output_pages`` rebuilds an *equal* dict (same
    items, same insertion order).  An empty output yields no pages.

    These are the payloads of the transport's ``stream chunk`` frames
    (``stream begin``/``chunk``/``end``, :mod:`repro.net.rpc`): a reduce
    output larger than ``net.max_frame_bytes`` flows as many small frames
    and is never materialized as one envelope on either side.
    """
    if page_bytes < 1:
        raise ClusterError(f"page size must be >= 1, got {page_bytes}")
    chunk: list[tuple[Any, Any]] = []
    size = 0
    for item in output.items():
        nbytes = len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        if chunk and size + nbytes > page_bytes:
            yield pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
            chunk = []
            size = 0
        chunk.append(item)
        size += nbytes
    if chunk:
        yield pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)


def decode_output_pages(pages) -> dict[Any, Any]:
    """Reassemble :func:`iter_output_pages` pages into the output dict."""
    output: dict[Any, Any] = {}
    for page in pages:
        for key, value in pickle.loads(page):
            output[key] = value
    return output


def reassemble_reduce(result) -> dict[str, Any]:
    """Collapse a ``run_reduce`` response into its plain result dict.

    Small outputs come back inline (already the result dict); outputs
    over the page threshold arrive as a
    :class:`~repro.net.rpc.StreamResult` whose header carries the
    metadata and whose pages carry the output -- rebuild the inline
    shape so callers never see the transport.
    """
    from repro.net.rpc import StreamResult

    if not isinstance(result, StreamResult):
        return result
    header = dict(result.value or {})
    header["output"] = decode_output_pages(result.pages)
    return header


def decode_job(wire: dict[str, Any]) -> DecodedJob:
    return DecodedJob(
        app_id=wire["app_id"],
        job_uid=wire.get("job_uid", wire["app_id"]),
        input_file=wire["input_file"],
        user=wire["user"],
        map_fn=loads_fn(wire["map_fn"]),
        reduce_fn=loads_fn(wire["reduce_fn"]),
        combiner=loads_fn(wire["combiner"]) if wire["combiner"] is not None else None,
        spill_buffer_bytes=wire["spill_buffer_bytes"],
        cross_spill_combine=wire.get("cross_spill_combine", False),
        cache_intermediates=wire["cache_intermediates"],
        intermediate_ttl=wire["intermediate_ttl"],
    )
