"""Wire-level value types shared by the coordinator and workers.

Workers never see the coordinator's full :class:`ConsistentHashRing`
object -- they receive a :class:`RingTable`, the flat ``(position,
worker)`` list every EclipseMR server derives from its one-hop finger
table, and route spill pushes with it locally.  Jobs travel as plain
dicts whose functions are pre-serialized by :mod:`repro.cluster.fnpickle`
so the RPC envelope itself never pickles a closure.
"""

from __future__ import annotations

import bisect
import pickle
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import ClusterError
from repro.mapreduce.job import MapReduceJob
from repro.cluster.fnpickle import dumps_fn, loads_fn

__all__ = [
    "WorkerAddress",
    "RingTable",
    "encode_job",
    "DecodedJob",
    "decode_job",
    "encode_spill",
    "decode_spill",
]


@dataclass(frozen=True)
class WorkerAddress:
    """Where a worker's RPC server listens."""

    worker_id: str
    host: str
    port: int

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host, self.port)


class RingTable:
    """An immutable snapshot of the DHT ring: sorted positions -> owners.

    Implements the same ownership rule as
    :meth:`repro.dht.ring.ConsistentHashRing.owner_of` (the node at the
    first position strictly greater than the key owns it, wrapping past
    the top), so the coordinator and every worker route a hash key to the
    same server without talking to each other.
    """

    def __init__(self, entries: list[tuple[int, str]], epoch: int = 0) -> None:
        if not entries:
            raise ClusterError("ring table needs at least one worker")
        ordered = sorted(entries)
        self.positions = [pos for pos, _ in ordered]
        self.owners = [wid for _, wid in ordered]
        if len(set(self.positions)) != len(self.positions):
            raise ClusterError("ring table has duplicate positions")
        self.epoch = epoch

    @classmethod
    def from_ring(cls, ring, epoch: int = 0) -> "RingTable":
        return cls([(ring.position_of(node), node) for node in ring.nodes], epoch)

    def owner_of(self, key: int) -> str:
        idx = bisect.bisect_right(self.positions, key)
        if idx == len(self.positions):
            idx = 0
        return self.owners[idx]

    def to_wire(self) -> dict[str, Any]:
        return {"entries": list(zip(self.positions, self.owners)), "epoch": self.epoch}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "RingTable":
        return cls([tuple(e) for e in wire["entries"]], wire["epoch"])

    def __len__(self) -> int:
        return len(self.positions)


def encode_job(job: MapReduceJob) -> dict[str, Any]:
    """A job as wire-safe plain data (functions pre-serialized)."""
    return {
        "app_id": job.app_id,
        "input_file": job.input_file,
        "user": job.user,
        "map_fn": dumps_fn(job.map_fn),
        "reduce_fn": dumps_fn(job.reduce_fn),
        "combiner": dumps_fn(job.combiner) if job.combiner is not None else None,
        "spill_buffer_bytes": job.spill_buffer_bytes,
        "cache_intermediates": job.cache_intermediates,
        "intermediate_ttl": job.intermediate_ttl,
    }


@dataclass
class DecodedJob:
    """A worker-side job: same fields, functions rebuilt and callable."""

    app_id: str
    input_file: str
    user: str
    map_fn: Any
    reduce_fn: Any
    combiner: Optional[Any]
    spill_buffer_bytes: int
    cache_intermediates: bool
    intermediate_ttl: Optional[float]


def encode_spill(pairs: list[tuple[Any, Any]]) -> bytes:
    """Serialize a spill's pairs for the out-of-band payload frame.

    The payload rides *beside* the RPC envelope (a raw frame the receiver
    gets as a memoryview), so the envelope stays a few hundred bytes no
    matter how large the spill is -- the proactive-shuffle bulk path.
    """
    return pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)


def decode_spill(payload) -> list[tuple[Any, Any]]:
    """Rebuild a spill's pairs from an out-of-band payload (bytes-like)."""
    return pickle.loads(payload)


def decode_job(wire: dict[str, Any]) -> DecodedJob:
    return DecodedJob(
        app_id=wire["app_id"],
        input_file=wire["input_file"],
        user=wire["user"],
        map_fn=loads_fn(wire["map_fn"]),
        reduce_fn=loads_fn(wire["reduce_fn"]),
        combiner=loads_fn(wire["combiner"]) if wire["combiner"] is not None else None,
        spill_buffer_bytes=wire["spill_buffer_bytes"],
        cache_intermediates=wire["cache_intermediates"],
        intermediate_ttl=wire["intermediate_ttl"],
    )
