"""Plane 3: the multi-process cluster runtime.

:class:`ClusterRuntime` exposes the same ``upload`` / ``run(job)`` API as
the sequential :class:`~repro.mapreduce.runtime.EclipseMRRuntime`, but
workers are real OS processes (no GIL sharing) serving RPCs over
localhost TCP.  Map tasks are dispatched by hash key to the worker whose
LAF range covers the block; the workers read their blocks shard-locally
(or from a replica holder over the wire), push spills worker-to-worker,
and reduce in place.

Fault tolerance follows the paper's replication story end-to-end: a
worker killed mid-job stops heartbeating (or drops its TCP connections);
the coordinator declares it dead, merges its arc into its successor's,
re-replicates the blocks that lost a copy from the surviving replica
holders, broadcasts the new ring, and re-executes the job's map tasks on
the survivors.  Re-execution is safe because spill delivery is keyed by
deterministic spill ids -- a re-pushed spill overwrites, never duplicates.

Outputs are equal to the sequential runtime's: the scheduler sees the
same assignment sequence (all assignments are drawn before any dispatch,
when every worker's load is zero -- exactly the state the sequential
runtime assigns in), and reduce grouping is made deterministic by
consuming spills in spill-id order.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence

import repro as _repro_pkg
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ClusterError,
    NetworkError,
    RpcRemoteError,
    WorkerLost,
)
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.common.serialization import config_to_dict
from repro.cluster.coordinator import Coordinator
from repro.cluster.messages import CompletionMarker, encode_job, reassemble_reduce
from repro.cluster.worker import worker_main
from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.sim.metrics import MetricsRegistry

__all__ = ["ClusterRuntime"]


class ClusterRuntime:
    """An EclipseMR cluster of real worker processes on localhost."""

    def __init__(
        self,
        worker_ids: Sequence[str] | int,
        config: ClusterConfig | None = None,
        scheduler: str = "laf",
        space: HashSpace = DEFAULT_SPACE,
    ) -> None:
        if isinstance(worker_ids, int):
            worker_ids = [f"worker-{i}" for i in range(worker_ids)]
        self.config = config or ClusterConfig()
        self.space = space
        self.metrics = MetricsRegistry()
        self.coordinator = Coordinator(
            worker_ids, self.config, scheduler, space, metrics=self.metrics
        )
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._closed = False
        #: Test/chaos hook: called with the number of completed map tasks
        #: after each one finishes (killing a worker here exercises failover).
        self.on_map_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with the number of maps skipped by
        #: oCache replay so far (killing a worker here exercises the
        #: mid-replay failover / fallback-to-re-map path).
        self.on_replay_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with ``(worker_addr, pages_so_far)`` as
        #: each streamed-response page reaches the coordinator (killing the
        #: sender here exercises mid-stream failover).
        self.on_stream_page: Optional[Callable[[tuple[str, int], int], None]] = None
        self.coordinator.set_stream_page_hook(self._stream_page)
        try:
            self._start_workers()
            self.coordinator.wait_for_workers(self.config.net.start_timeout)
            self.coordinator.broadcast_ring()
        except BaseException:
            self.shutdown()
            raise

    def _stream_page(self, addr: tuple[str, int], pages: int) -> None:
        hook = self.on_stream_page
        if hook is not None:
            hook(addr, pages)

    # -- process management ---------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = multiprocessing.get_context(self.config.net.mp_start_method)
        manifest = config_to_dict(self.config)
        # Spawned children re-import ``repro``; make sure they can even when
        # the parent runs from a source tree that is not installed.  The
        # parent's ``sys.path`` travels to spawn/forkserver children via
        # multiprocessing's preparation data, and the explicit worker arg
        # re-asserts it at worker startup -- no mutation of the parent's
        # environment (the old PYTHONPATH save/restore raced concurrent
        # cluster startups and anything else reading the environment).
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
        if src_root not in sys.path:
            sys.path.insert(0, src_root)
        for wid in self.coordinator.worker_ids:
            proc = ctx.Process(
                target=worker_main,
                args=(
                    wid,
                    self.coordinator.server.host,
                    self.coordinator.server.port,
                    manifest,
                    self.space.size,
                    (src_root,),
                ),
                name=f"eclipsemr-{wid}",
                daemon=True,
            )
            proc.start()
            self._processes[wid] = proc

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker process *without* telling the coordinator.

        Detection must come the honest way: missed heartbeats or dead TCP
        connections.  This is the chaos hook the failover tests use.
        """
        proc = self._processes.get(worker_id)
        if proc is None:
            raise ClusterError(f"no process for worker {worker_id!r}")
        proc.kill()
        proc.join(timeout=10.0)
        self.metrics.counter("cluster.workers_killed").inc()

    def _reap(self, worker_id: str) -> None:
        proc = self._processes.pop(worker_id, None)
        if proc is None:
            return
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    # -- membership views -----------------------------------------------------------

    @property
    def worker_ids(self) -> list[str]:
        return self.coordinator.alive_ids()

    def check_liveness(self) -> list[str]:
        """Heartbeat-dead workers (detected, not yet failed over)."""
        return self.coordinator.check_heartbeats()

    # -- data -----------------------------------------------------------------------

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        """Put an input file into the workers' DHT FS shards."""
        self.coordinator.upload(name, data, **kwargs)

    # -- job execution ---------------------------------------------------------------

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute one MapReduce job across the worker processes."""
        meta = self.coordinator.stat(job.input_file, user=job.user)
        wire = encode_job(job)
        max_failovers = max(0, len(self.coordinator.alive_ids()) - 1)
        failovers = 0
        reexecuted = 0
        while True:
            stats = JobStats(
                tasks_per_server={wid: 0 for wid in self.coordinator.alive_ids()}
            )
            try:
                self._broadcast("discard_job", {"app_id": job.app_id})
                self._map_phase(job, wire, meta, stats)
                output = self._reduce_phase(job, wire, stats)
            except WorkerLost as lost:
                failovers += 1
                # Completed maps of the aborted attempt will run again.
                reexecuted += stats.map_tasks
                self.metrics.counter("cluster.tasks_reexecuted").inc(stats.map_tasks)
                if failovers > max_failovers:
                    raise ClusterError(
                        f"job {job.app_id!r} lost {failovers} workers; giving up"
                    ) from lost
                self._failover(lost.worker_id)
                continue
            # The result is assembled: cleanup is best-effort from here
            # on.  A worker dying under the end-of-job broadcast must
            # never restart a *completed* job.
            self._cleanup_job(job.app_id)
            stats.task_retries = reexecuted
            return JobResult(app_id=job.app_id, output=output, stats=stats)

    def _cleanup_job(self, app_id: str) -> None:
        """Drop a finished job's in-flight intermediates on every worker.

        Failures are swallowed and counted (``cluster.cleanup_failures``):
        whoever missed the broadcast is either dead (its store died with
        it) or will shed the entries when the next job's start-of-attempt
        ``discard_job`` reaches it."""
        try:
            self._broadcast("discard_job", {"app_id": app_id})
        except Exception:
            self.metrics.counter("cluster.cleanup_failures").inc()

    # -- phases ----------------------------------------------------------------------

    def _map_phase(self, job: MapReduceJob, wire: dict, meta, stats: JobStats) -> None:
        dead = self.coordinator.check_heartbeats()
        if dead:
            raise WorkerLost(dead[0], "missed heartbeats")
        # Draw every assignment before any dispatch: the scheduler sees the
        # same zero-load state at each decision as in the sequential runtime,
        # so the assignment sequence (and tasks_per_server) is identical.
        assignments = []
        for desc in meta.blocks:
            a = self.coordinator.scheduler.assign(hash_key=desc.key)
            assignments.append((desc, a.server))
            stats.tasks_per_server[a.server] += 1
        if not assignments:
            return
        pool_size = min(16, len(assignments))
        lost: WorkerLost | None = None
        with ThreadPoolExecutor(max_workers=pool_size, thread_name_prefix="dispatch") as pool:
            futures = []
            for desc, wid in assignments:
                self.coordinator.scheduler.notify_start(wid)
                futures.append((desc, wid, pool.submit(self._dispatch_task, job, wire, desc, wid)))
            for desc, wid, fut in futures:
                try:
                    result = fut.result()
                except WorkerLost as exc:
                    if lost is None:
                        lost = exc
                    continue
                finally:
                    self.coordinator.scheduler.notify_finish(wid)
                if lost is not None:
                    continue  # drain remaining futures; job restarts anyway
                stats.spills += result["spills"]
                stats.bytes_shuffled += result["bytes_shuffled"]
                if result.get("replayed"):
                    # oCache replay: the reduce side was repopulated from
                    # cached/persisted spills; no map ran, no block read.
                    stats.maps_skipped_by_reuse += 1
                    stats.ocache_hits += result["ocache_hits"]
                    stats.ocache_misses += result["ocache_misses"]
                    if self.on_replay_complete is not None:
                        self.on_replay_complete(stats.maps_skipped_by_reuse)
                    continue
                stats.map_tasks += 1
                if result["source"] == "icache":
                    stats.icache_hits += 1
                else:
                    stats.icache_misses += 1
                    if result["source"] == "local":
                        stats.local_block_reads += 1
                    else:
                        stats.remote_block_reads += 1
                if result.get("manifest") is not None:
                    self.coordinator.record_marker(CompletionMarker(
                        app_id=job.app_id,
                        input_file=job.input_file,
                        block_index=desc.index,
                        entries=tuple(tuple(e) for e in result["manifest"]),
                    ))
                if self.on_map_complete is not None:
                    self.on_map_complete(stats.map_tasks)
        if lost is not None:
            raise lost

    def _dispatch_task(self, job: MapReduceJob, wire: dict, desc, wid: str) -> dict:
        """Replay one block's intermediates if a marker allows it, else map."""
        if job.reuse_intermediates:
            marker = self.coordinator.marker_for(job.app_id, job.input_file, desc.index)
            if marker is not None:
                replayed = self._try_replay(job, marker)
                if replayed is not None:
                    return replayed
        return self._dispatch_map(wid, wire, desc)

    def _try_replay(self, job: MapReduceJob, marker: CompletionMarker) -> dict | None:
        """Replay one map task's spills from its completion marker.

        One ``replay_intermediates`` RPC per destination worker; each is
        check-then-apply on its side.  Any miss (a destination died with
        its shard, or a spill object fell out of the FIFO budget) undoes
        the destinations already applied and returns ``None`` -- the
        caller re-executes the map instead.  A destination dying *during*
        replay surfaces as ``WorkerLost`` and rides the normal failover /
        re-execution loop (the restarted attempt begins with a
        ``discard_job`` broadcast, so partial replays never leak into it).
        """
        groups = marker.by_dest()
        if any(dest not in self.coordinator.addresses for dest in groups):
            self.metrics.counter("cluster.replay_fallbacks").inc()
            return None
        applied: list[str] = []
        spills = nbytes = ocache_hits = ocache_misses = 0
        for dest, entries in groups.items():
            result = self._call_worker(
                dest,
                "replay_intermediates",
                {"app_id": job.app_id, "spills": entries,
                 "ttl": job.intermediate_ttl},
            )
            if not result["ok"]:
                self._discard_partial_replay(job, marker, applied)
                self.metrics.counter("cluster.replay_fallbacks").inc()
                return None
            applied.append(dest)
            spills += result["spills"]
            nbytes += result["bytes"]
            ocache_hits += result["ocache_hits"]
            ocache_misses += result["ocache_misses"]
        self.metrics.counter("cluster.maps_replayed").inc()
        return {"replayed": True, "spills": spills, "bytes_shuffled": nbytes,
                "ocache_hits": ocache_hits, "ocache_misses": ocache_misses}

    def _discard_partial_replay(self, job: MapReduceJob, marker: CompletionMarker,
                                applied: list[str]) -> None:
        """Un-deliver the spills of a partially replayed map task.

        Errors propagate: an unreachable destination becomes
        ``WorkerLost`` and restarts the attempt (which re-discards
        everything anyway), so stale spills can never survive into the
        re-mapped shuffle."""
        groups = marker.by_dest()
        for dest in applied:
            self._call_worker(dest, "discard_spills", {
                "app_id": job.app_id,
                "spill_ids": [sid for sid, _ in groups[dest]],
            })

    def _dispatch_map(self, wid: str, wire: dict, desc) -> dict:
        holders = [
            (a.worker_id, a.host, a.port)
            for a in self.coordinator.block_holders(wire["input_file"], desc.index)
        ]
        return self._call_worker(
            wid,
            "run_map",
            {"job": wire, "name": wire["input_file"], "index": desc.index,
             "holders": holders},
        )

    def _reduce_phase(self, job: MapReduceJob, wire: dict, stats: JobStats) -> dict:
        """Run every worker's reduce concurrently; merge in worker order.

        Each worker reduces the spills that already live on it, so the
        phase is embarrassingly parallel.  Results are merged in
        ``alive_ids`` order (not completion order), keeping the output
        dict and the duplicate-key check deterministic; per-key outputs
        are disjoint by construction (DHT routing), which the merge
        still verifies.

        A reduce output over ``net.stream_page_bytes`` arrives as a paged
        stream; ``reassemble_reduce`` rebuilds the inline result shape
        from the pages.  A worker dying mid-stream surfaces as a
        transport failure (partial pages discarded by the RPC layer), so
        it rides the same ``WorkerLost`` -> failover -> re-execution path
        as any other death.
        """
        alive = self.coordinator.alive_ids()
        lost: WorkerLost | None = None
        results: dict[str, dict] = {}

        def reduce_on(wid: str) -> dict:
            self.coordinator.scheduler.notify_start(wid)
            try:
                return reassemble_reduce(
                    self._call_worker(wid, "run_reduce", {"job": wire})
                )
            finally:
                self.coordinator.scheduler.notify_finish(wid)

        with ThreadPoolExecutor(max_workers=max(1, len(alive)),
                                thread_name_prefix="reduce") as pool:
            futures = [(wid, pool.submit(reduce_on, wid)) for wid in alive]
            for wid, fut in futures:
                try:
                    results[wid] = fut.result()
                except WorkerLost as exc:  # drain the rest; job restarts anyway
                    if lost is None:
                        lost = exc
        if lost is not None:
            raise lost
        output: dict[Any, Any] = {}
        for wid in alive:
            result = results[wid]
            if result["pairs"] == 0:
                continue
            for k, v in result["output"].items():
                if k in output:
                    raise ClusterError(f"intermediate key {k!r} reduced on two servers")
                output[k] = v
            stats.reduce_tasks += 1
            stats.tasks_per_server[wid] += 1
        return output

    # -- RPC plumbing -----------------------------------------------------------------

    def _call_worker(self, wid: str, method: str, args: dict,
                     timeout: float | None = None) -> Any:
        addr = self.coordinator.address_of(wid).addr
        try:
            return self.coordinator.pool.call(addr, method, args, timeout=timeout)
        except RpcRemoteError as exc:
            if exc.etype == "SpillDeliveryLost" and exc.data:
                # The mapper is fine; its reduce-side *target* is gone.
                raise WorkerLost(exc.data["target"], "spill push failed") from exc
            raise ClusterError(f"worker {wid!r} failed {method}: {exc}") from exc
        except NetworkError as exc:
            raise WorkerLost(wid, str(exc)) from exc

    def _broadcast(self, method: str, args: dict) -> None:
        """Issue one control call to every live worker concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return
        if len(alive) == 1:
            self._call_worker(alive[0], method, args)
            return
        first: Exception | None = None
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="broadcast") as pool:
            for fut in [pool.submit(self._call_worker, wid, method, args)
                        for wid in alive]:
                try:
                    fut.result()
                except Exception as exc:  # drain every call before failing
                    if first is None:
                        first = exc
        if first is not None:
            raise first

    def _failover(self, worker_id: str) -> None:
        wid = worker_id
        for _ in range(len(self.coordinator.worker_ids)):
            self._reap(wid)
            try:
                self.coordinator.mark_dead(wid)
                return
            except WorkerLost as exc:  # another worker died during failover
                wid = exc.worker_id
        raise ClusterError("failover could not stabilize the cluster")

    # -- stats & teardown --------------------------------------------------------------

    def worker_stats(self) -> dict[str, dict]:
        """Live per-worker statistics (tasks run, bytes moved, cache hits),
        gathered from all workers concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return {}
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="stats") as pool:
            futures = [(wid, pool.submit(self._call_worker, wid, "get_stats", {}))
                       for wid in alive]
            return {wid: fut.result() for wid, fut in futures}

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.coordinator.shutdown()
        finally:
            for wid in list(self._processes):
                self._reap(wid)

    def __enter__(self) -> "ClusterRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.shutdown()
        except Exception:
            pass
