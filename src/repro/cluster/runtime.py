"""Plane 3: the multi-process cluster runtime.

:class:`ClusterRuntime` exposes the same ``upload`` / ``run(job)`` API as
the sequential :class:`~repro.mapreduce.runtime.EclipseMRRuntime`, but
workers are real OS processes (no GIL sharing) serving RPCs over
localhost TCP.  Map tasks are dispatched by hash key to the worker whose
LAF range covers the block; the workers read their blocks shard-locally
(or from a replica holder over the wire), push spills worker-to-worker,
and reduce in place.

Fault tolerance is **surgical** (the paper's recovery claim, §V): a
worker killed mid-job stops heartbeating (or drops its TCP connections);
the coordinator declares it dead, merges its arc into its successor's,
re-replicates lost block copies in batches from the least-loaded
survivors, and broadcasts the new ring -- and the *attempt stays alive*.
Completed maps whose spills all landed on surviving destinations are
salvaged as-is; only the dead worker's unfinished maps, plus completed
maps that had delivered spills *to* it, are re-assigned through the
post-failover LAF table.  Re-execution is safe because spill delivery is
keyed by deterministic spill ids and ring removal only grows surviving
arcs: a re-executed map delivers to each surviving destination a
superset of the spill ids it delivered before, so every stale spill is
overwritten, never duplicated.  The salvage/re-run split is counted in
``failover.tasks_salvaged`` / ``cluster.tasks_reexecuted``.

Outputs are equal to the sequential runtime's: the scheduler sees the
same assignment sequence (all assignments are drawn before any dispatch,
when every worker's load is zero -- exactly the state the sequential
runtime assigns in), and reduce grouping is made deterministic by
consuming spills in spill-id order.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence

import repro as _repro_pkg
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ClusterError,
    NetworkError,
    RpcRemoteError,
    WorkerLost,
)
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.common.serialization import config_to_dict
from repro.cluster.coordinator import Coordinator
from repro.cluster.messages import CompletionMarker, encode_job, reassemble_reduce
from repro.cluster.worker import worker_main
from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.sim.metrics import MetricsRegistry

__all__ = ["ClusterRuntime"]


class ClusterRuntime:
    """An EclipseMR cluster of real worker processes on localhost."""

    def __init__(
        self,
        worker_ids: Sequence[str] | int,
        config: ClusterConfig | None = None,
        scheduler: str = "laf",
        space: HashSpace = DEFAULT_SPACE,
    ) -> None:
        if isinstance(worker_ids, int):
            worker_ids = [f"worker-{i}" for i in range(worker_ids)]
        self.config = config or ClusterConfig()
        self.space = space
        self.metrics = MetricsRegistry()
        self.coordinator = Coordinator(
            worker_ids, self.config, scheduler, space, metrics=self.metrics
        )
        #: The coordinator-side fault injector of the chaos plane.  Script
        #: faults by passing ``ClusterConfig(chaos=ChaosConfig(seed=...,
        #: rules=(...)))``; inspect the injected schedule afterwards via
        #: ``runtime.chaos.schedule()`` / ``runtime.chaos.fault_counts()``.
        self.chaos = self.coordinator.fault
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._closed = False
        #: Test/chaos hook: called with the number of completed map tasks
        #: after each one finishes (killing a worker here exercises failover).
        self.on_map_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with the number of maps skipped by
        #: oCache replay so far (killing a worker here exercises the
        #: mid-replay failover / fallback-to-re-map path).
        self.on_replay_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with ``(worker_addr, pages_so_far)`` as
        #: each streamed-response page reaches the coordinator (killing the
        #: sender here exercises mid-stream failover).
        self.on_stream_page: Optional[Callable[[tuple[str, int], int], None]] = None
        self.coordinator.set_stream_page_hook(self._stream_page)
        try:
            self._start_workers()
            self.coordinator.wait_for_workers(self.config.net.start_timeout)
            self._with_failover(self.coordinator.broadcast_ring)
        except BaseException:
            self.shutdown()
            raise

    def _stream_page(self, addr: tuple[str, int], pages: int) -> None:
        hook = self.on_stream_page
        if hook is not None:
            hook(addr, pages)

    # -- process management ---------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = multiprocessing.get_context(self.config.net.mp_start_method)
        manifest = config_to_dict(self.config)
        # Spawned children re-import ``repro``; make sure they can even when
        # the parent runs from a source tree that is not installed.  The
        # parent's ``sys.path`` travels to spawn/forkserver children via
        # multiprocessing's preparation data, and the explicit worker arg
        # re-asserts it at worker startup -- no mutation of the parent's
        # environment (the old PYTHONPATH save/restore raced concurrent
        # cluster startups and anything else reading the environment).
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
        if src_root not in sys.path:
            sys.path.insert(0, src_root)
        for wid in self.coordinator.worker_ids:
            proc = ctx.Process(
                target=worker_main,
                args=(
                    wid,
                    self.coordinator.server.host,
                    self.coordinator.server.port,
                    manifest,
                    self.space.size,
                    (src_root,),
                ),
                name=f"eclipsemr-{wid}",
                daemon=True,
            )
            proc.start()
            self._processes[wid] = proc

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker process *without* telling the coordinator.

        Detection must come the honest way: missed heartbeats or dead TCP
        connections.  This is the chaos hook the failover tests use.
        """
        proc = self._processes.get(worker_id)
        if proc is None:
            raise ClusterError(f"no process for worker {worker_id!r}")
        proc.kill()
        proc.join(timeout=10.0)
        self.metrics.counter("cluster.workers_killed").inc()

    def _reap(self, worker_id: str) -> None:
        proc = self._processes.pop(worker_id, None)
        if proc is None:
            return
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    # -- membership views -----------------------------------------------------------

    @property
    def worker_ids(self) -> list[str]:
        return self.coordinator.alive_ids()

    def check_liveness(self) -> list[str]:
        """Heartbeat-dead workers (detected, not yet failed over)."""
        return self.coordinator.check_heartbeats()

    # -- data -----------------------------------------------------------------------

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        """Put an input file into the workers' DHT FS shards.

        A worker dying (or partitioned away) mid-upload fails over and
        the upload retries against the survivors: placement is recomputed
        on the post-failover ring and block puts are idempotent
        overwrites, so a partial first attempt leaves at worst stale
        extra copies on survivor shards.
        """
        self._with_failover(lambda: self.coordinator.upload(name, data, **kwargs))

    def _with_failover(self, op: Callable[[], Any]) -> Any:
        """Run a pre-job control-plane operation, failing over any death.

        Unlike the in-job loop there is no attempt to keep alive: a
        :class:`WorkerLost` simply removes the victim and the operation
        retries on the survivors.  Bounded because every retry follows a
        death and failing the last worker raises :class:`ClusterError`.
        """
        while True:
            try:
                return op()
            except WorkerLost as lost:
                self._failover(lost.worker_id)

    # -- job execution ---------------------------------------------------------------

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute one MapReduce job across the worker processes.

        A worker death anywhere in the job no longer restarts the
        attempt: the failover loop salvages every completed map whose
        spills live entirely on survivors and re-executes only the rest
        (see the module docstring).  The job fails with
        :class:`ClusterError` only once it has spent one failover per
        initially-available spare worker.
        """
        meta = self.coordinator.stat(job.input_file, user=job.user)
        wire = encode_job(job)
        budget = _FailoverBudget(
            job.app_id, max(0, len(self.coordinator.alive_ids()) - 1)
        )
        tracker = _MapTracker(meta.blocks, self.coordinator.alive_ids())
        self._start_attempt(job, budget)
        self._map_phase(job, wire, meta, tracker, budget)
        output, reduced_on = self._reduce_phase(job, wire, tracker, budget)
        # The result is assembled: cleanup is best-effort from here
        # on.  A worker dying under the end-of-job broadcast must
        # never fail a *completed* job.
        self._cleanup_job(job.app_id)
        stats = self._finalize_stats(tracker, reduced_on)
        return JobResult(app_id=job.app_id, output=output, stats=stats)

    def _start_attempt(self, job: MapReduceJob, budget: "_FailoverBudget") -> None:
        """Collect heartbeat-detected deaths, then clear the job's slate.

        The ``discard_job`` broadcast drops any intermediates a previous
        attempt of this app id left behind; a worker dying under it fails
        over and the broadcast repeats on the survivors.
        """
        while True:
            for wid in self.coordinator.check_heartbeats():
                budget.spend(WorkerLost(wid, "missed heartbeats"))
                self._failover(wid)
            try:
                self._broadcast("discard_job", {"app_id": job.app_id})
                return
            except WorkerLost as lost:
                budget.spend(lost)
                self._failover(lost.worker_id)

    def _cleanup_job(self, app_id: str) -> None:
        """Drop a finished job's in-flight intermediates on every worker.

        Failures are swallowed and counted (``cluster.cleanup_failures``):
        whoever missed the broadcast is either dead (its store died with
        it) or will shed the entries when the next job's start-of-attempt
        ``discard_job`` reaches it."""
        try:
            self._broadcast("discard_job", {"app_id": app_id})
        except Exception:
            self.metrics.counter("cluster.cleanup_failures").inc()

    # -- phases ----------------------------------------------------------------------

    def _map_phase(self, job: MapReduceJob, wire: dict, meta,
                   tracker: "_MapTracker", budget: "_FailoverBudget") -> None:
        # Draw every assignment before any dispatch: the scheduler sees the
        # same zero-load state at each decision as in the sequential runtime,
        # so the assignment sequence (and tasks_per_server) is identical.
        assignments = []
        for desc in meta.blocks:
            a = self.coordinator.scheduler.assign(hash_key=desc.key)
            assignments.append((desc, a.server))
        self._run_tasks(job, wire, assignments, tracker, budget)

    def _run_tasks(self, job: MapReduceJob, wire: dict, assignments: list,
                   tracker: "_MapTracker", budget: "_FailoverBudget") -> None:
        """Dispatch map tasks until every block has a completed outcome.

        Each round dispatches the current assignment set concurrently and
        records every completion (results landing *after* a death in the
        same round are still salvage candidates).  A death ends the round;
        recovery fails the worker over, dooms the completed maps whose
        spills it held, and re-plans only the still-pending blocks on the
        post-failover LAF table.
        """
        while assignments:
            lost = self._dispatch_round(job, wire, assignments, tracker)
            if lost is None:
                return
            assignments = self._recover(job, lost, tracker, budget)

    def _dispatch_round(self, job: MapReduceJob, wire: dict, assignments: list,
                        tracker: "_MapTracker") -> WorkerLost | None:
        """One concurrent dispatch wave; returns the first death, if any."""
        lost: WorkerLost | None = None
        error: Exception | None = None
        pool_size = min(16, len(assignments))
        with ThreadPoolExecutor(max_workers=pool_size, thread_name_prefix="dispatch") as pool:
            futures = []
            for desc, wid in assignments:
                self.coordinator.scheduler.notify_start(wid)
                futures.append((desc, wid, pool.submit(self._dispatch_task, job, wire, desc, wid)))
            for desc, wid, fut in futures:
                try:
                    result = fut.result()
                except WorkerLost as exc:
                    if lost is None:
                        lost = exc
                    continue
                except Exception as exc:  # drain the round before failing
                    if error is None:
                        error = exc
                    continue
                finally:
                    self.coordinator.scheduler.notify_finish(wid)
                tracker.record(desc, wid, result)
                if result.get("replayed"):
                    if self.on_replay_complete is not None:
                        self.on_replay_complete(tracker.replays)
                    continue
                if job.cache_intermediates:
                    self.coordinator.record_marker(CompletionMarker(
                        app_id=job.app_id,
                        input_file=job.input_file,
                        block_index=desc.index,
                        entries=tuple(tuple(e) for e in result["manifest"] or ()),
                    ))
                if self.on_map_complete is not None:
                    self.on_map_complete(tracker.maps_run)
        if error is not None and lost is None:
            raise error
        return lost

    def _recover(self, job: MapReduceJob, lost: WorkerLost,
                 tracker: "_MapTracker", budget: "_FailoverBudget") -> list:
        """Fail over a death and re-plan: salvage, doom, re-assign.

        Returns the next round's assignments.  A further death while
        discarding doomed spills or re-planning cascades through the same
        budget.
        """
        budget.spend(lost)
        self._failover(lost.worker_id)
        while True:
            try:
                return self._plan_recovery(job, tracker)
            except WorkerLost as exc:
                budget.spend(exc)
                self._failover(exc.worker_id)

    def _plan_recovery(self, job: MapReduceJob, tracker: "_MapTracker") -> list:
        """Split completed maps into salvaged and doomed; re-plan the rest.

        A completed map survives iff every destination its spills landed
        on is still alive (its own mapper dying does not doom it -- the
        spills, not the mapper, are the map's output).  Doomed maps drop
        their surviving spills and rejoin the pending set, which is then
        re-assigned through the post-failover LAF table (the dead arc
        now belongs to its ring successor).
        """
        alive = set(self.coordinator.alive_ids())
        doomed = [idx for idx, entry in tracker.completed.items()
                  if not entry.dests <= alive]
        salvaged = len(tracker.completed) - len(doomed)
        self.metrics.counter("failover.tasks_salvaged").inc(salvaged)
        self.metrics.counter("failover.tasks_reexecuted").inc(len(doomed))
        self.metrics.counter("cluster.tasks_reexecuted").inc(len(doomed))
        for idx in doomed:
            entry = tracker.completed.pop(idx)
            tracker.reexecuted += 1
            self._discard_stale_spills(job, entry, alive)
        pending = [desc for desc in tracker.blocks
                   if desc.index not in tracker.completed]
        return [(desc, self.coordinator.scheduler.assign(hash_key=desc.key).server)
                for desc in pending]

    def _discard_stale_spills(self, job: MapReduceJob, entry: "_MapOutcome",
                              alive: set) -> None:
        """Drop a doomed map's spills from its surviving destinations.

        Best-effort: the re-executed map's deterministic spill ids
        overwrite every stale spill anyway (each surviving destination's
        arc can only have grown, so the re-run delivers it a superset of
        the original spill sequence), so an unreachable destination is
        counted (``failover.discard_failures``) and skipped rather than
        cascading a second failover out of mere housekeeping."""
        by_dest: dict[str, list[str]] = {}
        for dest, spill_id, _ in entry.manifest:
            by_dest.setdefault(dest, []).append(spill_id)
        for dest, spill_ids in by_dest.items():
            if dest not in alive:
                continue
            try:
                self._call_worker(dest, "discard_spills",
                                  {"app_id": job.app_id, "spill_ids": spill_ids})
            except (WorkerLost, ClusterError):
                self.metrics.counter("failover.discard_failures").inc()

    def _dispatch_task(self, job: MapReduceJob, wire: dict, desc, wid: str) -> dict:
        """Replay one block's intermediates if a marker allows it, else map."""
        if job.reuse_intermediates:
            marker = self.coordinator.marker_for(job.app_id, job.input_file, desc.index)
            if marker is not None:
                replayed = self._try_replay(job, marker)
                if replayed is not None:
                    return replayed
        return self._dispatch_map(wid, wire, desc)

    def _try_replay(self, job: MapReduceJob, marker: CompletionMarker) -> dict | None:
        """Replay one map task's spills from its completion marker.

        One ``replay_intermediates`` RPC per destination worker; each is
        check-then-apply on its side.  Any miss (a destination died with
        its shard, or a spill object fell out of the FIFO budget) undoes
        the destinations already applied and returns ``None`` -- the
        caller re-executes the map instead.  A destination dying *during*
        replay surfaces as ``WorkerLost`` and rides the surgical failover
        loop; the spills a partial replay already applied are safe to
        leave behind because the re-executed map's deterministic spill
        ids overwrite them (see ``_discard_stale_spills``).
        """
        groups = marker.by_dest()
        if any(dest not in self.coordinator.addresses for dest in groups):
            self.metrics.counter("cluster.replay_fallbacks").inc()
            return None
        applied: list[str] = []
        spills = nbytes = ocache_hits = ocache_misses = 0
        for dest, entries in groups.items():
            result = self._call_worker(
                dest,
                "replay_intermediates",
                {"app_id": job.app_id, "spills": entries,
                 "ttl": job.intermediate_ttl},
            )
            if not result["ok"]:
                self._discard_partial_replay(job, marker, applied)
                self.metrics.counter("cluster.replay_fallbacks").inc()
                return None
            applied.append(dest)
            spills += result["spills"]
            nbytes += result["bytes"]
            ocache_hits += result["ocache_hits"]
            ocache_misses += result["ocache_misses"]
        self.metrics.counter("cluster.maps_replayed").inc()
        return {"replayed": True, "spills": spills, "bytes_shuffled": nbytes,
                "ocache_hits": ocache_hits, "ocache_misses": ocache_misses,
                "manifest": [list(e) for e in marker.entries]}

    def _discard_partial_replay(self, job: MapReduceJob, marker: CompletionMarker,
                                applied: list[str]) -> None:
        """Un-deliver the spills of a partially replayed map task.

        Best-effort, like ``_discard_stale_spills``: the fallback re-map
        regenerates every spill id the partial replay delivered, so an
        unreachable destination is counted
        (``cluster.replay_discard_failures``) and skipped -- stale spills
        cannot survive into the re-mapped shuffle either way."""
        groups = marker.by_dest()
        for dest in applied:
            try:
                self._call_worker(dest, "discard_spills", {
                    "app_id": job.app_id,
                    "spill_ids": [sid for sid, _ in groups[dest]],
                })
            except (WorkerLost, ClusterError):
                self.metrics.counter("cluster.replay_discard_failures").inc()

    def _dispatch_map(self, wid: str, wire: dict, desc) -> dict:
        holders = [
            (a.worker_id, a.host, a.port)
            for a in self.coordinator.block_holders(wire["input_file"], desc.index)
        ]
        return self._call_worker(
            wid,
            "run_map",
            {"job": wire, "name": wire["input_file"], "index": desc.index,
             "holders": holders},
        )

    def _reduce_phase(self, job: MapReduceJob, wire: dict,
                      tracker: "_MapTracker",
                      budget: "_FailoverBudget") -> tuple[dict, list[str]]:
        """Reduce on every live worker; recover and retry on a death.

        ``run_reduce`` is a pure read of a worker's spill store, so the
        phase is idempotent: a death mid-reduce runs the same
        salvage/re-execute recovery as a map-phase death (re-running the
        doomed maps re-delivers their spills to the survivors) and the
        whole reduce wave is simply issued again -- no attempt restart.
        """
        while True:
            try:
                return self._reduce_once(wire)
            except WorkerLost as lost:
                self._run_tasks(
                    job, wire, self._recover(job, lost, tracker, budget),
                    tracker, budget,
                )

    def _reduce_once(self, wire: dict) -> tuple[dict, list[str]]:
        """One concurrent reduce wave; merge in worker order.

        Each worker reduces the spills that already live on it, so the
        phase is embarrassingly parallel.  Results are merged in
        ``alive_ids`` order (not completion order), keeping the output
        dict and the duplicate-key check deterministic; per-key outputs
        are disjoint by construction (DHT routing), which the merge
        still verifies.

        A reduce output over ``net.stream_page_bytes`` arrives as a paged
        stream; ``reassemble_reduce`` rebuilds the inline result shape
        from the pages.  A worker dying mid-stream surfaces as a
        transport failure (partial pages discarded by the RPC layer), so
        it rides the same ``WorkerLost`` -> recovery path as any other
        death.  Returns ``(output, reduced_on)`` where ``reduced_on``
        lists the workers that contributed pairs, in merge order.
        """
        alive = self.coordinator.alive_ids()
        lost: WorkerLost | None = None
        results: dict[str, dict] = {}

        def reduce_on(wid: str) -> dict:
            self.coordinator.scheduler.notify_start(wid)
            try:
                return reassemble_reduce(
                    self._call_worker(wid, "run_reduce", {"job": wire})
                )
            finally:
                self.coordinator.scheduler.notify_finish(wid)

        with ThreadPoolExecutor(max_workers=max(1, len(alive)),
                                thread_name_prefix="reduce") as pool:
            futures = [(wid, pool.submit(reduce_on, wid)) for wid in alive]
            for wid, fut in futures:
                try:
                    results[wid] = fut.result()
                except WorkerLost as exc:  # drain the rest, then recover
                    if lost is None:
                        lost = exc
        if lost is not None:
            raise lost
        output: dict[Any, Any] = {}
        reduced_on: list[str] = []
        for wid in alive:
            result = results[wid]
            if result["pairs"] == 0:
                continue
            for k, v in result["output"].items():
                if k in output:
                    raise ClusterError(f"intermediate key {k!r} reduced on two servers")
                output[k] = v
            reduced_on.append(wid)
        return output, reduced_on

    def _finalize_stats(self, tracker: "_MapTracker",
                        reduced_on: list[str]) -> JobStats:
        """Fold the tracker's *final* per-block outcomes into JobStats.

        On a failure-free run this is identical to counting at dispatch
        time (every block has exactly one outcome, recorded on the worker
        the zero-load draw assigned), so sequential-equality of
        ``tasks_per_server`` is preserved; after failovers it reports the
        work that actually produced the output, with ``task_retries``
        counting the completed maps that had to re-execute."""
        stats = JobStats(
            tasks_per_server={wid: 0 for wid in tracker.initial_alive}
        )
        for entry in tracker.completed.values():
            result = entry.result
            stats.spills += result["spills"]
            stats.bytes_shuffled += result["bytes_shuffled"]
            stats.tasks_per_server[entry.server] = (
                stats.tasks_per_server.get(entry.server, 0) + 1
            )
            if result.get("replayed"):
                stats.maps_skipped_by_reuse += 1
                stats.ocache_hits += result["ocache_hits"]
                stats.ocache_misses += result["ocache_misses"]
                continue
            stats.map_tasks += 1
            if result["source"] == "icache":
                stats.icache_hits += 1
            else:
                stats.icache_misses += 1
                if result["source"] == "local":
                    stats.local_block_reads += 1
                else:
                    stats.remote_block_reads += 1
        for wid in reduced_on:
            stats.reduce_tasks += 1
            stats.tasks_per_server[wid] = stats.tasks_per_server.get(wid, 0) + 1
        stats.task_retries = tracker.reexecuted
        return stats

    # -- RPC plumbing -----------------------------------------------------------------

    def _call_worker(self, wid: str, method: str, args: dict,
                     timeout: float | None = None) -> Any:
        addr = self.coordinator.address_of(wid).addr
        try:
            return self.coordinator.pool.call(addr, method, args, timeout=timeout)
        except RpcRemoteError as exc:
            if exc.etype == "SpillDeliveryLost" and exc.data:
                # The mapper is fine; its reduce-side *target* is gone.
                raise WorkerLost(exc.data["target"], "spill push failed") from exc
            raise ClusterError(f"worker {wid!r} failed {method}: {exc}") from exc
        except NetworkError as exc:
            raise WorkerLost(wid, str(exc)) from exc

    def _broadcast(self, method: str, args: dict) -> None:
        """Issue one control call to every live worker concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return
        if len(alive) == 1:
            self._call_worker(alive[0], method, args)
            return
        first: Exception | None = None
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="broadcast") as pool:
            for fut in [pool.submit(self._call_worker, wid, method, args)
                        for wid in alive]:
                try:
                    fut.result()
                except Exception as exc:  # drain every call before failing
                    if first is None:
                        first = exc
        if first is not None:
            raise first

    def _failover(self, worker_id: str) -> None:
        wid = worker_id
        for _ in range(len(self.coordinator.worker_ids)):
            self._reap(wid)
            try:
                self.coordinator.mark_dead(wid)
                # A cascaded death can interrupt ``mark_dead`` mid-restore,
                # leaving copies of *earlier* corpses' blocks unplaced; the
                # sweep re-checks every file and is a no-op when nothing is
                # missing.
                self.coordinator.ensure_replication()
                return
            except WorkerLost as exc:  # another worker died during failover
                wid = exc.worker_id
        raise ClusterError("failover could not stabilize the cluster")

    # -- stats & teardown --------------------------------------------------------------

    def worker_stats(self) -> dict[str, dict]:
        """Live per-worker statistics (tasks run, bytes moved, cache hits),
        gathered from all workers concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return {}
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="stats") as pool:
            futures = [(wid, pool.submit(self._call_worker, wid, "get_stats", {}))
                       for wid in alive]
            return {wid: fut.result() for wid, fut in futures}

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.coordinator.shutdown()
        finally:
            for wid in list(self._processes):
                self._reap(wid)

    def __enter__(self) -> "ClusterRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.shutdown()
        except Exception:
            pass


class _MapOutcome:
    """One completed map task's final record: who ran it, what it
    returned, and (the salvage criterion) which workers hold its spills."""

    __slots__ = ("desc", "server", "result", "manifest", "dests")

    def __init__(self, desc: Any, server: str, result: dict) -> None:
        self.desc = desc
        self.server = server
        self.result = result
        self.manifest = tuple(tuple(e) for e in result.get("manifest") or ())
        self.dests = frozenset(dest for dest, _, _ in self.manifest)


class _MapTracker:
    """Per-job map progress: final outcome per block plus monotone counts.

    ``completed`` maps block index -> :class:`_MapOutcome` and always
    holds the *current* surviving outcome (recovery pops doomed entries,
    re-execution overwrites them).  ``maps_run`` / ``replays`` count every
    execution ever finished -- including doomed ones -- so the chaos hooks
    see a monotone sequence; ``reexecuted`` counts completed maps that
    recovery had to throw away (this becomes ``JobStats.task_retries``).
    """

    def __init__(self, blocks: Sequence[Any], initial_alive: Sequence[str]) -> None:
        self.blocks = list(blocks)
        self.initial_alive = list(initial_alive)
        self.completed: dict[int, _MapOutcome] = {}
        self.maps_run = 0
        self.replays = 0
        self.reexecuted = 0

    def record(self, desc: Any, server: str, result: dict) -> None:
        self.completed[desc.index] = _MapOutcome(desc, server, result)
        if result.get("replayed"):
            self.replays += 1
        else:
            self.maps_run += 1


class _FailoverBudget:
    """How many worker deaths one job will absorb before giving up.

    One failover per spare worker at job start: a job beginning with N
    live workers survives N-1 deaths (each recovery needs at least one
    survivor to land on) and fails with :class:`ClusterError` on the
    Nth."""

    def __init__(self, app_id: str, limit: int) -> None:
        self.app_id = app_id
        self.limit = limit
        self.spent_count = 0

    def spend(self, lost: WorkerLost) -> None:
        self.spent_count += 1
        if self.spent_count > self.limit:
            raise ClusterError(
                f"job {self.app_id!r} lost {self.spent_count} workers"
                f" (budget {self.limit}); giving up"
            ) from lost
