"""Plane 3: the multi-process cluster runtime.

:class:`ClusterRuntime` exposes the same ``upload`` / ``run(job)`` API as
the sequential :class:`~repro.mapreduce.runtime.EclipseMRRuntime`, but
workers are real OS processes (no GIL sharing) serving RPCs over
localhost TCP.  Map tasks are dispatched by hash key to the worker whose
LAF range covers the block; the workers read their blocks shard-locally
(or from a replica holder over the wire), push spills worker-to-worker,
and reduce in place.

Fault tolerance is **surgical** (the paper's recovery claim, §V): a
worker killed mid-job stops heartbeating (or drops its TCP connections);
the coordinator declares it dead, merges its arc into its successor's,
re-replicates lost block copies in batches from the least-loaded
survivors, and broadcasts the new ring -- and the *attempt stays alive*.
Completed maps whose spills all landed on surviving destinations are
salvaged as-is; only the dead worker's unfinished maps, plus completed
maps that had delivered spills *to* it, are re-assigned through the
post-failover LAF table.  Re-execution is safe because spill delivery is
keyed by deterministic spill ids and ring removal only grows surviving
arcs: a re-executed map delivers to each surviving destination a
superset of the spill ids it delivered before, so every stale spill is
overwritten, never duplicated.  The salvage/re-run split is counted in
``failover.tasks_salvaged`` / ``cluster.tasks_reexecuted``.

Outputs are equal to the sequential runtime's: the scheduler sees the
same assignment sequence (all assignments are drawn before any dispatch,
when every worker's load is zero -- exactly the state the sequential
runtime assigns in), and reduce grouping is made deterministic by
consuming spills in spill-id order.

Job execution itself lives in :mod:`repro.jobs`: ``run(job)`` is a thin
wrapper over ``submit(job).result()`` on the cluster's one event-driven
:class:`~repro.jobs.scheduler.JobScheduler`, which multiplexes any
number of concurrently submitted jobs over the same workers (see the
``jobs`` property / :meth:`ClusterRuntime.submit`).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence

import repro as _repro_pkg
from repro.common.config import ClusterConfig
from repro.common.errors import (
    ClusterBusyError,
    ClusterError,
    NetworkError,
    RpcRemoteError,
    WorkerLost,
)
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.common.serialization import config_to_dict
from repro.cluster.coordinator import Coordinator
from repro.cluster.worker import worker_main
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.sim.metrics import MetricsRegistry

__all__ = ["ClusterRuntime"]


class ClusterRuntime:
    """An EclipseMR cluster of real worker processes on localhost."""

    def __init__(
        self,
        worker_ids: Sequence[str] | int,
        config: ClusterConfig | None = None,
        scheduler: str = "laf",
        space: HashSpace = DEFAULT_SPACE,
    ) -> None:
        if isinstance(worker_ids, int):
            worker_ids = [f"worker-{i}" for i in range(worker_ids)]
        self.config = config or ClusterConfig()
        self.space = space
        self.metrics = MetricsRegistry()
        self.coordinator = Coordinator(
            worker_ids, self.config, scheduler, space, metrics=self.metrics
        )
        #: The coordinator-side fault injector of the chaos plane.  Script
        #: faults by passing ``ClusterConfig(chaos=ChaosConfig(seed=...,
        #: rules=(...)))``; inspect the injected schedule afterwards via
        #: ``runtime.chaos.schedule()`` / ``runtime.chaos.fault_counts()``.
        self.chaos = self.coordinator.fault
        self._processes: dict[str, multiprocessing.process.BaseProcess] = {}
        self._closed = False
        self._job_scheduler = None
        self._sched_lock = threading.Lock()
        self._run_gate = threading.Lock()
        #: Test/chaos hook: called with the number of completed map tasks
        #: after each one finishes (killing a worker here exercises failover).
        self.on_map_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with the number of maps skipped by
        #: oCache replay so far (killing a worker here exercises the
        #: mid-replay failover / fallback-to-re-map path).
        self.on_replay_complete: Optional[Callable[[int], None]] = None
        #: Test/chaos hook: called with ``(worker_addr, pages_so_far)`` as
        #: each streamed-response page reaches the coordinator (killing the
        #: sender here exercises mid-stream failover).
        self.on_stream_page: Optional[Callable[[tuple[str, int], int], None]] = None
        self.coordinator.set_stream_page_hook(self._stream_page)
        #: The live observability endpoint (``None`` unless
        #: ``config.observe.enabled``): Prometheus text at ``/metrics``,
        #: JSON at ``/metrics.json``, HTML dashboard at ``/``.
        self.observer = None
        try:
            self._start_workers()
            self.coordinator.wait_for_workers(self.config.net.start_timeout)
            self._with_failover(self.coordinator.broadcast_ring)
            if self.config.observe.enabled:
                from repro.observe import ObserveServer

                self.observer = ObserveServer(
                    self.metrics, self._observe_poll, self.config.observe
                ).start()
        except BaseException:
            self.shutdown()
            raise

    def _stream_page(self, addr: tuple[str, int], pages: int) -> None:
        hook = self.on_stream_page
        if hook is not None:
            hook(addr, pages)

    # -- process management ---------------------------------------------------------

    def _start_workers(self) -> None:
        for wid in self.coordinator.worker_ids:
            self._spawn(wid)

    def _spawn(self, wid: str) -> None:
        """Start one worker process (initial fleet and elastic joiners)."""
        ctx = multiprocessing.get_context(self.config.net.mp_start_method)
        manifest = config_to_dict(self.config)
        # Spawned children re-import ``repro``; make sure they can even when
        # the parent runs from a source tree that is not installed.  The
        # parent's ``sys.path`` travels to spawn/forkserver children via
        # multiprocessing's preparation data, and the explicit worker arg
        # re-asserts it at worker startup -- no mutation of the parent's
        # environment (the old PYTHONPATH save/restore raced concurrent
        # cluster startups and anything else reading the environment).
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
        if src_root not in sys.path:
            sys.path.insert(0, src_root)
        proc = ctx.Process(
            target=worker_main,
            args=(
                wid,
                self.coordinator.server.host,
                self.coordinator.server.port,
                manifest,
                self.space.size,
                (src_root,),
            ),
            name=f"eclipsemr-{wid}",
            daemon=True,
        )
        proc.start()
        self._processes[wid] = proc

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker process *without* telling the coordinator.

        Detection must come the honest way: missed heartbeats or dead TCP
        connections.  This is the chaos hook the failover tests use.
        """
        proc = self._processes.get(worker_id)
        if proc is None:
            raise ClusterError(f"no process for worker {worker_id!r}")
        proc.kill()
        proc.join(timeout=10.0)
        self.metrics.counter("cluster.workers_killed").inc()

    def _reap(self, worker_id: str) -> None:
        proc = self._processes.pop(worker_id, None)
        if proc is None:
            return
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    # -- membership views -----------------------------------------------------------

    @property
    def worker_ids(self) -> list[str]:
        return self.coordinator.alive_ids()

    def check_liveness(self) -> list[str]:
        """Heartbeat-dead workers (detected, not yet failed over)."""
        return self.coordinator.check_heartbeats()

    # -- elastic membership -----------------------------------------------------------

    def join_worker(self, worker_id: str | None = None, wait: bool = True):
        """Admit a new worker process into the running cluster.

        The request queues on the job scheduler and is applied at its
        quiesce barrier (no tasks in flight, no live jobs): in-flight
        jobs finish under the old membership, then the joiner spawns,
        registers, takes over its hash arc, and receives its block
        handoff.  With ``wait=False`` the join :class:`Future` is
        returned instead of blocked on -- required when calling from a
        chaos hook that runs on the scheduler thread itself.
        """
        if worker_id is None:
            n = 0
            while f"worker-{n}" in self.coordinator.worker_ids:
                n += 1
            worker_id = f"worker-{n}"
        future = self.jobs.request_join(str(worker_id))
        if not wait:
            return future
        timeout = (self.config.membership.barrier_timeout
                   + self.config.membership.join_register_timeout)
        return future.result(timeout=timeout)

    def drain_worker(self, worker_id: str, wait: bool = True):
        """Gracefully retire a live worker from the running cluster.

        Queued like :meth:`join_worker` and applied at the same quiesce
        barrier; the drainee participates in in-flight jobs to completion,
        then hands its state to its ring successor and leaves cleanly --
        no failover budget is spent.  ``wait=False`` returns the Future.
        """
        future = self.jobs.request_drain(str(worker_id))
        if not wait:
            return future
        timeout = (self.config.membership.barrier_timeout
                   + self.config.membership.drain_timeout)
        return future.result(timeout=timeout)

    def _do_join(self, wid: str) -> str:
        """Perform a join at the scheduler's quiesce barrier (its thread)."""
        coord = self.coordinator
        coord.expect_worker(wid)
        try:
            self._spawn(wid)
            coord.wait_for_worker(
                wid, self.config.membership.join_register_timeout
            )
            while True:
                try:
                    coord.admit_worker(wid)
                    break
                except WorkerLost as lost:
                    if lost.worker_id == wid:
                        raise
                    # A *different* worker died mid-join: fail it over and
                    # finish admitting the (still healthy) joiner.
                    self._failover(lost.worker_id)
        except WorkerLost as lost:
            if lost.worker_id != wid:
                raise
            coord.abort_join(wid)
            self._reap(wid)
            raise ClusterError(f"join of {wid!r} aborted: {lost}") from lost
        except BaseException:
            coord.abort_join(wid)
            self._reap(wid)
            raise
        self.metrics.counter("cluster.workers_joined").inc()
        return wid

    def _do_drain(self, wid: str) -> str:
        """Perform a drain at the scheduler's quiesce barrier (its thread)."""
        while True:
            try:
                self.coordinator.drain_worker(wid)
                break
            except WorkerLost as lost:
                if lost.worker_id == wid:
                    # The drainee died mid-handoff: this is a failover now.
                    self._failover(wid)
                    raise ClusterError(
                        f"drain of {wid!r} became a failover: {lost}"
                    ) from lost
                self._failover(lost.worker_id)
        self._reap(wid)
        self.metrics.counter("cluster.workers_drained").inc()
        return wid

    # -- data -----------------------------------------------------------------------

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        """Put an input file into the workers' DHT FS shards.

        A worker dying (or partitioned away) mid-upload fails over and
        the upload retries against the survivors: placement is recomputed
        on the post-failover ring and block puts are idempotent
        overwrites, so a partial first attempt leaves at worst stale
        extra copies on survivor shards.
        """
        self._with_failover(lambda: self.coordinator.upload(name, data, **kwargs))

    def _with_failover(self, op: Callable[[], Any]) -> Any:
        """Run a pre-job control-plane operation, failing over any death.

        Unlike the in-job loop there is no attempt to keep alive: a
        :class:`WorkerLost` simply removes the victim and the operation
        retries on the survivors.  Bounded because every retry follows a
        death and failing the last worker raises :class:`ClusterError`.
        """
        while True:
            try:
                return op()
            except WorkerLost as lost:
                self._failover(lost.worker_id)

    # -- job execution ---------------------------------------------------------------

    @property
    def jobs(self):
        """The cluster's one :class:`~repro.jobs.scheduler.JobScheduler`.

        Created lazily on first use with the configured inter-job policy
        (``config.jobs.policy``).  Exactly one scheduler may own a
        runtime; constructing a second raises :class:`ClusterBusyError`.
        """
        sched = self._job_scheduler
        if sched is None or not sched._thread.is_alive():
            from repro.jobs.scheduler import JobScheduler

            JobScheduler(self)  # registers itself via _attach_job_scheduler
        return self._job_scheduler

    def _attach_job_scheduler(self, sched) -> None:
        with self._sched_lock:
            current = self._job_scheduler
            if current is not None and current._thread.is_alive():
                raise ClusterBusyError(
                    "this cluster already has a running job scheduler;"
                    " submit through runtime.jobs instead of creating"
                    " another JobScheduler"
                )
            self._job_scheduler = sched

    def submit(self, job: MapReduceJob, weight: float = 1.0):
        """Queue ``job`` on the cluster's scheduler; returns its handle."""
        return self.jobs.submit(job, weight=weight)

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute one MapReduce job and block for its result.

        A thin wrapper over ``submit(job).result()``: the job rides the
        multi-job scheduler exactly like any other submission, and a lone
        job sees the very assignment sequence the old blocking loop drew
        (bit-equal output and ``tasks_per_server``).  Only one blocking
        ``run`` may be in flight at a time -- a concurrent second call
        raises :class:`ClusterBusyError` (use :meth:`submit` to overlap
        jobs on purpose).

        Fault tolerance is unchanged: a worker death anywhere in the job
        salvages every completed map whose spills live entirely on
        survivors and re-executes only the rest; the job fails with
        :class:`ClusterError` once it has spent one failover per
        initially-available spare worker.
        """
        if not self._run_gate.acquire(blocking=False):
            raise ClusterBusyError(
                "another run() is already blocking on this cluster;"
                " use submit() for concurrent jobs"
            )
        try:
            return self.jobs.submit(job).result()
        finally:
            self._run_gate.release()

    # -- RPC plumbing -----------------------------------------------------------------

    def _call_worker(self, wid: str, method: str, args: dict,
                     timeout: float | None = None) -> Any:
        addr = self.coordinator.address_of(wid).addr
        try:
            return self.coordinator.pool.call(addr, method, args, timeout=timeout)
        except RpcRemoteError as exc:
            if exc.etype == "SpillDeliveryLost" and exc.data:
                # The mapper is fine; its reduce-side *target* is gone.
                raise WorkerLost(exc.data["target"], "spill push failed") from exc
            raise ClusterError(f"worker {wid!r} failed {method}: {exc}") from exc
        except NetworkError as exc:
            raise WorkerLost(wid, str(exc)) from exc

    def _broadcast(self, method: str, args: dict) -> None:
        """Issue one control call to every live worker concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return
        if len(alive) == 1:
            self._call_worker(alive[0], method, args)
            return
        first: Exception | None = None
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="broadcast") as pool:
            for fut in [pool.submit(self._call_worker, wid, method, args)
                        for wid in alive]:
                try:
                    fut.result()
                except Exception as exc:  # drain every call before failing
                    if first is None:
                        first = exc
        if first is not None:
            raise first

    def _failover(self, worker_id: str) -> None:
        wid = worker_id
        for _ in range(len(self.coordinator.worker_ids)):
            self._reap(wid)
            try:
                self.coordinator.mark_dead(wid)
                # A cascaded death can interrupt ``mark_dead`` mid-restore,
                # leaving copies of *earlier* corpses' blocks unplaced; the
                # sweep re-checks every file and is a no-op when nothing is
                # missing.
                self.coordinator.ensure_replication()
                return
            except WorkerLost as exc:  # another worker died during failover
                wid = exc.worker_id
        raise ClusterError("failover could not stabilize the cluster")

    # -- stats & teardown --------------------------------------------------------------

    def worker_stats(self) -> dict[str, dict]:
        """Live per-worker statistics (tasks run, bytes moved, cache hits),
        gathered from all workers concurrently."""
        alive = self.coordinator.alive_ids()
        if not alive:
            return {}
        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="stats") as pool:
            futures = [(wid, pool.submit(self._call_worker, wid, "get_stats", {}))
                       for wid in alive]
            return {wid: fut.result() for wid, fut in futures}

    def _observe_poll(self) -> dict[str, dict]:
        """One sampling round for the observe endpoint: full per-worker
        registry exports plus heartbeat ages, best-effort.

        Rides the same ``get_stats`` RPC as :meth:`worker_stats` (with
        ``full=True``) over the shared multiplexed pool, so a scrape
        coexists with a running job.  Unlike :meth:`worker_stats` it
        must never raise: a worker that dies or partitions mid-sample is
        simply absent from this round (the heartbeat/failover machinery
        owns declaring it dead, not the scraper).
        """
        alive = self.coordinator.alive_ids()
        ages = self.coordinator.heartbeat_ages()
        rtts = self.coordinator.heartbeat_rtts()
        health = self.coordinator.health.snapshot()
        if not alive:
            return {}

        def poll_one(wid: str) -> Optional[dict]:
            try:
                stats = self._call_worker(wid, "get_stats", {"full": True})
            except Exception:
                return None
            if wid in ages:
                stats["heartbeat_age_s"] = ages[wid]
            if wid in rtts:
                stats["heartbeat_rtt_s"] = rtts[wid]
            if wid in health:
                stats["health_score"] = health[wid]["score"]
                stats["quarantined"] = health[wid]["quarantined"]
                # Bools are skipped by the /metrics exposition; ship the
                # quarantine state as a 0/1 gauge alongside.
                stats["health_quarantined"] = int(health[wid]["quarantined"])
            return stats

        with ThreadPoolExecutor(max_workers=len(alive),
                                thread_name_prefix="observe") as pool:
            futures = [(wid, pool.submit(poll_one, wid)) for wid in alive]
            polled = {wid: fut.result() for wid, fut in futures}
        return {wid: stats for wid, stats in polled.items() if stats is not None}

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        observer = getattr(self, "observer", None)
        if observer is not None:
            try:
                observer.close()
            except Exception:
                pass
        sched = getattr(self, "_job_scheduler", None)
        if sched is not None:
            try:
                sched.shutdown()
            except Exception:
                pass
        try:
            self.coordinator.shutdown()
        finally:
            for wid in list(self._processes):
                self._reap(wid)

    def __enter__(self) -> "ClusterRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.shutdown()
        except Exception:
            pass
