"""Fig. 7 -- load balancing vs data locality under a skewed grep workload.

The paper's §III-C setup: 24 grep jobs (6410 map tasks, 90 GB) whose
block accesses follow two merged normal distributions over the hash key
space.  Swept over per-server cache sizes {0, 0.5, 1, 1.5} GB for three
policies: LAF with alpha=0.001, LAF with alpha=1, and delay scheduling.

Expected shape (paper):
* 7(a) execution time: delay is up to 2.86x slower than LAF; time falls
  roughly linearly as the cache grows.
* 7(b) hit ratio: delay has the *highest* hit ratio (static ranges, waits
  for cached servers) yet loses on time; alpha=0.001 out-hits alpha=1.
* stddev of tasks per slot: ~4 for LAF vs ~13 for delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SchedulerConfig
from repro.common.units import GB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout, skewed_task_keys
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["run", "format_table", "Fig7Point"]


@dataclass
class Fig7Point:
    policy: str
    cache_bytes: int
    total_time: float = 0.0
    hit_ratio: float = 0.0
    stddev_tasks_per_slot: float = 0.0


def _policy_framework(policy: str):
    if policy == "LAF a=0.001":
        return eclipse_framework("laf", SchedulerConfig(alpha=0.001))
    if policy == "LAF a=1":
        return eclipse_framework("laf", SchedulerConfig(alpha=1.0))
    if policy == "Delay":
        return eclipse_framework("delay")
    raise ValueError(policy)


def _run_point(policy: str, cache_bytes: int, num_jobs: int, tasks_per_job: int,
               blocks: int, seed: int) -> Fig7Point:
    config = paper_cluster(cache_per_server=max(cache_bytes, 1), icache_fraction=1.0)
    if cache_bytes == 0:
        from repro.common.config import CacheConfig
        from dataclasses import replace

        config = replace(config, cache=CacheConfig(capacity_per_server=0))
    engine = PerfEngine(config, _policy_framework(policy))
    layout = dht_layout(engine.space, engine.ring, "grepdata", blocks, config.dfs.block_size)
    specs = []
    for j in range(num_jobs):
        tasks = skewed_task_keys(layout, tasks_per_job, seed=seed + j)
        specs.append(SimJobSpec(app=APP_PROFILES["grep"], tasks=tasks, label=f"grep{j}"))
    timings = engine.run_jobs(specs)
    end = max(t.end for t in timings)
    start = min(t.start for t in timings)
    stats = engine.dcache.stats()
    # aggregate task balance over the whole batch
    per_server = {s: 0 for s in range(config.num_nodes)}
    for t in timings:
        for s, c in t.tasks_per_server.items():
            per_server[s] += c
    import numpy as np

    per_slot = [c / config.map_slots_per_node for c in per_server.values()]
    return Fig7Point(
        policy=policy,
        cache_bytes=cache_bytes,
        total_time=end - start,
        hit_ratio=stats.hit_ratio,
        stddev_tasks_per_slot=float(np.std(per_slot)),
    )


def run(
    cache_sizes=(0, int(0.5 * GB), 1 * GB, int(1.5 * GB)),
    num_jobs: int = 8,
    tasks_per_job: int = 200,
    blocks: int = 128,
    seed: int = 11,
) -> tuple[ExperimentResult, ExperimentResult, list[Fig7Point]]:
    """Returns (execution-time result, hit-ratio result, raw points)."""
    policies = ("LAF a=0.001", "LAF a=1", "Delay")
    points: list[Fig7Point] = []
    for policy in policies:
        for cache in cache_sizes:
            points.append(_run_point(policy, cache, num_jobs, tasks_per_job, blocks, seed))

    times = ExperimentResult(
        title="Fig. 7(a): skewed grep batch execution time vs cache size",
        x_label="cache/server",
        x_values=[f"{c / GB:.1f}GB" for c in cache_sizes],
    )
    hits = ExperimentResult(
        title="Fig. 7(b): cache hit ratio vs cache size",
        x_label="cache/server",
        x_values=[f"{c / GB:.1f}GB" for c in cache_sizes],
    )
    for policy in policies:
        ps = [p for p in points if p.policy == policy]
        times.add(policy, [p.total_time for p in ps])
        hits.add(policy, [100 * p.hit_ratio for p in ps])
    laf = [p for p in points if p.policy == "LAF a=0.001"]
    delay = [p for p in points if p.policy == "Delay"]
    times.note(
        f"stddev tasks/slot: LAF {laf[-1].stddev_tasks_per_slot:.2f} "
        f"vs Delay {delay[-1].stddev_tasks_per_slot:.2f} (paper: 4.07 vs 13.07)"
    )
    return times, hits, points


def format_table(results) -> str:
    from repro.experiments.common import format_rows

    times, hits, _ = results
    return format_rows(times) + "\n\n" + format_rows(hits, unit="%")
