"""Fig. 6 -- LAF vs delay scheduling, per application.

* 6(a) non-iterative jobs (inverted index, sort, word count, grep), cold
  caches: LAF consistently beats delay scheduling because it never holds
  tasks for 5 s waiting on a busy preferred server and spreads load.
* 6(b) iterative jobs (k-means x5, page rank x5), caches enabled, with
  and without oCache for iteration outputs: oCache barely matters because
  the persisted outputs are in the OS page cache anyway; LAF's edge on
  k-means is larger because its input (and so its task count) is larger.
"""

from __future__ import annotations

from repro.common.units import GB
from repro.experiments.common import ExperimentResult, job, paper_cluster
from repro.perfmodel.engine import PerfEngine
from repro.perfmodel.framework import eclipse_framework

__all__ = ["run", "run_iterative", "format_table"]

NON_ITERATIVE_APPS = ("invertedindex", "sort", "wordcount", "grep")


def _cold_run(scheduler: str, app: str, blocks: int) -> float:
    engine = PerfEngine(paper_cluster(), eclipse_framework(scheduler))
    engine.drop_caches()  # "we empty the OS page cache as well as the caches"
    spec = job(engine, app, blocks=blocks, label=app)
    return engine.run_job(spec).makespan


def run(blocks: int = 256) -> ExperimentResult:
    """Fig. 6(a): non-iterative job execution time, LAF vs delay."""
    result = ExperimentResult(
        title="Fig. 6(a): non-iterative job execution time (cold caches)",
        x_label="application",
        x_values=list(NON_ITERATIVE_APPS),
    )
    result.add("LAF", [_cold_run("laf", app, blocks) for app in NON_ITERATIVE_APPS])
    result.add("Delay", [_cold_run("delay", app, blocks) for app in NON_ITERATIVE_APPS])
    result.note("paper: LAF consistently faster (no 5 s waits, better balance)")
    return result


def _iterative_run(scheduler: str, app: str, blocks: int, iterations: int, ocache: bool) -> float:
    # 1 GB of cache per server, "large enough to hold all iteration
    # outputs"; disabling oCache still leaves iteration outputs in the OS
    # page cache, which is the paper's punchline.
    config = paper_cluster(cache_per_server=1 * GB, icache_fraction=1.0 if not ocache else 0.5)
    framework = eclipse_framework(scheduler)
    if not ocache:
        # Without oCache the outputs are still written to the DHT FS; only
        # the explicit memory copy is skipped.  Model: identical persistence,
        # no extra memory-resident copy (page cache covers reads either way).
        pass
    engine = PerfEngine(config, framework)
    engine.cluster.drop_all_caches()
    spec = job(engine, app, blocks=blocks, iterations=iterations, label=app)
    return engine.run_job(spec).makespan


def run_iterative(kmeans_blocks: int = 256, pagerank_blocks: int = 16, iterations: int = 5) -> ExperimentResult:
    """Fig. 6(b): iterative jobs, LAF vs delay, with/without oCache.

    The paper's 250 GB k-means vs 15 GB page rank size ratio is preserved
    (k-means needs many task waves; page rank fits in one wave, so the
    schedulers tie on it).
    """
    apps = ["kmeans", "pagerank"]
    blocks = {"kmeans": kmeans_blocks, "pagerank": pagerank_blocks}
    result = ExperimentResult(
        title="Fig. 6(b): iterative job execution time (5 iterations)",
        x_label="application",
        x_values=apps,
    )
    for label, scheduler, ocache in (
        ("LAF", "laf", False),
        ("LAF (with oCache)", "laf", True),
        ("Delay", "delay", False),
        ("Delay (with oCache)", "delay", True),
    ):
        result.add(
            label,
            [_iterative_run(scheduler, app, blocks[app], iterations, ocache) for app in apps],
        )
    result.note("paper: oCache ~no effect (outputs already in OS page cache)")
    result.note("paper: LAF's gap larger on kmeans (more tasks than slots) than pagerank")
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result)
