"""Fig. 5 -- IO throughput of the DHT file system vs HDFS, 6..38 nodes.

DFSIO-style benchmark: map tasks that only read their block.

* Fig. 5(a): throughput = bytes / summed map-task execution time.  The
  metric excludes NameNode lookups and scheduling, so the two file
  systems tie (both stream the same disks).
* Fig. 5(b): throughput = bytes / whole-job execution time.  Hadoop's
  NameNode lookups, container init and job scheduling overheads now
  count, and the DHT file system pulls far ahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import MB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework
from repro.perfmodel.placement import dht_layout, hdfs_layout
from repro.perfmodel.profiles import AppProfile

__all__ = ["run", "format_table"]

#: A read-only "DFSIO" profile: no compute, no shuffle.
DFSIO = AppProfile(
    name="dfsio",
    map_rate=100 * 1024 * MB,   # effectively free CPU
    reduce_rate=100 * 1024 * MB,
    shuffle_ratio=0.0,
    output_ratio=0.0,
)


@dataclass
class Fig5Result:
    nodes: list[int]
    per_task_throughput: dict[str, list[float]]
    per_job_throughput: dict[str, list[float]]


def _run_one(framework, num_nodes: int, blocks_per_node: int) -> tuple[float, float]:
    config = paper_cluster(num_nodes=num_nodes)
    engine = PerfEngine(config, framework)
    n_blocks = blocks_per_node * num_nodes
    if framework.name.startswith("eclipsemr"):
        blocks = dht_layout(engine.space, engine.ring, "dfsio", n_blocks, config.dfs.block_size)
    else:
        blocks = hdfs_layout(
            engine.space, range(num_nodes), "dfsio", n_blocks, config.dfs.block_size,
            seed=5, rack_of=config.rack_of,
        )
    spec = SimJobSpec(app=DFSIO, tasks=blocks, label="dfsio")
    t0 = engine.sim.now
    timing = engine.run_job(spec)
    total_bytes = spec.input_bytes
    # Per-task metric: read time only = bytes / aggregate disk streaming
    # time actually spent (sum over disks), normalized per active task.
    read_time = sum(node.disk.busy_time for node in engine.cluster.nodes)
    per_task = total_bytes / read_time if read_time else 0.0
    per_job = total_bytes / (timing.end - t0)
    return per_task, per_job


def run(node_counts=(6, 14, 22, 30, 38), blocks_per_node: int = 6) -> ExperimentResult:
    result = ExperimentResult(
        title="Fig. 5: IO throughput (DFSIO), DHT file system vs HDFS",
        x_label="# of nodes",
        x_values=list(node_counts),
    )
    series = {
        "DHT/task (MB/s)": [],
        "HDFS/task (MB/s)": [],
        "DHT/job (MB/s)": [],
        "HDFS/job (MB/s)": [],
    }
    for n in node_counts:
        dht_task, dht_job = _run_one(eclipse_framework("laf"), n, blocks_per_node)
        hdfs_task, hdfs_job = _run_one(hadoop_framework(), n, blocks_per_node)
        series["DHT/task (MB/s)"].append(dht_task / MB)
        series["HDFS/task (MB/s)"].append(hdfs_task / MB)
        series["DHT/job (MB/s)"].append(dht_job / MB)
        series["HDFS/job (MB/s)"].append(hdfs_job / MB)
    for name, vals in series.items():
        result.add(name, vals)
    result.note("5(a): per-map-task throughput ~ties (same disks)")
    result.note("5(b): per-job throughput: DHT >> HDFS (NameNode + container overheads)")
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit=" MB/s")
