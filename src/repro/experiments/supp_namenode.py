"""Supplementary: NameNode scalability under concurrent DFSIO jobs.

The paper runs this experiment but omits the figure: "we submitted
multiple concurrent DFSIO jobs ... and we observed that the IO throughput
of HDFS degrades at a much faster rate than the DHT file system" (§III-A).
Every HDFS task serializes on the NameNode, so metadata service time grows
linearly with concurrent tasks; the DHT file system answers lookups from
per-node finger tables.
"""

from __future__ import annotations

from repro.common.units import MB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.experiments.fig5_io import DFSIO
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework
from repro.perfmodel.placement import dht_layout, hdfs_layout

__all__ = ["run", "format_table"]


def _run_concurrent(framework, num_jobs: int, blocks_per_job: int, num_nodes: int):
    config = paper_cluster(num_nodes=num_nodes)
    engine = PerfEngine(config, framework)
    specs = []
    for j in range(num_jobs):
        name = f"dfsio-{j}"
        if framework.name.startswith("eclipsemr"):
            blocks = dht_layout(engine.space, engine.ring, name, blocks_per_job, config.dfs.block_size)
        else:
            blocks = hdfs_layout(
                engine.space, range(num_nodes), name, blocks_per_job,
                config.dfs.block_size, seed=31 + j, rack_of=config.rack_of,
            )
        specs.append(SimJobSpec(app=DFSIO, tasks=blocks, label=name))
    timings = engine.run_jobs(specs)
    total_bytes = sum(s.input_bytes for s in specs)
    makespan = max(t.end for t in timings) - min(t.start for t in timings)
    mean_wait = engine._namenode.mean_wait if engine._namenode is not None else 0.0
    return total_bytes / makespan, mean_wait


def run(job_counts=(1, 2, 4, 8), blocks_per_job: int = 120, num_nodes: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        title="Supplementary: concurrent DFSIO jobs (NameNode scalability)",
        x_label="# concurrent jobs",
        x_values=list(job_counts),
    )
    dht, hdfs, waits = [], [], []
    for k in job_counts:
        d, _ = _run_concurrent(eclipse_framework("laf"), k, blocks_per_job, num_nodes)
        h, w = _run_concurrent(hadoop_framework(), k, blocks_per_job, num_nodes)
        dht.append(d / MB)
        hdfs.append(h / MB)
        waits.append(w * 1000)
    result.add("DHT agg (MB/s)", dht)
    result.add("HDFS agg (MB/s)", hdfs)
    result.add("NameNode mean wait (ms)", waits)
    result.note(
        "paper §III-A (figure omitted): HDFS throughput degrades much faster "
        "than the DHT file system under concurrent jobs"
    )
    result.note(
        "model: the serialized NameNode caps HDFS well below the DHT FS's "
        "disk-bound aggregate; queueing waits reach seconds per RPC"
    )
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit="")
