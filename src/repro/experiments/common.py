"""Shared experiment plumbing: configurations, layouts, and table printing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB, fmt_seconds
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import FrameworkModel
from repro.perfmodel.placement import BlockSpec, dht_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = [
    "paper_cluster",
    "build_engine",
    "input_layout",
    "ExperimentResult",
    "format_rows",
]

#: Scale factor: the paper's 250 GB inputs shrink to this many blocks so a
#: figure regenerates in seconds.  Queueing shape is preserved because the
#: task count still far exceeds the slot count.
DEFAULT_BLOCKS = 256


def paper_cluster(
    num_nodes: int = 40,
    cache_per_server: int = 1 * GB,
    icache_fraction: float = 1.0,
    window_tasks: int = 64,
    alpha: float = 0.001,
) -> ClusterConfig:
    """The §III testbed: 40 nodes, 8+8 slots, 1 GbE in two racks."""
    return ClusterConfig(
        num_nodes=num_nodes,
        rack_size=max(1, num_nodes // 2),
        map_slots_per_node=8,
        reduce_slots_per_node=8,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=cache_per_server, icache_fraction=icache_fraction),
        scheduler=SchedulerConfig(alpha=alpha, window_tasks=window_tasks),
    )


def build_engine(framework: FrameworkModel, config: ClusterConfig | None = None) -> PerfEngine:
    return PerfEngine(config or paper_cluster(), framework)


def input_layout(engine: PerfEngine, name: str = "input", blocks: int = DEFAULT_BLOCKS) -> list[BlockSpec]:
    return dht_layout(engine.space, engine.ring, name, blocks, engine.config.dfs.block_size)


def job(engine: PerfEngine, app: str, blocks: int = DEFAULT_BLOCKS, iterations: int = 1,
        name: str = "input", label: str | None = None) -> SimJobSpec:
    return SimJobSpec(
        app=APP_PROFILES[app],
        tasks=input_layout(engine, name, blocks),
        iterations=iterations,
        label=label or app,
    )


@dataclass
class ExperimentResult:
    """A figure's regenerated data: named series over shared x labels."""

    title: str
    x_label: str
    x_values: list[Any]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, values: Sequence[float]) -> None:
        self.series[name] = list(values)

    def note(self, text: str) -> None:
        self.notes.append(text)


def format_rows(result: ExperimentResult, unit: str = "s") -> str:
    """Render a result the way the paper's figures tabulate."""
    lines = [result.title, "=" * len(result.title)]
    header = [result.x_label] + list(result.series.keys())
    lines.append(" | ".join(f"{h:>18}" for h in header))
    lines.append("-" * (21 * len(header)))
    for i, x in enumerate(result.x_values):
        row = [str(x)]
        for name in result.series:
            v = result.series[name][i]
            row.append(fmt_seconds(v) if unit == "s" else f"{v:.4g}{unit}")
        lines.append(" | ".join(f"{c:>18}" for c in row))
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
