"""Fig. 10 -- per-iteration execution time, EclipseMR vs Spark.

Ten iterations of k-means, logistic regression and page rank.

Expected shape (paper):
* Spark's first iteration is much slower than the rest (RDD construction);
* EclipseMR runs the steady-state iterations of k-means and logistic
  regression ~3x faster than Spark (no delay waits, C++ compute);
* Spark's steady-state page rank iterations are faster (EclipseMR writes
  the large iteration output to the DHT file system each round, but stays
  within ~30% -- the price of fault tolerance);
* Spark's *last* page rank iteration is slow again (it finally writes the
  output to storage).
"""

from __future__ import annotations

from repro.common.units import GB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, spark_framework
from repro.perfmodel.placement import dht_layout, hdfs_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["run", "format_table", "FIG10_APPS"]

FIG10_APPS = ("kmeans", "logreg", "pagerank")


def _iteration_times(framework, app: str, blocks: int, iterations: int) -> list[float]:
    config = paper_cluster(cache_per_server=1 * GB, icache_fraction=1.0)
    engine = PerfEngine(config, framework)
    if framework.name.startswith("eclipsemr"):
        layout = dht_layout(engine.space, engine.ring, app, blocks, config.dfs.block_size)
    else:
        layout = hdfs_layout(
            engine.space, range(config.num_nodes), app, blocks, config.dfs.block_size,
            seed=10, rack_of=config.rack_of,
        )
    spec = SimJobSpec(app=APP_PROFILES[app], tasks=layout, iterations=iterations, label=app)
    return engine.run_job(spec).iteration_times


def run(iterations: int = 10, blocks: int = 128, pagerank_blocks: int = 120) -> dict[str, ExperimentResult]:
    """``pagerank_blocks`` defaults to the paper's true 15 GB input size:
    the page rank crossover depends on absolute iteration-output bytes per
    node and must not be scaled down with the other datasets."""
    out: dict[str, ExperimentResult] = {}
    for app in FIG10_APPS:
        b = pagerank_blocks if app == "pagerank" else blocks
        result = ExperimentResult(
            title=f"Fig. 10: per-iteration time, {app}",
            x_label="iteration",
            x_values=list(range(1, iterations + 1)),
        )
        result.add("EclipseMR", _iteration_times(eclipse_framework("laf"), app, b, iterations))
        result.add("Spark", _iteration_times(spark_framework(), app, b, iterations))
        out[app] = result
    out["kmeans"].note("paper: Spark iter 1 slow (RDD build); EclipseMR ~3x faster after")
    out["pagerank"].note("paper: Spark faster steady-state; EclipseMR <= ~30% slower; Spark's last iter slow")
    return out


def format_table(results: dict[str, ExperimentResult]) -> str:
    from repro.experiments.common import format_rows

    return "\n\n".join(format_rows(r) for r in results.values())
