"""Supplementary: a time-series job stream (Poisson arrivals).

§III-C: "a small alpha such as 0.001 exhibits good performance for
various applications especially when a large number of subsequent jobs
are submitted as in time series."  This experiment submits a stream of
grep jobs with Poisson inter-arrival times -- each job re-reading one of
a few shared datasets -- and compares schedulers on mean job latency and
cluster-wide cache hit ratio.  Repeated submissions are exactly the
regime EclipseMR was designed for: consistent hashing sends every re-read
to the server already caching the data.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_rng
from repro.common.units import GB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["run", "format_table"]


def _stream(engine: PerfEngine, num_jobs: int, blocks_per_file: int, num_files: int,
             mean_interarrival: float, seed: int) -> list[SimJobSpec]:
    rng = derive_rng(seed, "timeseries")
    layouts = [
        dht_layout(engine.space, engine.ring, f"data-{f}", blocks_per_file,
                   engine.config.dfs.block_size)
        for f in range(num_files)
    ]
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=num_jobs))
    # Popular datasets get re-read more: Zipf-ish choice over the files.
    weights = 1.0 / np.arange(1, num_files + 1)
    weights /= weights.sum()
    specs = []
    for j in range(num_jobs):
        f = int(rng.choice(num_files, p=weights))
        specs.append(
            SimJobSpec(
                app=APP_PROFILES["grep"],
                tasks=layouts[f],
                label=f"grep-{j}-d{f}",
                submit_at=float(arrivals[j]),
            )
        )
    return specs


def _run_stream(scheduler: str, num_jobs: int, mean_interarrival: float, seed: int = 5):
    config = paper_cluster(cache_per_server=1 * GB, icache_fraction=1.0)
    engine = PerfEngine(config, eclipse_framework(scheduler))
    specs = _stream(engine, num_jobs, blocks_per_file=40, num_files=4,
                    mean_interarrival=mean_interarrival, seed=seed)
    timings = engine.run_jobs(specs)
    latencies = [t.makespan for t in timings]
    return float(np.mean(latencies)), float(np.percentile(latencies, 95)), engine.dcache.stats().hit_ratio


def run(num_jobs: int = 16, interarrivals=(20.0, 1.0)) -> ExperimentResult:
    """Two regimes: an idle stream (affinity-bound) and a loaded one."""
    result = ExperimentResult(
        title="Supplementary: Poisson job stream over shared datasets",
        x_label="regime",
        x_values=[f"interarrival {ia:g}s" for ia in interarrivals],
    )
    rows: dict[str, list[float]] = {}
    for sched_label, sched in (("LAF", "laf"), ("Delay", "delay")):
        for metric in ("mean latency (s)", "p95 latency (s)", "hit ratio %"):
            rows.setdefault(f"{sched_label} {metric}", [])
        for ia in interarrivals:
            mean, p95, hit = _run_stream(sched, num_jobs, ia)
            rows[f"{sched_label} mean latency (s)"].append(mean)
            rows[f"{sched_label} p95 latency (s)"].append(p95)
            rows[f"{sched_label} hit ratio %"].append(100 * hit)
    for k, v in rows.items():
        result.add(k, v)
    result.note("repeated jobs re-read shared inputs: consistent hashing turns the stream into cache hits")
    result.note("the ring-seeded moving average keeps LAF's ranges cache-aligned until real skew appears")
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit="")
