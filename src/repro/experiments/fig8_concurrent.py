"""Fig. 8 -- multiple concurrent jobs competing for resources.

The paper submits a batch of 7 jobs at once (2 grep, 2 word count, 1 page
rank, 1 sort, 1 k-means; 15 GB inputs, word count and grep sharing one
input file) and sweeps the per-server cache over {1, 4, 8} GB for LAF and
delay scheduling.

Expected shape: larger caches speed everything up; LAF beats delay per
application; with small caches LAF's hit ratio is *higher* (the delay
policy overloads a few servers whose caches thrash), converging as the
cache grows.
"""

from __future__ import annotations

from repro.common.units import GB, MB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["run", "format_table", "BATCH"]

#: The paper's batch: (label, app, input file, iterations).
BATCH = (
    ("grep-1", "grep", "shared-text", 1),
    ("grep-2", "grep", "shared-text", 1),
    ("wordcount-1", "wordcount", "shared-text", 1),
    ("wordcount-2", "wordcount", "shared-text", 1),
    ("pagerank", "pagerank", "graph", 2),
    ("sort", "sort", "sort-input", 1),
    ("kmeans", "kmeans", "points", 2),
)


def _run_batch(scheduler: str, cache_bytes: int, blocks_per_file: int):
    config = paper_cluster(cache_per_server=cache_bytes, icache_fraction=1.0)
    engine = PerfEngine(config, eclipse_framework(scheduler))
    layouts = {}
    specs = []
    for label, app, input_file, iterations in BATCH:
        if input_file not in layouts:
            layouts[input_file] = dht_layout(
                engine.space, engine.ring, input_file, blocks_per_file, config.dfs.block_size
            )
        specs.append(
            SimJobSpec(
                app=APP_PROFILES[app],
                tasks=layouts[input_file],
                iterations=iterations,
                label=label,
            )
        )
    timings = engine.run_jobs(specs)
    hit_ratio = engine.dcache.stats().hit_ratio
    return timings, hit_ratio


def run(cache_sizes=(256 * MB, 1 * GB, 4 * GB), blocks_per_file: int = 32):
    """Returns one ExperimentResult per cache size plus a hit-ratio summary.

    Scale note: the paper sweeps {1, 4, 8} GB per server against 15 GB
    inputs (working set ~1.9 GB/server at the low end).  Our inputs are
    scaled down ~4x, so the sweep is scaled the same way -- the low end
    still over-commits the cache and the high end holds everything, which
    is what drives the figure's shape.
    """
    per_cache: list[ExperimentResult] = []
    hit_rows: dict[str, list[float]] = {"LAF": [], "Delay": []}
    labels = [label for label, *_ in BATCH]
    for cache in cache_sizes:
        result = ExperimentResult(
            title=f"Fig. 8: concurrent batch, {cache / GB:.2f} GB cache/server",
            x_label="application",
            x_values=labels,
        )
        for sched_label, sched in (("LAF", "laf"), ("Delay", "delay")):
            timings, hit_ratio = _run_batch(sched, cache, blocks_per_file)
            result.add(sched_label, [t.makespan for t in timings])
            hit_rows[sched_label].append(100 * hit_ratio)
        per_cache.append(result)
    summary = ExperimentResult(
        title="Fig. 8 summary: batch cache hit ratio vs cache size",
        x_label="cache/server",
        x_values=[f"{c / GB:.2f}GB" for c in cache_sizes],
    )
    for k, v in hit_rows.items():
        summary.add(k, v)
    summary.note("paper: 1 GB -> LAF 14% vs Delay 8%; 8 GB -> both ~69%")
    return per_cache, summary


def format_table(results) -> str:
    from repro.experiments.common import format_rows

    per_cache, summary = results
    parts = [format_rows(r) for r in per_cache]
    parts.append(format_rows(summary, unit="%"))
    return "\n\n".join(parts)
