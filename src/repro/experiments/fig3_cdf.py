"""Fig. 3 -- equally probable CDF partitioning (mechanism reproduction).

The paper's worked example: five servers over the hash key space
``[0, 140)``, accesses concentrated near keys 40 and 90, and the LAF
partitioner producing the ranges ``[0,35) [35,47) [47,91) [91,102)
[102,140)`` -- narrow ranges around the popular keys, each range carrying
an equal 20% probability of serving the next task.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.experiments.common import ExperimentResult
from repro.scheduler.histogram import AccessHistogram, MovingAverageDistribution

__all__ = ["run", "format_table"]


def run(
    space_size: int = 140,
    num_servers: int = 5,
    accesses: int = 20_000,
    centers: tuple[float, float] = (40 / 140, 90 / 140),
    stddev: float = 0.09,
    seed: int = 7,
) -> ExperimentResult:
    """Regenerate the Fig. 3 partition from a bimodal access stream."""
    space = HashSpace(space_size)
    hist = AccessHistogram(space, num_bins=space_size, bandwidth=5)
    rng = derive_rng(seed, "fig3")
    half = accesses // 2
    keys = np.concatenate(
        [
            rng.normal(centers[0] * space_size, stddev * space_size, size=half),
            rng.normal(centers[1] * space_size, stddev * space_size, size=accesses - half),
        ]
    ).astype(int) % space_size
    hist.record_many(keys.tolist())
    ma = MovingAverageDistribution(space, num_bins=space_size, alpha=1.0)
    ma.merge(hist)
    partition = ma.partition([f"server {i+1}" for i in range(num_servers)])

    cdf = ma.cdf()
    edges = np.linspace(0, space_size, space_size + 1)
    result = ExperimentResult(
        title="Fig. 3: equally-probable hash key ranges under bimodal access",
        x_label="server",
        x_values=[s for s, _, _ in partition.as_table()],
    )
    starts, ends, widths, masses = [], [], [], []
    for server, start, end in partition.as_table():
        starts.append(start)
        ends.append(end)
        widths.append(end - start)
        mass = float(np.interp(end, edges, cdf) - np.interp(start, edges, cdf))
        masses.append(round(mass, 4))
    result.add("range start", starts)
    result.add("range end", ends)
    result.add("range width", widths)
    result.add("probability", masses)
    result.note(
        "paper's example ranges: [0,35) [35,47) [47,91) [91,102) [102,140); "
        "each range carries ~1/5 of the access probability"
    )
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit="")
