"""Fig. 9 -- EclipseMR vs Hadoop vs Spark, one application at a time.

Single job per run, cold OS/page caches for the non-iterative apps,
1 GB/server in-memory cache for the iterative trio.  Iterations follow
the paper: k-means 5, page rank 2, logistic regression 10.

Expected shape (paper):
* EclipseMR fastest on inverted index, word count, sort, k-means (~3.5x
  vs Spark) and logistic regression (~2.5x vs Spark);
* Spark wins page rank by ~15% (EclipseMR persists the large iteration
  outputs);
* Hadoop slowest overall; it is an order of magnitude behind on the
  iterative apps (the paper omits those bars).
"""

from __future__ import annotations

from repro.common.units import GB
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework, hadoop_framework, spark_framework
from repro.perfmodel.placement import dht_layout, hdfs_layout
from repro.perfmodel.profiles import APP_PROFILES

__all__ = ["run", "format_table", "FIG9_APPS"]

#: (app, iterations, blocks): ``None`` means the sweep's base_blocks.
#: Page rank runs its *true* paper size -- 15 GB = 120 x 128 MB blocks --
#: because its EclipseMR-vs-Spark crossover hinges on the absolute
#: iteration-output bytes per node, which must not be scaled down.
FIG9_APPS = (
    ("invertedindex", 1, None),
    ("wordcount", 1, None),
    ("sort", 1, None),
    ("kmeans", 5, None),
    ("logreg", 10, None),
    ("pagerank", 2, 120),
)


def _run_one(framework, app: str, iterations: int, blocks: int) -> float:
    config = paper_cluster(cache_per_server=1 * GB, icache_fraction=1.0)
    engine = PerfEngine(config, framework)
    if framework.name.startswith("eclipsemr"):
        layout = dht_layout(engine.space, engine.ring, app, blocks, config.dfs.block_size)
    else:
        layout = hdfs_layout(
            engine.space, range(config.num_nodes), app, blocks, config.dfs.block_size,
            seed=9, rack_of=config.rack_of,
        )
    spec = SimJobSpec(app=APP_PROFILES[app], tasks=layout, iterations=iterations, label=app)
    return engine.run_job(spec).makespan


def run(base_blocks: int = 256, include_hadoop_iterative: bool = True) -> ExperimentResult:
    apps = [a for a, _, _ in FIG9_APPS]
    result = ExperimentResult(
        title="Fig. 9: execution time vs Hadoop and Spark",
        x_label="application",
        x_values=apps,
    )
    rows: dict[str, list[float]] = {"EclipseMR": [], "Spark": [], "Hadoop": []}
    for app, iterations, fixed_blocks in FIG9_APPS:
        blocks = fixed_blocks if fixed_blocks is not None else base_blocks
        rows["EclipseMR"].append(_run_one(eclipse_framework("laf"), app, iterations, blocks))
        rows["Spark"].append(_run_one(spark_framework(), app, iterations, blocks))
        if include_hadoop_iterative or iterations == 1:
            rows["Hadoop"].append(_run_one(hadoop_framework(), app, iterations, blocks))
        else:
            rows["Hadoop"].append(float("nan"))
    for name, vals in rows.items():
        result.add(name, vals)
    result.note("paper normalizes to the slowest framework per app")
    result.note("paper omits Hadoop's kmeans/logreg bars (order of magnitude slower)")
    return result


def normalized(result: ExperimentResult) -> dict[str, list[float]]:
    """The paper's presentation: per-app times normalized to the slowest."""
    import math

    out: dict[str, list[float]] = {k: [] for k in result.series}
    for i in range(len(result.x_values)):
        col = [result.series[k][i] for k in result.series]
        worst = max(v for v in col if not math.isnan(v))
        for k in result.series:
            v = result.series[k][i]
            out[k].append(v / worst if not math.isnan(v) else float("nan"))
    return out


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    lines = [format_rows(result)]
    norm = normalized(result)
    lines.append("\nnormalized to slowest (the paper's y-axis):")
    for k, vals in norm.items():
        rendered = ", ".join(f"{v:.2f}" for v in vals)
        lines.append(f"  {k:>10}: {rendered}")
    return "\n".join(lines)
