"""Supplementary: failure recovery cost on the simulated cluster.

§II-A: "If a server fails, the resource manager reconstructs the lost
file blocks in a take-over server using the replicated data blocks."
The paper describes the mechanism without measuring it; this experiment
quantifies it.  The functional DHT file system computes exactly *which*
bytes must move (promotions are free, re-copies cross the network), and
the discrete-event cluster prices the resulting transfers and writes.
"""

from __future__ import annotations

from repro.common.config import DFSConfig
from repro.common.hashing import HashSpace
from repro.common.units import MB
from repro.dfs.fault import recover_from_failure
from repro.dfs.filesystem import DHTFileSystem
from repro.experiments.common import ExperimentResult, paper_cluster
from repro.perfmodel.engine import PerfEngine
from repro.perfmodel.framework import eclipse_framework
from repro.sim.engine import AllOf

__all__ = ["run", "format_table", "simulate_recovery_time"]


def simulate_recovery_time(num_nodes: int, data_blocks: int, block_size: int = 128 * MB, seed: int = 0) -> tuple[float, int]:
    """Crash one node and price the repair on the simulated cluster.

    Returns ``(recovery_seconds, bytes_recopied)``.  The repair plan comes
    from the functional file system (size-only upload); each re-copy
    becomes a read-at-source, transfer, write-at-target process, all
    concurrent, on the paper's hardware model.
    """
    space = HashSpace()
    fs = DHTFileSystem(list(range(num_nodes)), DFSConfig(block_size=block_size), space)
    fs.upload("dataset", size=data_blocks * block_size)
    # Worst-case single failure: kill the server holding the most data
    # (primaries + replicas); ring arcs are uneven, so this is the node
    # whose loss costs the most re-replication.
    victim = max(
        fs.servers,
        key=lambda sid: fs.servers[sid].blocks.primary_bytes
        + fs.servers[sid].blocks.replica_bytes,
    )

    # The repair plan: which blocks move where.
    moves: list[tuple[int, int, int]] = []  # (source, target, nbytes)
    before = {
        sid: {b.block_id for b in list(srv.blocks.primaries()) + list(srv.blocks.replicas())}
        for sid, srv in fs.servers.items()
    }
    report = recover_from_failure(fs, victim)
    after = {
        sid: {b.block_id for b in list(srv.blocks.primaries()) + list(srv.blocks.replicas())}
        for sid, srv in fs.servers.items()
    }
    for sid in after:
        gained = after[sid] - before.get(sid, set())
        for bid in gained:
            # Copy from any surviving holder that already had it.
            sources = [s for s in before if s != victim and bid in before[s]]
            if sources:
                moves.append((sources[0], sid, block_size))

    # Price the plan on the DES cluster.
    config = paper_cluster(num_nodes=num_nodes)
    engine = PerfEngine(config, eclipse_framework("laf"))
    sim = engine.sim
    cluster = engine.cluster
    index_of = {sid: i for i, sid in enumerate(sorted(set(fs.servers) | {victim}))}

    def one_copy(src: int, dst: int, nbytes: int):
        yield from cluster.nodes[src].read_extent(("rec", src, dst), nbytes)
        yield cluster.network.transfer(src, dst, nbytes)
        yield from cluster.nodes[dst].write_extent(("rec-w", src, dst), nbytes)

    procs = [
        sim.process(one_copy(index_of[s] % num_nodes, index_of[t] % num_nodes, n))
        for s, t, n in moves
    ]
    if procs:
        sim.run(AllOf(procs))
    return sim.now, report.bytes_recopied


def run(node_counts=(10, 20, 40), data_blocks: int = 240) -> ExperimentResult:
    result = ExperimentResult(
        title="Supplementary: single-failure recovery cost (re-replication)",
        x_label="# of nodes",
        x_values=list(node_counts),
    )
    times, volumes = [], []
    for n in node_counts:
        t, recopied = simulate_recovery_time(n, data_blocks)
        times.append(t)
        volumes.append(recopied / MB)
    result.add("recovery time (s)", times)
    result.add("bytes recopied (MB)", volumes)
    result.note(
        "repair volume per failure ~ the failed node's share of the data; "
        "bigger clusters spread the re-replication over more spindles"
    )
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit="")
