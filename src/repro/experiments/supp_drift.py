"""Supplementary: LAF under a *drifting* access distribution.

The paper motivates the moving average by treating access patterns as
time-series data (§II-E) and reports that "a small alpha such as 0.001
exhibits good performance for various applications especially when a
large number of subsequent jobs are submitted as in time series"
(§III-C).  This experiment makes that concrete: the popular key region
slides across the hash space over a long job sequence, and the alpha
sweep shows the trade-off --

* alpha too small: ranges lag the drift, hot servers overload;
* alpha = 1: ranges snap to each window, discarding all history and
  thrashing the caches on noisy windows;
* intermediate alphas track the drift smoothly.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import SchedulerConfig
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.experiments.common import ExperimentResult
from repro.scheduler.laf import LAFScheduler

__all__ = ["run", "format_table", "drifting_keys"]


def drifting_keys(
    space: HashSpace,
    num_tasks: int,
    *,
    drift_cycles: float = 1.0,
    stddev: float = 0.04,
    seed: int = 0,
) -> list[int]:
    """A task stream whose popular region slides around the key space.

    Task ``i``'s key is drawn around a center that completes
    ``drift_cycles`` full laps of the space over the stream.
    """
    rng = derive_rng(seed, "drift")
    t = np.arange(num_tasks) / num_tasks
    centers = (t * drift_cycles) % 1.0
    keys = rng.normal(centers * space.size, stddev * space.size) % space.size
    return [int(k) for k in keys]


def _drive(alpha: float, keys: list[int], num_servers: int = 10, slots: int = 4) -> tuple[float, float]:
    """Feed the stream; tasks complete after the next ``slots`` assignments.

    Returns ``(assignment CV, overload fraction)`` where overload counts
    assignments that landed on a server already holding >= ``slots``
    running tasks (they would queue on the real cluster).
    """
    space = HashSpace(1 << 20)
    servers = [f"s{i}" for i in range(num_servers)]
    sched = LAFScheduler(
        space, servers, SchedulerConfig(alpha=alpha, window_tasks=64, num_bins=512)
    )
    running: list[str] = []
    overloaded = 0
    for key in keys:
        a = sched.assign(hash_key=key)
        if sched.load_of(a.server) >= slots:
            overloaded += 1
        sched.notify_start(a.server)
        running.append(a.server)
        if len(running) > num_servers * slots // 2:
            sched.notify_finish(running.pop(0))
    counts = np.array(list(sched.assigned_counts.values()), dtype=float)
    cv = float(counts.std() / counts.mean())
    return cv, overloaded / len(keys)


def run(
    alphas=(0.0, 0.001, 0.01, 0.1, 1.0),
    drift_cycles=(0.0, 0.25, 2.0),
    num_tasks: int = 6000,
    seed: int = 0,
) -> ExperimentResult:
    """Overloaded-assignment percentage for each (alpha, drift rate).

    The interesting structure: the right alpha depends on how fast the
    popularity distribution moves relative to the histogram window.  The
    paper's production-style workloads drift slowly (alpha = 0.001
    suffices); a hot region lapping the key space needs a large alpha to
    keep up.
    """
    space = HashSpace(1 << 20)
    result = ExperimentResult(
        title="Supplementary: LAF alpha x popularity drift (overloaded assignments %)",
        x_label="alpha",
        x_values=[str(a) for a in alphas],
    )
    for cycles in drift_cycles:
        column = []
        keys = drifting_keys(space, num_tasks, drift_cycles=cycles, seed=seed)
        for alpha in alphas:
            _, ov = _drive(alpha, keys)
            column.append(100 * ov)
        label = "static hot spot" if cycles == 0 else f"drift x{cycles:g}"
        result.add(label, column)
    result.note("paper §III-C: small alpha suits slowly-varying time-series workloads")
    result.note("fast drift needs a larger alpha to keep ranges on the hot region")
    return result


def format_table(result: ExperimentResult) -> str:
    from repro.experiments.common import format_rows

    return format_rows(result, unit="")
