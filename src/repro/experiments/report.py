"""Plain-text rendering of experiment results: tables and bar charts.

The terminal is the paper's figure canvas here: every
:class:`~repro.experiments.common.ExperimentResult` can be shown as the
row table the benchmarks print (``format_rows``) or as a horizontal bar
chart that makes the orderings visible at a glance.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, format_rows

__all__ = ["bar_chart", "render"]

_BAR = "#"


def bar_chart(result: ExperimentResult, width: int = 48, unit: str = "s") -> str:
    """Horizontal grouped bars, one group per x value, one bar per series."""
    lines = [result.title, "=" * len(result.title)]
    flat = [v for vals in result.series.values() for v in vals if v == v]  # drop NaN
    if not flat:
        return "\n".join(lines + ["(no data)"])
    peak = max(flat) or 1.0
    name_w = max(len(str(n)) for n in result.series)
    for i, x in enumerate(result.x_values):
        lines.append(f"{x}:")
        for name, vals in result.series.items():
            v = vals[i]
            if v != v:  # NaN
                lines.append(f"  {name:>{name_w}} | (not measured)")
                continue
            bar = _BAR * max(1, int(round(width * v / peak)))
            lines.append(f"  {name:>{name_w}} | {bar} {v:.4g}{'' if unit == '' else ' ' + unit}")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render(result: ExperimentResult, style: str = "table", unit: str = "s") -> str:
    """Render with the chosen style: ``table`` or ``bars``."""
    if style == "bars":
        return bar_chart(result, unit=unit)
    if style == "table":
        return format_rows(result, unit=unit)
    raise ValueError(f"unknown style {style!r}")
