"""Experiment harness: one module per evaluation figure.

Each module exposes a ``run(...)`` function returning a structured result
plus a ``format_table(result)`` helper that prints the same rows/series
the paper reports.  The ``benchmarks/`` tree wraps these in
pytest-benchmark targets; ``examples/framework_comparison.py`` drives the
headline comparison from the command line.

Scale note: the simulations run the paper's 40-node cluster but scale the
datasets down (e.g. 32 GB instead of 250 GB) so each figure regenerates in
seconds.  Block counts stay large enough that queueing, skew and cache
behaviour keep their shape; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.experiments import common
from repro.experiments.fig3_cdf import run as run_fig3
from repro.experiments.fig5_io import run as run_fig5
from repro.experiments.fig6_schedulers import run as run_fig6
from repro.experiments.fig7_load_balance import run as run_fig7
from repro.experiments.fig8_concurrent import run as run_fig8
from repro.experiments.fig9_frameworks import run as run_fig9
from repro.experiments.fig10_iterative import run as run_fig10

__all__ = [
    "common",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
]
