"""The HDFS model: a central NameNode plus rack-aware placement.

The paper's §II-A motivation for the DHT file system is precisely what
this module models: every open/locate operation passes through one
NameNode, so metadata service throughput is bounded by a single server,
and "the IO throughput of HDFS degrades at a much faster rate than the
DHT file system" under concurrent jobs (§III-A).
"""

from __future__ import annotations

from typing import Generator

from repro.common.errors import SimulationError
from repro.perfmodel.placement import hdfs_layout as hdfs_block_layout
from repro.sim.engine import Event, Simulation
from repro.sim.resources import Resource

__all__ = ["NameNodeModel", "hdfs_block_layout"]


class NameNodeModel:
    """A serialized metadata service.

    Each operation (file open, block locate, lease renew) holds the
    NameNode for ``lookup_time`` seconds; concurrent clients queue.  The
    model exposes queue statistics so experiments can show the bottleneck
    forming.
    """

    def __init__(self, sim: Simulation, lookup_time: float = 0.02) -> None:
        if lookup_time <= 0:
            raise SimulationError("NameNode lookup time must be positive")
        self.sim = sim
        self.lookup_time = float(lookup_time)
        self._service = Resource(sim, capacity=1)
        self.operations = 0
        self.total_wait = 0.0

    @property
    def queue_length(self) -> int:
        return self._service.queue_length

    def lookup(self) -> Generator[Event, None, None]:
        """Process body: one metadata operation (queue + service)."""
        arrived = self.sim.now
        req = self._service.request()
        yield req
        try:
            self.total_wait += self.sim.now - arrived
            self.operations += 1
            yield self.sim.timeout(self.lookup_time)
        finally:
            self._service.release(req)

    @property
    def mean_wait(self) -> float:
        """Average queueing delay per operation so far."""
        return self.total_wait / self.operations if self.operations else 0.0
