"""Baseline system models: HDFS, Hadoop 2.5 and Spark 1.2.

The paper evaluates EclipseMR against Hadoop and Spark; this package holds
everything specific to those baselines:

* :mod:`repro.baselines.hdfs` -- the centralized-NameNode file system
  model (metadata serialization, rack-aware replica placement).
* :mod:`repro.baselines.hadoop` -- the Hadoop 2.5 framework model: YARN
  container overheads, fair scheduling with locality levels, disk-backed
  pull shuffle.
* :mod:`repro.baselines.spark` -- the Spark 1.2 framework model: RDD
  caching, delay scheduling, in-memory shuffle, memory-resident iteration
  outputs.

The framework descriptors themselves live in
:mod:`repro.perfmodel.framework` (they are consumed by the engine); this
package re-exports them alongside the HDFS placement/NameNode helpers so
baseline-related code has one import home.
"""

from repro.baselines.hdfs import NameNodeModel, hdfs_block_layout
from repro.baselines.hadoop import hadoop_framework
from repro.baselines.spark import spark_framework

__all__ = [
    "NameNodeModel",
    "hdfs_block_layout",
    "hadoop_framework",
    "spark_framework",
]
