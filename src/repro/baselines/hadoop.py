"""The Hadoop 2.5 baseline.

Behavioural summary (what Fig. 5b/9 hinge on, per the paper §III-E):

* every map/reduce task runs in a fresh YARN container costing ~7 s of
  initialization and authentication -- "Hadoop spends 7 seconds for every
  128 MB block" [16, 17];
* all metadata passes through the NameNode
  (:class:`repro.baselines.hdfs.NameNodeModel`);
* scheduling is fair with node/rack locality preference
  (:class:`repro.scheduler.fair.FairScheduler`);
* map output is spilled to the mapper's local disk and *pulled* by
  reducers after the map phase;
* input blocks are not cached in memory (the HDFS in-memory cache the
  paper discusses caches only local inputs and is not enabled in the
  evaluation configuration);
* outputs are written with the HDFS pipeline (3 replicas).

The framework descriptor is defined in
:mod:`repro.perfmodel.framework.hadoop_framework`; this module re-exports
it as the baselines-package home.
"""

from repro.perfmodel.framework import hadoop_framework

__all__ = ["hadoop_framework"]
