"""The Spark 1.2 baseline.

Behavioural summary (per the paper §II-F, §III-E, §III-F):

* tasks launch cheaply (no per-task container) but the first iteration
  *constructs RDDs*, which is why "Spark runs the first iteration of the
  iterative applications much slower than subsequent iterations";
* input partitions are cached in executor memory (the RDD cache) and
  tasks are placed by **delay scheduling**: wait up to 5 s for the
  preferred server before running elsewhere [33, 34];
* shuffle output is fetched over the network into executor memory;
* iteration outputs stay memory-resident -- no fault-tolerance writes --
  until the final iteration's output is saved to storage ("Spark writes
  its final outputs to disk storage"), which is the durability trade-off
  the paper contrasts with EclipseMR's persist-every-iteration DHT FS
  writes.

The framework descriptor is defined in
:mod:`repro.perfmodel.framework.spark_framework`; this module re-exports
it as the baselines-package home.
"""

from repro.perfmodel.framework import spark_framework

__all__ = ["spark_framework"]
