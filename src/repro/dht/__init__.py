"""Consistent hashing / Chord-style DHT substrate.

Both EclipseMR rings (the DHT file system and the distributed in-memory
cache) are built on this package:

* :mod:`repro.dht.ring` -- the consistent hash ring: node positions, key
  ownership, successors/predecessors.
* :mod:`repro.dht.finger` -- Chord finger tables and greedy key routing,
  including the "one-hop" complete-table mode the paper uses for clusters
  below a couple thousand servers.
* :mod:`repro.dht.membership` -- join/leave/failure handling, heartbeats
  and the coordinator election that picks the job scheduler and resource
  manager.
"""

from repro.dht.ring import ConsistentHashRing, RingNode
from repro.dht.finger import FingerTable, RoutingTable, Route
from repro.dht.membership import MembershipService, NodeState, MembershipEvent
from repro.dht.vnodes import VirtualNodeRing

__all__ = [
    "ConsistentHashRing",
    "RingNode",
    "FingerTable",
    "RoutingTable",
    "Route",
    "MembershipService",
    "NodeState",
    "MembershipEvent",
    "VirtualNodeRing",
]
