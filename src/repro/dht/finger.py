"""Chord finger tables and key routing.

The paper stores a routing table of ``m`` peers per server and chooses
``m`` so that ``2**m - 1 > S``; for clusters under a couple thousand
servers it simply sets ``m`` to the server count, giving every node the
complete ring -- "one hop DHT routing" [Gupta et al., HotOS'03].  When the
table is partial, requests are forwarded greedily through the classic Chord
``closest_preceding_node`` rule, taking ``O(log S)`` hops.

Both modes are implemented so the routing ablation bench can quantify what
one-hop routing buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.common.errors import RingError
from repro.dht.ring import ConsistentHashRing

__all__ = ["FingerTable", "RoutingTable", "Route"]


@dataclass(frozen=True)
class Route:
    """The outcome of routing a key: the owner and the path taken."""

    owner: Hashable
    hops: tuple[Hashable, ...]

    @property
    def hop_count(self) -> int:
        """Forwarding steps taken (0 when the start node owns the key)."""
        return len(self.hops) - 1


@dataclass
class FingerTable:
    """One server's view of the ring.

    ``entries[i]`` is the server succeeding ``position + 2**i``; with
    ``complete=True`` the node also knows every peer directly.
    """

    node_id: Hashable
    position: int
    entries: list[tuple[int, Hashable]] = field(default_factory=list)
    complete: bool = False
    successor: Hashable | None = None
    predecessor: Hashable | None = None

    def __len__(self) -> int:
        return len(self.entries)


class RoutingTable:
    """Builds and queries finger tables for every node on a ring."""

    def __init__(self, ring: ConsistentHashRing, one_hop: bool = True) -> None:
        if len(ring) == 0:
            raise RingError("cannot build routing tables for an empty ring")
        self.ring = ring
        self.one_hop = one_hop
        self._tables: dict[Hashable, FingerTable] = {}
        self.rebuild()

    def rebuild(self) -> None:
        """Recompute every table (after membership changes)."""
        self._tables.clear()
        space = self.ring.space
        # Classic Chord: finger[i] targets position + 2**i for every power of
        # two inside the key space.  Duplicate owners collapse, so each table
        # stores O(log S) entries even though i spans the space's bit width.
        m = (space.size - 1).bit_length() if not self.one_hop else 0
        for node_id in self.ring.nodes:
            position = self.ring.position_of(node_id)
            table = FingerTable(
                node_id=node_id,
                position=position,
                complete=self.one_hop,
                successor=self.ring.successor(node_id),
                predecessor=self.ring.predecessor(node_id),
            )
            if not self.one_hop:
                seen: set[Hashable] = set()
                for i in range(m):
                    step = 1 << i
                    if step >= space.size:
                        break
                    target = space.add(position, step)
                    owner = self.ring.owner_of(target)
                    if owner not in seen:
                        table.entries.append((target, owner))
                        seen.add(owner)
            self._tables[node_id] = table

    def table(self, node_id: Hashable) -> FingerTable:
        try:
            return self._tables[node_id]
        except KeyError:
            raise RingError(f"no finger table for {node_id!r}") from None

    def route(self, start: Hashable, key: int, max_hops: int | None = None) -> Route:
        """Route ``key`` from ``start`` to its owner; returns the hop path.

        One-hop mode answers directly from the complete table.  Partial
        tables forward through the closest preceding finger, falling back
        to the successor pointer, as in Chord.
        """
        self.ring.space.validate(key)
        owner = self.ring.owner_of(key)
        if self.one_hop:
            hops = (start,) if start == owner else (start, owner)
            return Route(owner=owner, hops=hops)
        limit = max_hops if max_hops is not None else 2 * len(self.ring) + 2
        path = [start]
        current = start
        while current != owner:
            if len(path) > limit:
                raise RingError(f"routing for key {key} exceeded {limit} hops")
            current = self._next_hop(current, key)
            path.append(current)
        return Route(owner=owner, hops=tuple(path))

    def _next_hop(self, current: Hashable, key: int) -> Hashable:
        """Chord forwarding: the finger that gets closest without passing key."""
        space = self.ring.space
        table = self._tables[current]
        position = table.position
        succ = table.successor
        assert succ is not None
        # A node at position s owns [predecessor, s): our successor owns every
        # key in [position, succ_pos).
        succ_pos = self.ring.position_of(succ)
        if space.in_range(key, position, succ_pos):
            return succ
        # Otherwise jump to the closest preceding finger.
        best = succ
        best_dist = space.distance(self.ring.position_of(succ), key)
        for _, node in table.entries:
            if node == current:
                continue
            pos = self.ring.position_of(node)
            # The finger must not overshoot the key: safe iff its position is
            # in (position, key] (a node exactly at the key still does not
            # own it under [pred, pos) arcs).
            if space.distance(space.add(position, 1), pos) <= space.distance(space.add(position, 1), key):
                dist = space.distance(pos, key)
                if dist < best_dist:
                    best, best_dist = node, dist
        return best

    def average_hops(self, sample_keys: list[int], starts: list[Hashable] | None = None) -> float:
        """Mean hop count over a key sample (the routing ablation metric)."""
        starts = starts or self.ring.nodes
        total = 0
        count = 0
        for start in starts:
            for key in sample_keys:
                total += self.route(start, key).hop_count
                count += 1
        return total / count if count else 0.0
