"""The consistent hash ring.

Each server sits at a *position* on the circular hash space and owns the
half-open arc from its predecessor's position up to (but excluding) its own
-- exactly the layout of Fig. 1 in the paper, where server B at position 15
owns ``[5, 15)`` because its predecessor A sits at 5.

Ownership therefore moves minimally when servers join or leave: a join
splits one arc, a leave merges two, and no other key changes hands -- the
defining property of consistent hashing and the reason the DHT file system
needs no central directory.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.common.errors import RingError
from repro.common.hashing import DEFAULT_SPACE, HashSpace, KeyRange

__all__ = ["ConsistentHashRing", "RingNode"]


@dataclass(frozen=True)
class RingNode:
    """A server's placement on the ring."""

    node_id: Hashable
    position: int


class ConsistentHashRing:
    """Positions, ownership arcs, and neighbor relations for a set of servers."""

    def __init__(self, space: HashSpace = DEFAULT_SPACE) -> None:
        self.space = space
        self._position_of: dict[Hashable, int] = {}
        self._sorted_positions: list[int] = []
        self._node_at: dict[int, Hashable] = {}

    # -- membership -----------------------------------------------------------

    def add_node(self, node_id: Hashable, position: int | None = None) -> RingNode:
        """Place a server on the ring.

        Without an explicit ``position`` the server hashes to
        ``space.key_of(str(node_id))``, so placement is deterministic and
        agreed on by every participant without coordination.
        """
        if node_id in self._position_of:
            raise RingError(f"node {node_id!r} already on the ring")
        if position is None:
            position = self.space.key_of(str(node_id))
        else:
            self.space.validate(position)
        if position in self._node_at:
            raise RingError(
                f"position {position} already taken by {self._node_at[position]!r}"
                " (hash collision; supply an explicit position)"
            )
        self._position_of[node_id] = position
        self._node_at[position] = node_id
        bisect.insort(self._sorted_positions, position)
        return RingNode(node_id, position)

    def owned_fraction(self, node_id: Hashable) -> float:
        """Fraction of the key space the server's arc covers."""
        return len(self.range_of(node_id)) / self.space.size

    def remove_node(self, node_id: Hashable) -> None:
        """Take a server off the ring; its arc merges into its successor's."""
        position = self._require(node_id)
        del self._position_of[node_id]
        del self._node_at[position]
        idx = bisect.bisect_left(self._sorted_positions, position)
        self._sorted_positions.pop(idx)

    def __len__(self) -> int:
        return len(self._position_of)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._position_of

    @property
    def nodes(self) -> list[Hashable]:
        """Node ids in clockwise position order."""
        return [self._node_at[p] for p in self._sorted_positions]

    @property
    def positions(self) -> list[int]:
        """Sorted node positions."""
        return list(self._sorted_positions)

    def position_of(self, node_id: Hashable) -> int:
        return self._require(node_id)

    # -- ownership --------------------------------------------------------------

    def owner_of(self, key: int) -> Hashable:
        """The server whose arc contains ``key`` (its Chord successor)."""
        self.space.validate(key)
        if not self._sorted_positions:
            raise RingError("ring is empty")
        idx = bisect.bisect_right(self._sorted_positions, key)
        # bisect_right gives the first position > key; a node at position p
        # owns (pred, p], i.e. keys strictly greater than pred up to p.
        # With half-open arcs [pred, p) the node at the first position > key
        # owns it, wrapping past the top.
        if idx == len(self._sorted_positions):
            idx = 0
        return self._node_at[self._sorted_positions[idx]]

    def range_of(self, node_id: Hashable) -> KeyRange:
        """The arc ``[predecessor_position, own_position)`` a server owns."""
        position = self._require(node_id)
        pred = self.position_of(self.predecessor(node_id))
        return KeyRange(self.space, pred, position)

    def ranges(self) -> dict[Hashable, KeyRange]:
        """Every server's arc; the arcs partition the circle."""
        return {node_id: self.range_of(node_id) for node_id in self._position_of}

    # -- neighbors ---------------------------------------------------------------

    def successor(self, node_id: Hashable) -> Hashable:
        """Clockwise neighbor (itself on a single-node ring)."""
        position = self._require(node_id)
        idx = bisect.bisect_right(self._sorted_positions, position)
        if idx == len(self._sorted_positions):
            idx = 0
        return self._node_at[self._sorted_positions[idx]]

    def predecessor(self, node_id: Hashable) -> Hashable:
        """Counter-clockwise neighbor (itself on a single-node ring)."""
        position = self._require(node_id)
        idx = bisect.bisect_left(self._sorted_positions, position) - 1
        return self._node_at[self._sorted_positions[idx]]

    def successor_of_key(self, key: int) -> Hashable:
        """Alias of :meth:`owner_of` under its Chord name."""
        return self.owner_of(key)

    def replica_set(self, key: int, extra: int = 2) -> list[Hashable]:
        """Servers holding ``key``: the owner plus up to ``extra`` neighbors.

        The paper replicates blocks and metadata on the predecessor *and*
        successor (``extra = 2``); fewer distinct servers are returned on
        tiny rings.
        """
        owner = self.owner_of(key)
        servers = [owner]
        if extra >= 1:
            pred = self.predecessor(owner)
            if pred not in servers:
                servers.append(pred)
        if extra >= 2:
            succ = self.successor(owner)
            if succ not in servers:
                servers.append(succ)
        return servers

    def walk(self, start: Hashable) -> Iterator[Hashable]:
        """Iterate all nodes clockwise starting at ``start``."""
        nodes = self.nodes
        i = nodes.index(start)
        for k in range(len(nodes)):
            yield nodes[(i + k) % len(nodes)]

    def _require(self, node_id: Hashable) -> int:
        try:
            return self._position_of[node_id]
        except KeyError:
            raise RingError(f"node {node_id!r} not on the ring") from None

    def __repr__(self) -> str:
        return f"<ConsistentHashRing {len(self)} nodes on {self.space!r}>"
