"""Virtual nodes: the classic consistent-hashing balance fix.

A physical server claims ``v`` positions on the ring instead of one, so
its total owned arc concentrates around ``1/n`` of the space.  Virtual
nodes even out *key-space ownership* -- but they cannot adapt to skewed
*key popularity*, which is the problem the paper's LAF scheduler solves
(§II-E).  The ablation bench contrasts the two directly.

:class:`VirtualNodeRing` exposes the same lookup surface as
:class:`~repro.dht.ring.ConsistentHashRing` (``owner_of``, ``nodes``,
``replica_set``) while mapping every virtual position back to its
physical server.
"""

from __future__ import annotations

from typing import Hashable

from repro.common.errors import RingError
from repro.common.hashing import DEFAULT_SPACE, HashSpace
from repro.dht.ring import ConsistentHashRing

__all__ = ["VirtualNodeRing"]


class VirtualNodeRing:
    """A consistent hash ring where each server holds many positions."""

    def __init__(self, space: HashSpace = DEFAULT_SPACE, vnodes: int = 16) -> None:
        if vnodes < 1:
            raise RingError("vnodes must be >= 1")
        self.space = space
        self.vnodes = vnodes
        self._ring = ConsistentHashRing(space)
        self._physical_of: dict[Hashable, Hashable] = {}
        self._members: list[Hashable] = []

    # -- membership -----------------------------------------------------------

    def add_node(self, node_id: Hashable) -> None:
        """Claim ``vnodes`` hashed positions for a physical server."""
        if node_id in self._members:
            raise RingError(f"node {node_id!r} already on the ring")
        placed = []
        try:
            for v in range(self.vnodes):
                token = (node_id, v)
                self._ring.add_node(token, self.space.key_of(f"{node_id}#vn{v}"))
                self._physical_of[token] = node_id
                placed.append(token)
        except RingError:
            for token in placed:
                self._ring.remove_node(token)
                del self._physical_of[token]
            raise
        self._members.append(node_id)

    def remove_node(self, node_id: Hashable) -> None:
        """Release every virtual position of a physical server."""
        if node_id not in self._members:
            raise RingError(f"node {node_id!r} not on the ring")
        for token in [t for t, p in self._physical_of.items() if p == node_id]:
            self._ring.remove_node(token)
            del self._physical_of[token]
        self._members.remove(node_id)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._members

    @property
    def nodes(self) -> list[Hashable]:
        """Physical members (insertion order)."""
        return list(self._members)

    # -- lookups -----------------------------------------------------------------

    def owner_of(self, key: int) -> Hashable:
        """The physical server owning ``key``."""
        return self._physical_of[self._ring.owner_of(key)]

    def replica_set(self, key: int, extra: int = 2) -> list[Hashable]:
        """Owner plus the next ``extra`` *distinct physical* successors.

        Walking virtual successors can revisit the same physical server;
        replicas must land on different machines to survive failures.
        """
        owner_token = self._ring.owner_of(key)
        out = [self._physical_of[owner_token]]
        for token in self._ring.walk(owner_token):
            phys = self._physical_of[token]
            if phys not in out:
                out.append(phys)
            if len(out) > extra:
                break
        return out

    def owned_fraction(self, node_id: Hashable) -> float:
        """Total key-space share across all of a server's virtual arcs."""
        if node_id not in self._members:
            raise RingError(f"node {node_id!r} not on the ring")
        total = sum(
            len(self._ring.range_of(token))
            for token, phys in self._physical_of.items()
            if phys == node_id
        )
        return total / self.space.size
