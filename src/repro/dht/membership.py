"""Cluster membership: joins, leaves, failures, heartbeats, election.

EclipseMR has no fixed master: the job scheduler and resource manager are
*roles* any worker can take, chosen by a distributed election, and every
server exchanges heartbeats with its direct ring neighbors to detect
failures (paper §II, §II-A).  This module keeps the authoritative node
state, drives failure detection from heartbeat timestamps, and notifies
listeners (the DHT file system re-replicates, the scheduler re-partitions).

The service is clock-agnostic: callers feed it the current time, so it
works identically under the discrete-event simulator and in the functional
engine's wall-clock-free tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.common.errors import RingError
from repro.dht.ring import ConsistentHashRing

__all__ = ["MembershipService", "NodeState", "MembershipEvent"]


class NodeState(enum.Enum):
    ALIVE = "alive"
    DEAD = "dead"


@dataclass(frozen=True)
class MembershipEvent:
    """What changed: ``kind`` in {join, leave, failure, election}."""

    kind: str
    node_id: Hashable
    time: float
    details: str = ""


Listener = Callable[[MembershipEvent], None]


class MembershipService:
    """Tracks which servers are alive and who holds the coordinator roles."""

    def __init__(self, ring: ConsistentHashRing, heartbeat_timeout: float = 3.0) -> None:
        if heartbeat_timeout <= 0:
            raise RingError("heartbeat timeout must be positive")
        self.ring = ring
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._state: dict[Hashable, NodeState] = {}
        self._last_heartbeat: dict[Hashable, float] = {}
        self._listeners: list[Listener] = []
        self.events: list[MembershipEvent] = []

    # -- listeners -------------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Register a callback invoked on every membership event."""
        self._listeners.append(listener)

    def _emit(self, event: MembershipEvent) -> None:
        self.events.append(event)
        for fn in self._listeners:
            fn(event)

    # -- membership ------------------------------------------------------------

    def join(self, node_id: Hashable, now: float = 0.0, position: int | None = None) -> None:
        """A server joins: placed on the ring, marked alive, listeners told."""
        self.ring.add_node(node_id, position)
        self._state[node_id] = NodeState.ALIVE
        self._last_heartbeat[node_id] = now
        self._emit(MembershipEvent("join", node_id, now))

    def leave(self, node_id: Hashable, now: float = 0.0) -> None:
        """A graceful departure (data handed off before the node goes)."""
        self._require_member(node_id)
        self.ring.remove_node(node_id)
        del self._state[node_id]
        del self._last_heartbeat[node_id]
        self._emit(MembershipEvent("leave", node_id, now))

    def fail(self, node_id: Hashable, now: float = 0.0) -> None:
        """A crash: the node stays *off* the ring; successors take over."""
        self._require_member(node_id)
        if self._state[node_id] is NodeState.DEAD:
            return
        self._state[node_id] = NodeState.DEAD
        self.ring.remove_node(node_id)
        self._emit(MembershipEvent("failure", node_id, now))

    # -- heartbeats -------------------------------------------------------------

    def heartbeat(self, node_id: Hashable, now: float) -> None:
        """Record a heartbeat from ``node_id`` at time ``now``."""
        self._require_member(node_id)
        if self._state[node_id] is NodeState.ALIVE:
            self._last_heartbeat[node_id] = now

    def detect_failures(self, now: float) -> list[Hashable]:
        """Mark every node silent for longer than the timeout as failed.

        In the real system each server only watches its direct neighbors;
        the set of detected failures is identical, so the service checks all
        nodes at once.
        """
        failed = [
            node_id
            for node_id, state in self._state.items()
            if state is NodeState.ALIVE
            and now - self._last_heartbeat[node_id] > self.heartbeat_timeout
        ]
        for node_id in failed:
            self.fail(node_id, now)
        return failed

    # -- queries ---------------------------------------------------------------

    def state_of(self, node_id: Hashable) -> NodeState:
        self._require_member(node_id)
        return self._state[node_id]

    @property
    def alive_nodes(self) -> list[Hashable]:
        """Alive servers in ring order."""
        return [n for n in self.ring.nodes if self._state.get(n) is NodeState.ALIVE]

    def is_alive(self, node_id: Hashable) -> bool:
        return self._state.get(node_id) is NodeState.ALIVE

    # -- election ----------------------------------------------------------------

    def elect_coordinator(self, now: float = 0.0) -> Hashable:
        """Deterministic election: the alive server with the lowest position.

        Every node can compute the winner locally from its (complete) finger
        table, so the election needs no extra rounds -- the distributed
        analogue of a bully election keyed on ring position.
        """
        alive = self.alive_nodes
        if not alive:
            raise RingError("no alive nodes to elect a coordinator from")
        winner = min(alive, key=self.ring.position_of)
        self._emit(MembershipEvent("election", winner, now))
        return winner

    def _require_member(self, node_id: Hashable) -> None:
        if node_id not in self._state:
            raise RingError(f"node {node_id!r} is not a cluster member")
