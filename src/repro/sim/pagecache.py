"""OS page cache model.

The paper's most surprising result (Fig. 6b) is that explicitly caching
iteration outputs in oCache barely helps -- because writing them to the DHT
file system leaves them in the *OS page cache* anyway, so the next iteration
reads them from memory either way.  Reproducing that observation requires a
page cache model between tasks and the disk: an LRU over block-sized
extents, fed by both reads and writes.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import SimulationError

__all__ = ["PageCache"]


class PageCache:
    """LRU cache of named extents with a byte capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError("page cache capacity must be non-negative")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[object, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    @property
    def used(self) -> int:
        return self._used

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, key: object, size: int) -> bool:
        """Record a read of extent ``key``; returns True on a hit.

        On a miss the extent is inserted (read-allocate), evicting LRU
        entries as needed.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key, size)
        return False

    def insert(self, key: object, size: int) -> None:
        """Place an extent (write-allocate path); oversized extents are skipped."""
        if size < 0:
            raise SimulationError("negative extent size")
        if size > self.capacity:
            # An extent larger than the whole cache would evict everything
            # and then not fit; real kernels stream such I/O past the cache.
            self._entries.pop(key, None)
            self._recompute()
            return
        if key in self._entries:
            self._used -= self._entries[key]
            del self._entries[key]
        while self._used + size > self.capacity and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        self._entries[key] = size
        self._used += size

    def invalidate(self, key: object) -> None:
        """Drop an extent (file deleted / truncated)."""
        size = self._entries.pop(key, None)
        if size is not None:
            self._used -= size

    def clear(self) -> None:
        """Drop everything (the paper's ``echo 3 > drop_caches`` between jobs)."""
        self._entries.clear()
        self._used = 0

    def _recompute(self) -> None:
        self._used = sum(self._entries.values())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
