"""A simulated worker server.

Bundles the per-node hardware: map/reduce slots, the data HDD, the OS page
cache, and helper processes that read and write named extents through the
page-cache-then-disk path.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.disk import Disk
from repro.sim.engine import Event, Simulation
from repro.sim.pagecache import PageCache
from repro.sim.resources import Resource

__all__ = ["SimNode"]

#: Effective memory copy bandwidth for page-cache hits (bytes/s).  DDR3-era
#: single-stream copy; fast enough that cached reads are effectively free
#: next to disk, which is all that matters for the result shapes.
MEMORY_BANDWIDTH = 2.5 * 1024**3


class SimNode:
    """One server: slots + disk + page cache."""

    def __init__(
        self,
        sim: Simulation,
        index: int,
        *,
        map_slots: int,
        reduce_slots: int,
        disk_bandwidth: float,
        disk_seek_time: float,
        page_cache_bytes: int,
    ) -> None:
        self.sim = sim
        self.index = index
        self.map_slots = Resource(sim, capacity=map_slots)
        self.reduce_slots = Resource(sim, capacity=max(1, reduce_slots))
        self.disk = Disk(sim, disk_bandwidth, disk_seek_time, name=f"disk{index}")
        self.page_cache = PageCache(page_cache_bytes)
        self.tasks_started = 0
        self.tasks_finished = 0

    def read_extent(self, key: object, nbytes: int) -> Generator[Event, None, bool]:
        """Process body: read a named extent via page cache, else disk.

        Returns True when the read was served from the page cache.
        """
        if self.page_cache.access(key, nbytes):
            yield self.sim.timeout(nbytes / MEMORY_BANDWIDTH)
            return True
        yield from self.disk.read(nbytes, stream=key)
        return False

    def write_extent(self, key: object, nbytes: int) -> Generator[Event, None, None]:
        """Process body: write a named extent (write-back: populates page cache)."""
        self.page_cache.insert(key, nbytes)
        yield from self.disk.write(nbytes, stream=key)

    def drop_caches(self) -> None:
        """Empty the OS page cache (done between jobs in the paper's runs)."""
        self.page_cache.clear()

    def __repr__(self) -> str:
        return f"<SimNode {self.index}>"
