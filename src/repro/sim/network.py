"""Two-level switched Ethernet with max-min fair bandwidth sharing.

The testbed wires 20 + 20 nodes through two top-of-rack switches joined by a
third switch (paper §III).  We model every NIC and every inter-switch trunk
as a full-duplex pair of directed links and treat active transfers as fluid
flows: at any instant the rate vector is the *max-min fair* allocation over
the links each flow crosses (the classical water-filling computation).  The
allocation is recomputed whenever a flow starts or finishes, which is exact
for fluid flows and keeps the event count proportional to the number of
transfers rather than packets.

This is the substrate that makes shuffle-heavy results (``sort`` in Fig. 9,
proactive shuffle ablations) come out of contention rather than constants.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.sim.engine import Event, Simulation

__all__ = ["Network", "Flow"]

_EPS_BYTES = 1e-6


class _Link:
    """A directed link with a capacity shared by the flows crossing it."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"link {name}: capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self.flows: set["Flow"] = set()

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:.3g} flows={len(self.flows)}>"


class Flow:
    """An in-flight transfer; ``done`` fires when the last byte lands."""

    __slots__ = ("src", "dst", "size", "remaining", "rate", "links", "done", "start_time")

    def __init__(self, src: int, dst: int, size: float, links: list[_Link], done: Event, start_time: float) -> None:
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.links = links
        self.done = done
        self.start_time = start_time

    def __repr__(self) -> str:
        return (
            f"<Flow {self.src}->{self.dst} {self.remaining:.0f}/{self.size:.0f}B "
            f"@{self.rate:.3g}B/s>"
        )


class Network:
    """The cluster fabric: per-node NICs, per-rack trunks, fair sharing."""

    def __init__(
        self,
        sim: Simulation,
        num_nodes: int,
        rack_size: int,
        node_bandwidth: float,
        uplink_bandwidth: float,
        latency: float = 0.0002,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError("network needs at least one node")
        if rack_size < 1:
            raise SimulationError("rack_size must be >= 1")
        self.sim = sim
        self.num_nodes = num_nodes
        self.rack_size = rack_size
        self.latency = float(latency)
        self._node_up = [_Link(f"node{i}.up", node_bandwidth) for i in range(num_nodes)]
        self._node_down = [_Link(f"node{i}.down", node_bandwidth) for i in range(num_nodes)]
        num_racks = (num_nodes + rack_size - 1) // rack_size
        self._rack_up = [_Link(f"rack{r}.up", uplink_bandwidth) for r in range(num_racks)]
        self._rack_down = [_Link(f"rack{r}.down", uplink_bandwidth) for r in range(num_racks)]
        self._flows: set[Flow] = set()
        self._last_update = 0.0
        self._timer_gen = 0
        self.bytes_transferred = 0.0
        self.flows_completed = 0

    def rack_of(self, node: int) -> int:
        return node // self.rack_size

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, src: int, dst: int, nbytes: float) -> Event:
        """Start a transfer; returns the completion event.

        Local transfers (``src == dst``) never touch the fabric and complete
        after the message latency alone, matching a loop-back read.
        """
        for node in (src, dst):
            if not 0 <= node < self.num_nodes:
                raise SimulationError(f"node {node} outside the cluster")
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        done = self.sim.event()
        if src == dst or nbytes == 0:
            self.sim.timeout(self.latency).add_callback(lambda _ev: done.succeed(None))
            return done
        links: list[_Link] = [self._node_up[src]]
        if self.rack_of(src) != self.rack_of(dst):
            links.append(self._rack_up[self.rack_of(src)])
            links.append(self._rack_down[self.rack_of(dst)])
        links.append(self._node_down[dst])
        flow = Flow(src, dst, nbytes, links, done, self.sim.now)
        # The payload starts flowing after the request latency.
        self.sim.timeout(self.latency).add_callback(lambda _ev, f=flow: self._start_flow(f))
        return done

    # -- fluid-flow machinery -------------------------------------------------

    def _start_flow(self, flow: Flow) -> None:
        self._advance()
        self._flows.add(flow)
        for link in flow.links:
            link.flows.add(flow)
        self._reallocate()
        self._arm_timer()

    def _finish_flow(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for link in flow.links:
            link.flows.discard(flow)
        self.bytes_transferred += flow.size
        self.flows_completed += 1
        flow.done.succeed(None)

    def _advance(self) -> None:
        """Drain bytes for the time elapsed since the last recompute."""
        dt = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if dt <= 0:
            return
        for flow in self._flows:
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)

    def _reallocate(self) -> None:
        """Water-filling max-min fair rates for all active flows."""
        unfrozen = set(self._flows)
        residual = {id(l): l.capacity for l in self._iter_links()}
        for flow in unfrozen:
            flow.rate = 0.0
        while unfrozen:
            # Tightest link determines the next rate increment plateau.
            best_share: Optional[float] = None
            for link in self._iter_links():
                n = sum(1 for f in link.flows if f in unfrozen)
                if n == 0:
                    continue
                share = residual[id(link)] / n
                if best_share is None or share < best_share:
                    best_share = share
            if best_share is None:
                break
            # Freeze every flow whose bottleneck link hit the plateau.
            frozen_now: set[Flow] = set()
            for link in self._iter_links():
                n = sum(1 for f in link.flows if f in unfrozen)
                if n and residual[id(link)] / n <= best_share * (1 + 1e-12):
                    frozen_now.update(f for f in link.flows if f in unfrozen)
            if not frozen_now:  # numerical safety net
                frozen_now = set(unfrozen)
            for flow in frozen_now:
                flow.rate = best_share
                for link in flow.links:
                    residual[id(link)] = max(0.0, residual[id(link)] - best_share)
            unfrozen -= frozen_now

    def _iter_links(self):
        yield from self._node_up
        yield from self._node_down
        yield from self._rack_up
        yield from self._rack_down

    def _done_threshold(self, flow: Flow) -> float:
        """Bytes below which a flow counts as complete.

        Combines an absolute floor with a relative term: after many partial
        advances the accumulated float error scales with the flow size, and
        a residue whose drain time underflows the clock resolution must be
        treated as done or the completion timer re-fires at the same
        instant forever.
        """
        return max(_EPS_BYTES, 1e-9 * flow.size)

    def _arm_timer(self) -> None:
        """Schedule a wakeup at the earliest flow completion."""
        self._timer_gen += 1
        gen = self._timer_gen
        next_dt: Optional[float] = None
        for flow in self._flows:
            if flow.rate > 0:
                dt = flow.remaining / flow.rate
                if next_dt is None or dt < next_dt:
                    next_dt = dt
        if next_dt is None:
            return
        self.sim.timeout(max(0.0, next_dt)).add_callback(
            lambda _ev: self._on_timer(gen)
        )

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a newer allocation
        self._advance()
        now = self.sim.now
        finished = []
        for f in self._flows:
            if f.remaining <= self._done_threshold(f):
                finished.append(f)
            elif f.rate > 0 and now + f.remaining / f.rate == now:
                # The residue would drain in less than one representable
                # clock tick: finish it now rather than spin at this time.
                finished.append(f)
        for flow in finished:
            self._finish_flow(flow)
        if finished:
            self._reallocate()
        self._arm_timer()
