"""A single-spindle HDD model.

The testbed stored HDFS / DHT-FS data on one 7200 rpm 2 TB drive per node.
We model it as a FIFO device: each request pays an average seek (when it is
not sequential with the previous request) plus ``bytes / bandwidth`` of
streaming time.  Concurrent requests queue; the paper's straggler effects
under skew come straight out of this queueing.
"""

from __future__ import annotations

from typing import Generator

from repro.common.errors import SimulationError
from repro.sim.engine import Event, Simulation
from repro.sim.resources import Resource

__all__ = ["Disk"]


class Disk:
    """FIFO block device with seek + streaming costs."""

    def __init__(
        self,
        sim: Simulation,
        bandwidth: float,
        seek_time: float = 0.008,
        name: str = "disk",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("disk bandwidth must be positive")
        if seek_time < 0:
            raise SimulationError("seek time must be non-negative")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.seek_time = float(seek_time)
        self.name = name
        self._queue = Resource(sim, capacity=1)
        self._last_stream_key: object = None
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0

    @property
    def queue_length(self) -> int:
        """Requests waiting behind the head."""
        return self._queue.queue_length + self._queue.in_use

    def service_time(self, nbytes: int, *, sequential: bool) -> float:
        """Time to move ``nbytes`` once the head is ours."""
        t = nbytes / self.bandwidth
        if not sequential:
            t += self.seek_time
        return t

    def read(self, nbytes: int, stream: object = None) -> Generator[Event, None, None]:
        """Process body: read ``nbytes``.

        ``stream`` identifies a sequential stream; consecutive requests with
        the same stream key skip the seek (large block reads are issued in
        chunks by the same task).
        """
        yield from self._io(nbytes, stream, write=False)

    def write(self, nbytes: int, stream: object = None) -> Generator[Event, None, None]:
        """Process body: write ``nbytes`` (same cost model as read)."""
        yield from self._io(nbytes, stream, write=True)

    def _io(self, nbytes: int, stream: object, *, write: bool) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise SimulationError("negative I/O size")
        req = self._queue.request()
        yield req
        try:
            sequential = stream is not None and stream == self._last_stream_key
            self._last_stream_key = stream
            t = self.service_time(nbytes, sequential=sequential)
            self.busy_time += t
            if write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
            yield self.sim.timeout(t)
        finally:
            self._queue.release(req)
