"""Lightweight metrics for simulation experiments and the live cluster.

Experiments read these to produce the figure series: cache hit ratios,
bytes moved, tasks per slot, per-phase times.  The cluster plane writes
the same registry from many threads while the observability endpoint
(:mod:`repro.observe`) reads it, so every primitive here is safe to
*read at any time* and safe to *write concurrently*:

* :class:`Counter` increments are a single attribute update (atomic
  enough under the GIL for monotonic accumulation);
* :class:`Gauge` updates take a per-gauge lock so ``add`` and the
  set-then-extremes sequence are never a lost-update race;
* :class:`Histogram` holds a *bounded* reservoir -- a long-running
  coordinator records millions of RPC latencies without growing memory,
  while ``count``/``total``/``min``/``max`` stay exact forever;
* :class:`MetricsRegistry` read paths (``peak``, ``ratio``,
  ``snapshot``, ``export``) never materialize entries, so a scrape
  observes the registry without changing it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Counter", "Gauge", "TimeSeries", "Histogram", "MetricsRegistry",
           "ServiceTimeTracker"]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that moves both ways, with its historical extremes.

    A gauge that was never set reports ``0.0`` extremes (not ``±inf``),
    so report tables stay readable for metrics that never fired.

    Updates are serialized by a per-gauge lock: ``add`` is a
    read-modify-write and ``set`` must update the value and both
    extremes together, so concurrent writers (the scheduler thread, RPC
    reader threads, the heartbeat sweep) would otherwise lose deltas or
    record a ``max_seen`` no single writer ever set.  Reads are plain
    attribute loads -- lock-free on purpose, since a torn read cannot
    occur for a single reference under CPython.
    """

    def __init__(self, value: float = 0.0) -> None:
        self.value = value
        self._max: float | None = None
        self._min: float | None = None
        self._lock = threading.Lock()

    @property
    def max_seen(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def min_seen(self) -> float:
        return 0.0 if self._min is None else self._min

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self._max = value if self._max is None else max(self._max, value)
            self._min = value if self._min is None else min(self._min, value)

    def add(self, delta: float) -> None:
        with self._lock:
            value = self.value + delta
            self.value = value
            self._max = value if self._max is None else max(self._max, value)
            self._min = value if self._min is None else min(self._min, value)

    def __repr__(self) -> str:
        return f"Gauge(value={self.value!r})"


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. queue lengths over time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series samples must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted mean of a piecewise-constant series."""
        if not self.times:
            raise ValueError("empty time series")
        t, v = self.as_arrays()
        end = until if until is not None else t[-1]
        if end <= t[0]:
            return float(v[0])
        t = np.append(t, end)
        widths = np.diff(t)
        return float(np.sum(widths * v) / (end - self.times[0]))


class Histogram:
    """Unordered value samples with percentile summaries (RPC latencies).

    Unlike :class:`TimeSeries` there is no time axis -- concurrent RPC
    completions land in any order.  Recording takes a per-histogram lock
    (append plus occasional compaction must be atomic against readers).

    **Bounded memory.**  The histogram keeps at most ``max_samples``
    retained values; ``count``/``total``/``min``/``max`` (and therefore
    ``mean``) stay *exact* no matter how many values were recorded.
    Past the cap, retention degrades deterministically: the reservoir
    keeps every ``stride``-th recorded value and, whenever it fills,
    drops every other retained value and doubles the stride.  No RNG is
    involved, so two runs recording the same sequence retain the same
    reservoir -- percentiles beyond the cap are approximate (a uniform
    systematic sample of the record stream) but reproducible.  The
    default cap is high enough that every in-repo test and bench records
    fewer values than the cap and sees exact percentiles.
    """

    DEFAULT_MAX_SAMPLES = 65536

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = int(max_samples)
        self._samples: list[float] = []
        self._stride = 1
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            position = self._count
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if position % self._stride:
                return
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                # Keep positions 0, 2*stride, 4*stride, ... -- exactly the
                # multiples of the doubled stride -- so the invariant
                # "retained = every stride-th recorded value" survives.
                del self._samples[1::2]
                self._stride *= 2

    @property
    def count(self) -> int:
        """Exact number of recorded values (not the retained subset size)."""
        return self._count

    @property
    def samples(self) -> list[float]:
        """The retained reservoir (a copy; at most ``max_samples`` long)."""
        with self._lock:
            return list(self._samples)

    @property
    def retained(self) -> int:
        """How many values the reservoir currently holds (<= ``max_samples``)."""
        return len(self._samples)

    def mean(self) -> float:
        """Exact mean of everything recorded (total/count, not reservoir)."""
        return self._total / self._count if self._count else 0.0

    def total(self) -> float:
        """Exact sum of every recorded sample (e.g. bytes across
        re-replication batches -- must equal the matching byte counter)."""
        return self._total

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of everything recorded; 0 when empty.

        ``q=0`` and ``q=100`` are exact (tracked min/max); interior
        percentiles are exact below the reservoir cap and a deterministic
        approximation past it.
        """
        with self._lock:
            if not self._count:
                return 0.0
            if q <= 0:
                return float(self._min)  # type: ignore[arg-type]
            if q >= 100:
                return float(self._max)  # type: ignore[arg-type]
            retained = list(self._samples)
        if not retained:  # unreachable in practice (count > 0 retains >= 1)
            return 0.0
        return float(np.percentile(np.asarray(retained, dtype=float), q))

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.percentile(100.0),
        }


class ServiceTimeTracker:
    """EWMA plus running percentiles over one phase's task service times.

    The straggler detector needs two views of "how long do this job's
    map attempts take": a smoothed recent average (the EWMA, for health
    scoring) and a robust population mid-point (the p50, which a single
    straggler cannot drag the way it drags a mean).  Both ride one
    bounded :class:`Histogram` reservoir, so a job with millions of
    tasks tracks service times in constant memory.

    Only settled (successfully completed) attempts are observed -- a
    straggler that never finishes must not raise the bar that would have
    flagged it.
    """

    def __init__(self, alpha: float = 0.2,
                 max_samples: int = Histogram.DEFAULT_MAX_SAMPLES) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._hist = Histogram(max_samples=max_samples)
        self._ewma: float | None = None

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"service time must be non-negative, got {seconds}")
        self._hist.record(seconds)
        if self._ewma is None:
            self._ewma = seconds
        else:
            self._ewma += self.alpha * (seconds - self._ewma)

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def ewma(self) -> float:
        return 0.0 if self._ewma is None else self._ewma

    def percentile(self, q: float) -> float:
        return self._hist.percentile(q)

    @property
    def p50(self) -> float:
        return self._hist.percentile(50.0)


class MetricsRegistry:
    """Name-addressed counters/gauges/series shared by a simulation run.

    The cluster data plane exports two load-bearing gauges here:
    ``rpc.in_flight`` (per-connection window occupancy; its peak must
    never exceed ``net.max_in_flight``) and ``rpc.stream_pages`` (pages
    buffered toward streamed responses under reassembly).  ``peak(name)``
    reads a gauge's historical maximum -- the number the backpressure
    and bounded-memory assertions check.

    Writer accessors (:meth:`counter`, :meth:`gauge`, ...) get-or-create
    under a registry lock, so two threads first-touching the same name
    always share one object.  Read paths (:meth:`peak`, :meth:`ratio`,
    :meth:`snapshot`, :meth:`export`) are strictly non-creating: a
    scrape or report never changes the registry's key set, and iterating
    over a point-in-time copy of the key lists keeps a snapshot safe
    while writers register new metrics concurrently.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.series: dict[str, TimeSeries] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge())
        return g

    def peak(self, name: str) -> float:
        """Highest value the named gauge ever held (0.0 if never set)."""
        g = self.gauges.get(name)
        return 0.0 if g is None else g.max_seen

    def timeseries(self, name: str) -> TimeSeries:
        ts = self.series.get(name)
        if ts is None:
            with self._lock:
                ts = self.series.setdefault(name, TimeSeries())
        return ts

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram())
        return h

    def ratio(self, hits: str, total: str) -> float:
        """``counters[hits] / counters[total]`` (0 when the denominator is 0,
        without creating either entry)."""
        denom_c = self.counters.get(total)
        denom = denom_c.value if denom_c is not None else 0.0
        if not denom:
            return 0.0
        hits_c = self.counters.get(hits)
        return (hits_c.value if hits_c is not None else 0.0) / denom

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all counter/gauge values and histogram summaries.

        Purely observational: reading it never creates entries, and
        histograms export their full ``summary()`` (count/mean/p50/p90/
        p99/max), not just a median.
        """
        out: dict[str, float] = {}
        for name, c in list(self.counters.items()):
            out[name] = c.value
        for name, g in list(self.gauges.items()):
            out[f"{name} (gauge)"] = g.value
        for name, h in list(self.histograms.items()):
            for stat, value in h.summary().items():
                out[f"{name} ({stat})"] = value
        return out

    def export(self) -> dict[str, dict]:
        """Structured, non-creating snapshot for the observability plane.

        ``{"counters": {name: value}, "gauges": {name: {value,max,min}},
        "histograms": {name: summary}}`` -- everything JSON-encodable, no
        live objects leak out.
        """
        return {
            "counters": {name: c.value for name, c in list(self.counters.items())},
            "gauges": {
                name: {"value": g.value, "max": g.max_seen, "min": g.min_seen}
                for name, g in list(self.gauges.items())
            },
            "histograms": {
                name: h.summary() for name, h in list(self.histograms.items())
            },
        }

    @staticmethod
    def stddev(samples: Iterable[float]) -> float:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return 0.0
        return float(arr.std())
