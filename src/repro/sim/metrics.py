"""Lightweight metrics for simulation experiments.

Experiments read these to produce the figure series: cache hit ratios,
bytes moved, tasks per slot, per-phase times.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["Counter", "Gauge", "TimeSeries", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that moves both ways, with its historical extremes.

    A gauge that was never set reports ``0.0`` extremes (not ``±inf``),
    so report tables stay readable for metrics that never fired.
    """

    def __init__(self, value: float = 0.0) -> None:
        self.value = value
        self._max: float | None = None
        self._min: float | None = None

    @property
    def max_seen(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def min_seen(self) -> float:
        return 0.0 if self._min is None else self._min

    def set(self, value: float) -> None:
        self.value = value
        self._max = value if self._max is None else max(self._max, value)
        self._min = value if self._min is None else min(self._min, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return f"Gauge(value={self.value!r})"


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. queue lengths over time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series samples must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted mean of a piecewise-constant series."""
        if not self.times:
            raise ValueError("empty time series")
        t, v = self.as_arrays()
        end = until if until is not None else t[-1]
        if end <= t[0]:
            return float(v[0])
        t = np.append(t, end)
        widths = np.diff(t)
        return float(np.sum(widths * v) / (end - self.times[0]))


class Histogram:
    """Unordered value samples with percentile summaries (RPC latencies).

    Unlike :class:`TimeSeries` there is no time axis -- concurrent RPC
    completions land in any order -- so recording is thread-safe-enough
    for CPython (a single ``list.append``) and summaries are computed on
    demand with NumPy.
    """

    def __init__(self) -> None:
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    def total(self) -> float:
        """Sum of every recorded sample (e.g. bytes across re-replication
        batches -- must equal the matching byte counter)."""
        return float(np.sum(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of everything recorded; 0 when empty."""
        if not self.samples:
            return 0.0
        return float(np.percentile(np.asarray(self.samples, dtype=float), q))

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.percentile(100.0),
        }


class MetricsRegistry:
    """Name-addressed counters/gauges/series shared by a simulation run.

    The cluster data plane exports two load-bearing gauges here:
    ``rpc.in_flight`` (per-connection window occupancy; its peak must
    never exceed ``net.max_in_flight``) and ``rpc.stream_pages`` (pages
    buffered toward streamed responses under reassembly).  ``peak(name)``
    reads a gauge's historical maximum -- the number the backpressure
    and bounded-memory assertions check.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = defaultdict(Counter)
        self.gauges: dict[str, Gauge] = defaultdict(Gauge)
        self.series: dict[str, TimeSeries] = defaultdict(TimeSeries)
        self.histograms: dict[str, Histogram] = defaultdict(Histogram)

    def counter(self, name: str) -> Counter:
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        return self.gauges[name]

    def peak(self, name: str) -> float:
        """Highest value the named gauge ever held (0.0 if never set)."""
        return self.gauges[name].max_seen

    def timeseries(self, name: str) -> TimeSeries:
        return self.series[name]

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def ratio(self, hits: str, total: str) -> float:
        """``counters[hits] / counters[total]`` (0 when the denominator is 0)."""
        denom = self.counters[total].value
        return self.counters[hits].value / denom if denom else 0.0

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all counter and gauge values (for reports)."""
        out: dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, g in self.gauges.items():
            out[f"{name} (gauge)"] = g.value
        for name, h in self.histograms.items():
            out[f"{name} (p50)"] = h.percentile(50.0)
        return out

    @staticmethod
    def stddev(samples: Iterable[float]) -> float:
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return 0.0
        return float(arr.std())
