"""Waitable resources built on the simulation kernel.

* :class:`Resource` -- ``capacity`` identical slots, FIFO grant order.
  Models map/reduce slots and disk queues.
* :class:`PriorityResource` -- like :class:`Resource` but grants lower
  priority values first (FIFO within a priority).
* :class:`Store` -- an unbounded FIFO queue of items; ``get`` blocks until
  an item is available.  Models mailboxes and task queues.
* :class:`Container` -- a continuous quantity with blocking ``get``.
  Models memory budgets.

Usage inside a process::

    req = resource.request()
    yield req
    try:
        yield sim.timeout(service_time)
    finally:
        resource.release(req)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque

from repro.common.errors import SimulationError
from repro.sim.engine import Event, Simulation

__all__ = ["Resource", "PriorityResource", "Store", "Container"]


class _Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """``capacity`` slots granted in FIFO order."""

    def __init__(self, sim: Simulation, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._granted: set[_Request] = set()
        self._waiting: Deque[_Request] = deque()

    @property
    def in_use(self) -> int:
        """Currently granted slots."""
        return len(self._granted)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _Request:
        """Claim a slot; the returned event fires when granted."""
        req = _Request(self)
        if len(self._granted) < self.capacity:
            self._granted.add(req)
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: _Request) -> None:
        """Return a granted slot; wakes the next waiter."""
        if req.resource is not self:
            raise SimulationError("release() of a request from another resource")
        try:
            self._granted.remove(req)
        except KeyError:
            raise SimulationError("release() of a request that was never granted") from None
        self._grant_next()

    def cancel(self, req: _Request) -> None:
        """Withdraw a request.

        Safe to call whether the request is still queued, already granted
        (it is released), or already cancelled (no-op).  Call this from an
        ``Interrupt`` handler so abandoned requests do not leak slots.
        """
        if req in self._granted:
            self.release(req)
            return
        try:
            self._waiting.remove(req)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._granted) < self.capacity:
            nxt = self._waiting.popleft()
            self._granted.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """Slots granted to the lowest ``priority`` value first."""

    def __init__(self, sim: Simulation, capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._pq: list[tuple[float, int, _Request]] = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return len(self._pq)

    def request(self, priority: float = 0.0) -> _Request:  # type: ignore[override]
        req = _Request(self)
        if len(self._granted) < self.capacity and not self._pq:
            self._granted.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._pq, (priority, self._seq, req))
            self._seq += 1
        return req

    def cancel(self, req: _Request) -> None:
        if req in self._granted:
            self.release(req)
            return
        for i, (_, _, queued) in enumerate(self._pq):
            if queued is req:
                self._pq.pop(i)
                heapq.heapify(self._pq)
                return

    def _grant_next(self) -> None:
        while self._pq and len(self._granted) < self.capacity:
            _, _, nxt = heapq.heappop(self._pq)
            self._granted.add(nxt)
            nxt.succeed(nxt)


class Store:
    """Unbounded FIFO item queue with blocking ``get``."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class Container:
    """A continuous quantity (bytes of memory, tokens) with blocking get."""

    def __init__(self, sim: Simulation, capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: Deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount`` (clamped at capacity) and serve waiting getters."""
        if amount < 0:
            raise SimulationError("put() amount must be non-negative")
        self._level = min(self.capacity, self._level + amount)
        self._serve()

    def get(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been withdrawn (FIFO)."""
        if amount < 0:
            raise SimulationError("get() amount must be non-negative")
        if amount > self.capacity:
            raise SimulationError("get() amount exceeds container capacity")
        ev = Event(self.sim)
        self._getters.append((amount, ev))
        self._serve()
        return ev

    def _serve(self) -> None:
        while self._getters and self._getters[0][0] <= self._level:
            amount, ev = self._getters.popleft()
            self._level -= amount
            ev.succeed(amount)
