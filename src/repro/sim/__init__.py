"""Discrete-event simulation substrate.

The paper's evaluation ran on a 40-node cluster; this package replaces that
testbed with a from-scratch discrete-event kernel plus calibrated hardware
models:

* :mod:`repro.sim.engine` -- event heap, generator-based processes,
  timeouts, condition events and interrupts (a compact SimPy-style kernel).
* :mod:`repro.sim.resources` -- FIFO/priority resources, stores and
  containers built on the kernel.
* :mod:`repro.sim.disk` -- a 7200 rpm HDD model (seek + streaming).
* :mod:`repro.sim.network` -- a two-level switched Ethernet with max-min
  fair bandwidth sharing (fluid-flow model).
* :mod:`repro.sim.pagecache` -- the OS page cache that makes the paper's
  "oCache does not help because iteration outputs sit in page cache"
  observation reproducible.
* :mod:`repro.sim.node` / :mod:`repro.sim.cluster` -- simulated servers and
  the whole platform.
* :mod:`repro.sim.metrics` -- counters and time series for experiments.
"""

from repro.sim.engine import (
    Simulation,
    Event,
    Timeout,
    Process,
    Interrupt,
    AllOf,
    AnyOf,
)
from repro.sim.resources import Resource, PriorityResource, Store, Container
from repro.sim.disk import Disk
from repro.sim.network import Network, Flow
from repro.sim.pagecache import PageCache
from repro.sim.node import SimNode
from repro.sim.cluster import SimCluster
from repro.sim.metrics import Counter, Gauge, TimeSeries, MetricsRegistry

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "Disk",
    "Network",
    "Flow",
    "PageCache",
    "SimNode",
    "SimCluster",
    "Counter",
    "Gauge",
    "TimeSeries",
    "MetricsRegistry",
]
