"""A compact discrete-event simulation kernel.

Generator-based processes yield :class:`Event` objects to suspend; the
kernel resumes them when the event fires.  The design follows the classic
SimPy architecture (event heap + callback lists) but is written from
scratch and trimmed to what the cluster models need: timeouts, process
join, ``AllOf``/``AnyOf`` conditions, and interrupts.

Example::

    sim = Simulation()

    def worker(sim, name):
        yield sim.timeout(1.0)
        return name

    def driver(sim):
        results = yield AllOf([sim.process(worker(sim, i)) for i in range(3)])
        return results

    p = sim.process(driver(sim))
    sim.run()
    assert p.value == [0, 1, 2]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
]

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries whatever the interrupter passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`); its callbacks then run at the current
    simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event already has an outcome."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the outcome is a success value (valid once triggered)."""
        if self._ok is None:
            raise SimulationError("event outcome read before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully; callbacks run at the current sim time."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger with an exception that will be raised in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._ok = ok
        self._value = value
        self.sim._schedule(self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if it has)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running generator; as an event it fires when the generator returns."""

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulation",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        boot = Event(sim)
        boot._ok = True
        boot._value = None
        sim._schedule(boot)
        boot.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        wake = Event(self.sim)
        wake._ok = False
        wake._value = Interrupt(cause)
        # Detach from whatever the process was waiting on: the old target
        # must no longer resume it.
        self.sim._schedule(wake)
        wake.add_callback(self._resume_interrupt)

    def _resume_interrupt(self, wake: Event) -> None:
        if self.triggered:
            return
        self._target = None
        self._step(wake.value, throw=True)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if self._target is not None and event is not self._target:
            return  # stale wakeup from an event we stopped waiting on
        self._target = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        sim = self.sim
        sim._active_process = self
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        finally:
            sim._active_process = None
        if not isinstance(target, Event) or target.sim is not sim:
            self.generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}, which is not an "
                    "event of this simulation"
                )
            )
            return
        self._target = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf; subclasses define the completion predicate."""

    __slots__ = ("events", "_done")

    def __init__(self, events: Iterable[Event]) -> None:
        events = list(events)
        if not events:
            raise SimulationError("condition needs at least one event")
        sim = events[0].sim
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulations")
        super().__init__(sim)
        self.events = events
        self._done = 0
        for ev in events:
            ev.add_callback(self._on_event)

    def _on_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._done += 1
        self._check()

    def _check(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child fired; value is the list of child values."""

    __slots__ = ()

    def _check(self) -> None:
        if self._done == len(self.events):
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ()

    def _check(self) -> None:
        for i, ev in enumerate(self.events):
            if ev.triggered:
                self.succeed((i, ev.value))
                return


class Simulation:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a process from a generator; returns its join event."""
        return Process(self, generator, name)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks or ():
            fn(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` -- drain every event.
        * ``until=<float>`` -- advance to that time.
        * ``until=<Event>`` -- run until it triggers; returns (or raises) its
          outcome.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran dry before the awaited event triggered "
                        "(deadlock: a process is waiting on an event nobody fires)"
                    )
                self.step()
            if stop.ok:
                return stop.value
            raise stop.value
        if until is None:
            while self._heap:
                self.step()
            return None
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")
