"""The whole simulated platform: nodes + fabric + metrics."""

from __future__ import annotations

from typing import Generator

from repro.common.config import ClusterConfig
from repro.sim.engine import Event, Simulation
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.sim.node import SimNode

__all__ = ["SimCluster"]


class SimCluster:
    """A configured cluster inside one simulation."""

    def __init__(self, sim: Simulation, config: ClusterConfig | None = None) -> None:
        self.sim = sim
        self.config = config or ClusterConfig()
        cfg = self.config
        self.nodes = [
            SimNode(
                sim,
                i,
                map_slots=cfg.map_slots_per_node,
                reduce_slots=cfg.reduce_slots_per_node,
                disk_bandwidth=cfg.disk_bandwidth,
                disk_seek_time=cfg.disk_seek_time,
                page_cache_bytes=cfg.page_cache_per_node,
            )
            for i in range(cfg.num_nodes)
        ]
        self.network = Network(
            sim,
            num_nodes=cfg.num_nodes,
            rack_size=cfg.rack_size,
            node_bandwidth=cfg.network_bandwidth,
            uplink_bandwidth=cfg.uplink_bandwidth,
            latency=cfg.network_latency,
        )
        self.metrics = MetricsRegistry()

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> SimNode:
        return self.nodes[index]

    def drop_all_caches(self) -> None:
        """Clear every node's page cache (paper: before each job submission)."""
        for node in self.nodes:
            node.drop_caches()

    def remote_read(
        self, reader: int, owner: int, key: object, nbytes: int
    ) -> Generator[Event, None, bool]:
        """Process body: read ``key`` stored on ``owner`` from node ``reader``.

        Disk (or page-cache) access happens on the owner, then the bytes
        cross the fabric if the nodes differ.  Returns True when the owner
        served the bytes from its page cache.
        """
        cached = yield from self.nodes[owner].read_extent(key, nbytes)
        if reader != owner:
            yield self.network.transfer(owner, reader, nbytes)
        return cached
