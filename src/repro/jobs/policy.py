"""Inter-job sharing policies for the multi-job scheduler.

The task-level schedulers in :mod:`repro.scheduler` decide *where* a
task runs (LAF hashes it onto the ring); the policies here decide *whose*
ready task is dispatched next when several jobs share the cluster:

* :class:`FifoPolicy` -- strict submission order (a job monopolizes the
  dispatch slots until its ready queue drains);
* :class:`FairSharePolicy` -- pick the job with the fewest outstanding
  dispatched tasks per unit weight, so N equal jobs each hold ~1/N of
  the in-flight slots (the paper's fair-sharing baseline applied between
  jobs instead of between users);
* :class:`DelayPolicy` -- the paper's delay-scheduling baseline (§II-F)
  lifted to the inter-job level: a map task waits for its LAF-preferred
  worker while that worker is saturated, and only after
  ``scheduler.delay_wait`` seconds gives up and runs least-loaded.

Policies are deliberately tiny and stateless between calls: they see a
snapshot of the active jobs each time a dispatch slot frees up and
return one task (or ``None`` to leave the slot idle this tick).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import ConfigError

__all__ = ["DispatchContext", "InterJobPolicy", "FifoPolicy",
           "FairSharePolicy", "DelayPolicy", "make_policy"]


class DispatchContext:
    """What a policy may ask about the cluster at decision time."""

    def __init__(self, now: Callable[[], float],
                 inflight_on: Callable[[str], int],
                 delay_wait: float, worker_slots: int) -> None:
        self.now = now
        #: In-flight dispatched tasks currently targeting one worker.
        self.inflight_on = inflight_on
        #: Seconds a delay-scheduled task waits for its preferred worker.
        self.delay_wait = delay_wait
        #: In-flight tasks a worker absorbs before delay tasks start waiting.
        self.worker_slots = worker_slots


class InterJobPolicy(abc.ABC):
    """The policy seam: pick the next ``(job, task)`` unit to dispatch.

    ``jobs`` arrives in submission order and only contains active jobs
    with at least one ready task.  Each job exposes ``ready`` (ordered
    task list), ``outstanding`` (dispatched-unfinished count), ``weight``
    and ``submit_index``; tasks expose ``kind``, ``wid``, ``ready_since``
    and ``wait_limit`` -- enough for every policy here and for user
    subclasses.
    """

    name = "policy"

    def next_task(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        """Default shape: pick a job, dispatch its first ready task."""
        job = self.pick_job(jobs, ctx)
        if job is None:
            return None
        return job.ready[0]

    @abc.abstractmethod
    def pick_job(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        """Choose which job's head-of-queue task runs next."""


class FifoPolicy(InterJobPolicy):
    """Strict submission order: earliest job with ready work wins."""

    name = "fifo"

    def pick_job(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        return jobs[0] if jobs else None


class FairSharePolicy(InterJobPolicy):
    """Fewest outstanding dispatched tasks per unit weight goes first.

    Ties break by submission order, so a lone job degenerates to FIFO
    and the single-job plane stays bit-equal.
    """

    name = "fair"

    def pick_job(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        if not jobs:
            return None
        return min(jobs, key=lambda j: (j.outstanding / max(j.weight, 1e-9),
                                        j.submit_index))


class DelayPolicy(InterJobPolicy):
    """Delay scheduling between jobs: wait (briefly) for the preferred worker.

    Jobs are scanned in submission order; a map task whose LAF-assigned
    worker has a free slot dispatches immediately.  A task whose worker
    is saturated is skipped until it has waited ``wait_limit`` (the
    assignment's own limit, else ``ctx.delay_wait``) -- after that it is
    marked for reassignment to the least-loaded worker, the paper's
    delay-scheduling fallback.  Reduce tasks never wait (their data is
    already in place).
    """

    name = "delay"

    def pick_job(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        raise NotImplementedError("DelayPolicy picks tasks, not jobs")

    def next_task(self, jobs: Sequence[Any], ctx: DispatchContext) -> Optional[Any]:
        now = ctx.now()
        for job in jobs:
            for task in job.ready:
                if task.kind != "map":
                    return task
                if ctx.inflight_on(task.wid) < ctx.worker_slots:
                    return task
                wait = task.wait_limit if task.wait_limit is not None else ctx.delay_wait
                if now - task.ready_since >= wait:
                    task.reassign = True
                    return task
        return None


_POLICIES = {
    "fifo": FifoPolicy,
    "fair": FairSharePolicy,
    "delay": DelayPolicy,
}


def make_policy(name: str) -> InterJobPolicy:
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown inter-job policy {name!r}; pick one of {sorted(_POLICIES)}"
        ) from None
