"""Multi-job scheduling over one cluster: handles, policies, admission.

The :mod:`repro.cluster` plane executes one job at a time;
:class:`~repro.jobs.scheduler.JobScheduler` multiplexes many.  The usual
client shape::

    from repro.jobs import ClusterSession

    with ClusterSession(workers=4) as session:
        session.upload("corpus.txt", data)
        handles = session.submit_many([job_a, job_b, job_c])
        results = [h.result() for h in handles]
"""

from repro.jobs.handle import JobHandle, JobState
from repro.jobs.policy import (
    DelayPolicy,
    DispatchContext,
    FairSharePolicy,
    FifoPolicy,
    InterJobPolicy,
    make_policy,
)
from repro.jobs.scheduler import ClusterSession, JobScheduler

__all__ = [
    "ClusterSession",
    "DelayPolicy",
    "DispatchContext",
    "FairSharePolicy",
    "FifoPolicy",
    "InterJobPolicy",
    "JobHandle",
    "JobScheduler",
    "JobState",
    "make_policy",
]
