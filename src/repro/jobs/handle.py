"""Client-side job handles for the multi-job cluster scheduler.

A :class:`JobHandle` is what ``JobScheduler.submit`` returns: a future
over one submitted job.  The scheduler thread resolves it exactly once
-- with a :class:`~repro.mapreduce.job.JobResult`, an exception, or a
:class:`~repro.common.errors.JobCancelled` -- and every accessor here is
safe to call from any client thread.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Any, Callable, Optional

from repro.common.errors import JobCancelled
from repro.mapreduce.job import JobResult

__all__ = ["JobState", "JobHandle"]


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> (SUCCEEDED | FAILED | CANCELLED)``; cancelled
    jobs can also go terminal straight from ``QUEUED``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


class JobHandle:
    """A future over one submitted job.

    ``result()`` blocks until the scheduler resolves the job and either
    returns its :class:`JobResult` or raises what the job died of
    (including :class:`JobCancelled`).  ``cancel()`` asks the scheduler
    to abandon the job; it returns ``True`` if the request was accepted
    while the job could still be stopped.
    """

    def __init__(self, app_id: str, job_uid: str,
                 cancel_cb: Optional[Callable[["JobHandle"], bool]] = None) -> None:
        self.app_id = app_id
        self.job_uid = job_uid
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._state = JobState.QUEUED
        self._result: Optional[JobResult] = None
        self._exception: Optional[BaseException] = None
        self._done = threading.Event()
        self._cancel_cb = cancel_cb

    # -- scheduler side (one resolver: the scheduler thread) ----------------------

    def _mark_running(self) -> None:
        self.started_at = time.monotonic()
        self._state = JobState.RUNNING

    def _resolve(self, result: Optional[JobResult] = None,
                 exception: Optional[BaseException] = None) -> None:
        if self._done.is_set():
            return
        self.finished_at = time.monotonic()
        if exception is not None:
            self._exception = exception
            self._state = (JobState.CANCELLED
                           if isinstance(exception, JobCancelled)
                           else JobState.FAILED)
        else:
            self._result = result
            self._state = JobState.SUCCEEDED
        self._done.set()

    # -- client side ---------------------------------------------------------------

    @property
    def state(self) -> JobState:
        return self._state

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job resolves; ``False`` on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> JobResult:
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_uid!r} not done after {timeout}s")
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_uid!r} not done after {timeout}s")
        return self._exception

    def cancel(self) -> bool:
        """Request cancellation; ``False`` if the job already resolved."""
        if self._done.is_set() or self._cancel_cb is None:
            return False
        return self._cancel_cb(self)

    def metrics(self) -> dict[str, Any]:
        """Client-visible timing of this submission (seconds)."""
        now = time.monotonic()
        started = self.started_at
        finished = self.finished_at
        return {
            "state": self._state.value,
            "queue_wait_s": (started - self.submitted_at) if started is not None
                            else now - self.submitted_at,
            "run_s": ((finished or now) - started) if started is not None else 0.0,
            "makespan_s": ((finished or now) - self.submitted_at),
        }

    def __repr__(self) -> str:
        return f"JobHandle({self.job_uid!r}, state={self._state.value})"
