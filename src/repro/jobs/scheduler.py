"""The multi-job cluster scheduler: many clients, one cluster.

:class:`JobScheduler` owns a :class:`~repro.cluster.runtime.ClusterRuntime`
and multiplexes any number of MapReduce jobs over its workers.  Clients
``submit(job)`` and get a :class:`~repro.jobs.handle.JobHandle` back;
internally one scheduler thread runs an event loop:

* submissions enter a bounded admission queue (``jobs.max_queued_jobs``;
  a full queue raises :class:`~repro.common.errors.JobRejected`) and are
  *activated* in submission order up to ``jobs.max_active_jobs``;
* activation draws the job's **entire** map assignment vector from the
  cluster's one shared LAF scheduler under
  :meth:`~repro.scheduler.base.Scheduler.at_zero_load` -- jobs draw in
  submission order, so the assignment sequence is deterministic no
  matter how their tasks later interleave, and a single submitted job
  sees exactly the draws the legacy blocking ``run()`` made (bit-equal
  outputs and ``tasks_per_server``);
* a ready queue of ``(job, task)`` units is drained by the pluggable
  :class:`~repro.jobs.policy.InterJobPolicy` seam (FIFO, fair share,
  delay) and dispatched through the pipelined ``call_async`` RPC layer
  under a global in-flight cap (``jobs.max_inflight_tasks``); RPC
  completion callbacks post events back to the loop, which records
  results and re-enqueues downstream work (reduce waves, replay chains);
* worker-death evidence (failed transports, RPC timeouts, missed
  heartbeats while jobs are active) pauses dispatch, drains the
  in-flight window -- late successes still count, they are salvage
  candidates -- then rides the existing surgical failover
  (``runtime._failover``) once per victim, spending one failover-budget
  unit *per affected job*; each surviving job then re-plans exactly like
  the legacy recovery (salvage / doom / re-draw);
* one job's mapper raising, or the job being cancelled, resolves only
  that job's handle -- other in-flight jobs are untouched (failure
  isolation);
* with ``spec.enabled``, map attempts running past ``spec.slow_factor``
  times the job's median map service time get a **speculative backup
  copy** on the least-loaded eligible worker (spare slots only); the
  first finisher wins, the loser limps home as a *zombie* whose late
  spill deliveries the attempt-numbered reduce-side stores reject or
  retract -- and a straggler's timeout while another attempt lives is
  *slowness* evidence for the health plane, never death evidence;
* with ``health.enabled``, the coordinator's :class:`HealthMonitor`
  quarantines gray-failing workers (slow heartbeat round trips, outrun
  attempts, RPC timeouts): quarantined workers get no new map
  dispatches but keep serving reads, pushes, and their reduce shard,
  and recover by score decay with hysteresis.

``ClusterSession`` wraps a runtime + scheduler as a context manager for
the common many-jobs-one-cluster client shape.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import (
    ClusterError,
    JobCancelled,
    JobRejected,
    NetworkError,
    RpcConnectionError,
    RpcRemoteError,
    WorkerLost,
)
from repro.cluster.messages import CompletionMarker, encode_job, reassemble_reduce
from repro.jobs.handle import JobHandle, JobState
from repro.jobs.policy import DispatchContext, InterJobPolicy, make_policy
from repro.mapreduce.job import JobResult, JobStats, MapReduceJob
from repro.sim.metrics import ServiceTimeTracker

__all__ = ["JobScheduler", "ClusterSession"]


class _MapOutcome:
    """One completed map task's final record: who ran it, what it
    returned, which attempt produced it, and (the salvage criterion)
    which workers hold its spills."""

    __slots__ = ("desc", "server", "result", "manifest", "dests", "attempt")

    def __init__(self, desc: Any, server: str, result: dict,
                 attempt: int = 0) -> None:
        self.desc = desc
        self.server = server
        self.result = result
        self.attempt = attempt
        self.manifest = tuple(tuple(e) for e in result.get("manifest") or ())
        self.dests = frozenset(dest for dest, _, _ in self.manifest)


class _MapTracker:
    """Per-job map progress: final outcome per block plus monotone counts.

    ``completed`` maps block index -> :class:`_MapOutcome` and always
    holds the *current* surviving outcome (recovery pops doomed entries,
    re-execution overwrites them).  ``maps_run`` / ``replays`` count every
    execution ever finished -- including doomed ones -- so the chaos hooks
    see a monotone sequence; ``reexecuted`` counts completed maps that
    recovery had to throw away (this becomes ``JobStats.task_retries``).
    """

    def __init__(self, blocks: Sequence[Any], initial_alive: Sequence[str]) -> None:
        self.blocks = list(blocks)
        self.initial_alive = list(initial_alive)
        self.completed: dict[int, _MapOutcome] = {}
        self.maps_run = 0
        self.replays = 0
        self.reexecuted = 0
        # block index -> next attempt number.  Every *execution* of a
        # block (first run, post-failover re-execution, speculative
        # copy) draws a fresh monotone number; spill deliveries carry
        # it, so the reduce-side stores can tell a fresh result from a
        # late duplicate of an abandoned one.
        self._attempts: dict[int, int] = {}

    def next_attempt(self, index: int) -> int:
        n = self._attempts.get(index, 0)
        self._attempts[index] = n + 1
        return n

    def record(self, desc: Any, server: str, result: dict,
               attempt: int = 0) -> None:
        self.completed[desc.index] = _MapOutcome(desc, server, result, attempt)
        if result.get("replayed"):
            self.replays += 1
        else:
            self.maps_run += 1


class _FailoverBudget:
    """How many worker deaths one job will absorb before giving up.

    One failover per spare worker at job start: a job beginning with N
    live workers survives N-1 deaths (each recovery needs at least one
    survivor to land on) and fails with :class:`ClusterError` on the
    Nth."""

    def __init__(self, app_id: str, limit: int) -> None:
        self.app_id = app_id
        self.limit = limit
        self.spent_count = 0

    def spend(self, lost: WorkerLost) -> None:
        self.spent_count += 1
        if self.spent_count > self.limit:
            raise ClusterError(
                f"job {self.app_id!r} lost {self.spent_count} workers"
                f" (budget {self.limit}); giving up"
            ) from lost


class _Task:
    """One dispatchable unit of one job: a map block or a reduce shard."""

    __slots__ = ("jr", "kind", "desc", "wid", "mode", "marker", "groups",
                 "dest_idx", "applied", "acc", "ready_since", "wait_limit",
                 "reassign", "running", "won", "winner_sids")

    def __init__(self, jr: "_JobRun", kind: str, wid: str,
                 desc: Any = None, wait_limit: Optional[float] = None) -> None:
        self.jr = jr
        self.kind = kind          # "map" | "reduce"
        self.desc = desc
        self.wid = wid            # assigned worker (maps) / reduce shard owner
        self.mode: Optional[str] = None    # None | "map" | "replay"
        self.marker = None        # the CompletionMarker a replay is driven by
        self.groups: list = []    # replay chain: [(dest, [(spill_id, nbytes)])]
        self.dest_idx = 0
        self.applied: list[str] = []
        self.acc = {"spills": 0, "bytes": 0, "hits": 0, "misses": 0}
        self.ready_since = time.monotonic()
        self.wait_limit = wait_limit
        self.reassign = False
        self.running = False
        self.won = False          # an attempt's result is recorded; the rest are zombies
        self.winner_sids: Optional[frozenset] = None  # the winner's manifest spill ids


class _Attempt:
    """One RPC attempt of one task; timeouts/retries settle it exactly once.

    ``spec`` marks a speculative backup copy: it holds its own dispatch
    slot (``slot_held``, transferred across connection retries) instead
    of the task-level one, and draws a fresh ``attempt_no`` so the
    reduce-side stores can arbitrate its deliveries against the
    original's.  ``zombie`` marks an attempt still in flight after
    another attempt of the same task won; its settlement is quiet."""

    __slots__ = ("task", "target", "method", "args", "tries", "deadline",
                 "settled", "spec", "attempt_no", "started_at", "zombie",
                 "slot_held")

    def __init__(self, task: _Task, target: str, method: str, args: dict,
                 tries: int, deadline: float, spec: bool = False,
                 attempt_no: int = 0, slot_held: bool = False) -> None:
        self.task = task
        self.target = target
        self.method = method
        self.args = args
        self.tries = tries
        self.deadline = deadline
        self.settled = False
        self.spec = spec
        self.attempt_no = attempt_no
        self.started_at = time.monotonic()
        self.zombie = False
        self.slot_held = slot_held


class _JobRun:
    """Scheduler-internal state of one submitted job."""

    def __init__(self, job: MapReduceJob, job_uid: str, submit_index: int,
                 weight: float, handle: JobHandle) -> None:
        self.job = job
        self.job_uid = job_uid
        self.submit_index = submit_index
        self.weight = weight
        self.handle = handle
        self.wire: Optional[dict] = None
        self.meta: Any = None
        self.budget: Optional[_FailoverBudget] = None
        self.tracker: Optional[_MapTracker] = None
        self.ready: list[_Task] = []
        self.outstanding = 0        # dispatched, not yet settled
        # Outstanding attempts of already-won tasks: they hold dispatch
        # slots (cleanup and membership barriers wait for them) but must
        # not gate phase advancement -- the whole point of speculation is
        # that the job moves on while the straggler limps home.
        self.zombie_outstanding = 0
        # Map service times (settled successes only) feeding the
        # speculation threshold: EWMA + percentile over this job's phase.
        self.map_times = ServiceTimeTracker()
        self.phase = "map"
        self.reduce_alive: list[str] = []
        self.reduce_results: dict[str, dict] = {}
        self.activated = False
        self.cleaned = False

    @property
    def live(self) -> bool:
        """Still producing work: activated and not yet resolved."""
        return self.activated and not self.handle.done()


class _DeferActivation(Exception):
    """Activation hit death evidence; requeue the job and fail over first."""


class JobScheduler:
    """Event-driven coordinator multiplexing many jobs over one cluster.

    Exactly one scheduler may own a runtime at a time; constructing a
    second raises :class:`~repro.common.errors.ClusterBusyError`.
    """

    def __init__(self, runtime, policy: Optional[InterJobPolicy | str] = None) -> None:
        self.rt = runtime
        self.coordinator = runtime.coordinator
        self.config = runtime.config
        self.metrics = runtime.metrics
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy or make_policy(self.config.jobs.policy)
        self._lock = threading.Lock()
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._timers: list[tuple[float, int, str, Any]] = []
        self._timer_seq = itertools.count()
        self._queued: deque[_JobRun] = deque()
        self._active: list[_JobRun] = []
        self._deaths: deque[WorkerLost] = deque()
        self._dead_noted: set[str] = set()
        self._membership: deque[tuple[str, str, Future]] = deque()
        self._inflight_total = 0
        self._wid_inflight: dict[str, int] = {}
        self._inflight: set[_Attempt] = set()  # issued, not yet settled
        self._submit_seq = itertools.count()
        self._stopping = False
        self._next_heartbeat = 0.0
        self._ctx = DispatchContext(
            now=time.monotonic,
            inflight_on=lambda wid: self._wid_inflight.get(wid, 0),
            delay_wait=self.config.scheduler.delay_wait,
            worker_slots=self.config.jobs.delay_worker_slots,
        )
        runtime._attach_job_scheduler(self)
        self._thread = threading.Thread(
            target=self._loop, name="job-scheduler", daemon=True
        )
        self._thread.start()

    # -- client API -----------------------------------------------------------------

    def submit(self, job: MapReduceJob, weight: float = 1.0) -> JobHandle:
        """Queue one job; returns immediately with its handle.

        Raises :class:`JobRejected` when admission control's bounded
        queue is full (``jobs.max_active_jobs + jobs.max_queued_jobs``
        unresolved submissions), and :class:`ClusterError` after
        shutdown.
        """
        cfg = self.config.jobs
        with self._lock:
            if self._stopping:
                raise ClusterError("job scheduler is shut down")
            backlog = len(self._queued) + sum(1 for jr in self._active if jr.live)
            if backlog >= cfg.max_active_jobs + cfg.max_queued_jobs:
                self.metrics.counter("sched.jobs_rejected").inc()
                raise JobRejected(
                    f"job {job.app_id!r} rejected: {backlog} jobs already"
                    f" queued or running (limit {cfg.max_active_jobs}"
                    f" active + {cfg.max_queued_jobs} queued)"
                )
            uid = f"{job.app_id}@{next(self._submit_seq)}"
            handle = JobHandle(job.app_id, uid, cancel_cb=self._request_cancel)
            jr = _JobRun(job, uid, len(self._queued), weight, handle)
            handle._jr = jr
            self._queued.append(jr)
            self.metrics.counter("sched.jobs_submitted").inc()
            self.metrics.gauge("sched.queue_depth").set(len(self._queued))
        self._events.put(("wake",))
        return handle

    def submit_many(self, jobs: Sequence[MapReduceJob],
                    weight: float = 1.0) -> list[JobHandle]:
        return [self.submit(job, weight=weight) for job in jobs]

    def request_join(self, worker_id: str) -> Future:
        """Queue a live join; resolves once the joiner is serving its arc.

        Membership ops run at a **quiesce barrier**: the loop waits until
        no deaths are pending, nothing is in flight, and no admitted job
        is still live (a join *splits* a hash arc, which would strand a
        running job's intermediates on two owners).  While an op is
        queued, admission is held so a steady job stream cannot starve
        it; already-active jobs run to completion first.
        """
        return self._request_membership("join", worker_id)

    def request_drain(self, worker_id: str) -> Future:
        """Queue a graceful drain; resolves once the worker has left.

        Same quiesce barrier as :meth:`request_join`; the drain pushes
        the worker's blocks and spill objects to its arc successor and
        leaves the ring without spending any job's failover budget.
        """
        return self._request_membership("drain", worker_id)

    def _request_membership(self, op: str, worker_id: str) -> Future:
        fut: Future = Future()
        with self._lock:
            if self._stopping:
                raise ClusterError("job scheduler is shut down")
            self._membership.append((op, str(worker_id), fut))
        self.metrics.counter(f"sched.membership_{op}s_requested").inc()
        self._events.put(("wake",))
        return fut

    def _request_cancel(self, handle: JobHandle) -> bool:
        jr = getattr(handle, "_jr", None)
        if jr is None or handle.done():
            return False
        self._events.put(("cancel", jr))
        return True

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the loop; unresolved handles fail with ClusterError."""
        if not self._thread.is_alive():
            return
        self._events.put(("stop",))
        self._thread.join(timeout=timeout)

    # -- the event loop --------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            try:
                event = None
                try:
                    event = self._events.get(timeout=self._next_timeout())
                except queue.Empty:
                    pass
                if event is not None:
                    self._handle_event(event)
                    while True:  # drain the burst before deciding anything
                        try:
                            self._handle_event(self._events.get_nowait())
                        except queue.Empty:
                            break
                if self._stopping:
                    self._abort_everything(ClusterError("job scheduler shut down"))
                    return
                self._fire_timers()
                self._tick_heartbeats()
                if self._deaths and self._inflight_total == 0:
                    self._process_deaths()
                if not self._deaths:
                    self._process_membership()
                if not self._deaths:
                    if not self._membership:
                        # Admission is held while membership ops wait at
                        # the barrier (anti-starvation); active jobs keep
                        # dispatching so the barrier can open.
                        self._admit()
                    self._dispatch()
                    self._check_speculation()
                self._reap_finished()
            except Exception as exc:  # keep the loop alive; fail the jobs
                self.metrics.counter("sched.loop_errors").inc()
                for jr in list(self._active):
                    if jr.live:
                        self._fail_job(jr, exc)
                with self._lock:
                    stranded = list(self._queued)
                    self._queued.clear()
                    self.metrics.gauge("sched.queue_depth").set(0)
                for jr in stranded:
                    jr.handle._resolve(exception=exc)

    def _next_timeout(self) -> Optional[float]:
        now = time.monotonic()
        candidates = []
        if self._timers:
            candidates.append(self._timers[0][0] - now)
        if self._active or self._queued or self._deaths or self._membership:
            candidates.append(self.config.jobs.tick_interval)
        if not candidates:
            return None  # fully idle: sleep until a submission wakes us
        return max(0.0, min(candidates))

    def _handle_event(self, event: tuple) -> None:
        kind = event[0]
        if kind == "done":
            _, attempt, future = event
            self._on_done(attempt, future)
        elif kind == "cancel":
            self._cancel_job(event[1])
        elif kind == "stop":
            self._stopping = True
        # "wake" carries nothing; the loop body re-evaluates state

    def _fire_timers(self) -> None:
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _, _, kind, payload = heapq.heappop(self._timers)
            if kind == "deadline":
                attempt = payload
                if not attempt.settled:
                    if self._absorb_failure(attempt):
                        continue  # another attempt carries (or carried) the task
                    # Mirror of the blocking pool's RpcTimeout: no retry,
                    # the target is treated as lost.
                    self.metrics.counter("sched.task_timeouts").inc()
                    self._settle_failure(
                        attempt, WorkerLost(attempt.target, "rpc timed out")
                    )
            elif kind == "retry":
                attempt = payload
                if not attempt.settled:
                    attempt.settled = True  # superseded by the fresh attempt
                    self._issue(attempt.task, attempt.target, attempt.method,
                                attempt.args, tries=attempt.tries + 1,
                                spec=attempt.spec, attempt_no=attempt.attempt_no,
                                slot_held=attempt.slot_held)

    def _push_timer(self, when: float, kind: str, payload: Any) -> None:
        heapq.heappush(self._timers, (when, next(self._timer_seq), kind, payload))

    def _tick_heartbeats(self) -> None:
        """Sweep for heartbeat-dead workers -- only while work exists.

        An idle cluster deliberately leaves heartbeat-dead workers
        detected-but-not-removed (``check_liveness`` semantics); the next
        activation's sweep fails them over, exactly like the legacy
        start-of-attempt path.
        """
        if not (self._active or self._queued):
            return
        now = time.monotonic()
        if now < self._next_heartbeat:
            return
        self._next_heartbeat = now + self.config.net.heartbeat_interval
        for wid in self.coordinator.check_heartbeats():
            self._note_death(WorkerLost(wid, "missed heartbeats"))

    # -- elastic membership -----------------------------------------------------------

    def _process_membership(self) -> None:
        """Run queued join/drain ops once the cluster has quiesced.

        Each op runs with the loop's full attention: nothing in flight,
        no death evidence pending, no live job.  The op itself may fail
        over concurrently-dead workers (the runtime retries around them),
        so the barrier is re-checked between ops; a failure resolves only
        that op's future and leaves the loop healthy.
        """
        while self._membership:
            if (self._inflight_total != 0 or self._deaths
                    or any(jr.live for jr in self._active)):
                return
            with self._lock:
                op, wid, fut = self._membership.popleft()
            if not fut.set_running_or_notify_cancel():
                continue
            try:
                if op == "join":
                    self.rt._do_join(wid)
                else:
                    self.rt._do_drain(wid)
            except BaseException as exc:
                fut.set_exception(exc)
            else:
                fut.set_result(wid)

    # -- admission & activation -------------------------------------------------------

    def _admit(self) -> None:
        while True:
            with self._lock:
                live = sum(1 for jr in self._active if jr.live)
                if (not self._queued or self._stopping
                        or live >= self.config.jobs.max_active_jobs):
                    return
                jr = self._queued.popleft()
                self.metrics.gauge("sched.queue_depth").set(len(self._queued))
            if not self._activate(jr):
                return

    def _activate(self, jr: _JobRun) -> bool:
        """Run the legacy ``run()`` preamble for one job; False = stop admitting."""
        job = jr.job
        try:
            meta = self.coordinator.stat(job.input_file, user=job.user)
            jr.meta = meta
            jr.wire = encode_job(job, job_uid=jr.job_uid)
            jr.budget = _FailoverBudget(
                job.app_id, max(0, len(self.coordinator.alive_ids()) - 1)
            )
            jr.tracker = _MapTracker(meta.blocks, self.coordinator.alive_ids())
            self._start_attempt(jr)
            jr.ready = self._draw_maps(jr, meta.blocks)
        except _DeferActivation:
            with self._lock:
                self._queued.appendleft(jr)
                self.metrics.gauge("sched.queue_depth").set(len(self._queued))
            return False
        except Exception as exc:
            jr.handle._mark_running()
            self._record_admission(jr)
            self._fail_job(jr, exc)
            return True
        jr.activated = True
        jr.handle._mark_running()
        self._active.append(jr)
        self._record_admission(jr)
        self.metrics.counter("sched.jobs_admitted").inc()
        self.metrics.gauge("sched.active_jobs").set(
            sum(1 for j in self._active if j.live)
        )
        self._advance(jr)  # zero-block inputs go straight to reduce
        return True

    def _record_admission(self, jr: _JobRun) -> None:
        wait = (jr.handle.started_at or time.monotonic()) - jr.handle.submitted_at
        self.metrics.histogram("sched.queue_wait_s").record(wait)
        self.metrics.gauge(f"sched.job.{jr.job_uid}.queue_wait_s").set(wait)

    def _start_attempt(self, jr: _JobRun) -> None:
        """Heartbeat sweep + clear-the-slate broadcast (legacy semantics).

        Death evidence found here defers the activation: the job goes
        back to the queue head, the failover machinery runs with nothing
        in flight, and activation retries on the survivors -- the same
        net behavior (and chaos fingerprint) as the legacy in-place
        spend-and-retry loop.
        """
        dead = self.coordinator.check_heartbeats()
        if dead:
            for wid in dead:
                self._note_death(WorkerLost(wid, "missed heartbeats"))
            raise _DeferActivation
        args: dict[str, Any] = {"app_id": jr.job.app_id}
        if any(other is not jr and other.live and other.job.app_id == jr.job.app_id
               for other in self._active):
            # A concurrent submission of the same app is in flight: only
            # clear this submission's uid, not the whole app namespace.
            args["job_uid"] = jr.job_uid
        try:
            self.rt._broadcast("discard_job", args)
        except WorkerLost as lost:
            self._note_death(lost)
            raise _DeferActivation from lost

    def _draw_maps(self, jr: _JobRun, blocks: Sequence[Any]) -> list[_Task]:
        """Draw the whole assignment vector at zero load (bit-equality)."""
        sched = self.coordinator.scheduler
        tasks = []
        with sched.at_zero_load():
            for desc in blocks:
                a = sched.assign(hash_key=desc.key)
                tasks.append(_Task(jr, "map", a.server, desc=desc,
                                   wait_limit=a.wait_limit))
        return tasks

    # -- dispatch ---------------------------------------------------------------------

    def _dispatch(self) -> None:
        cap = self.config.jobs.max_inflight_tasks
        while (not self._deaths and not self._stopping
               and self._inflight_total < cap):
            candidates = [jr for jr in self._active if jr.live and jr.ready]
            if not candidates:
                return
            task = self.policy.next_task(candidates, self._ctx)
            if task is None:
                return  # policy is waiting (delay); the tick retries
            task.jr.ready.remove(task)
            self._launch(task)

    def _launch(self, task: _Task) -> None:
        jr = task.jr
        if task.reassign:
            # Delay policy gave up waiting: run least-loaded instead.
            task.wid = self.coordinator.scheduler.reassign().server
            task.reassign = False
            self.metrics.counter("sched.delay_reassignments").inc()
        if task.kind == "map" and self.config.health.enabled:
            # Gray-failure quarantine: no *new* maps on a suspect worker
            # (it still serves block fetches, spill pushes, heartbeats,
            # and its reduce shard -- its data stays authoritative).
            # With every worker quarantined the assignment stands: a
            # degraded cluster beats a deadlocked one.
            health = self.coordinator.health
            if health.is_quarantined(task.wid):
                eligible = [w for w in self.coordinator.alive_ids()
                            if not health.is_quarantined(w)]
                if eligible:
                    task.wid = min(
                        eligible,
                        key=lambda w: (self._wid_inflight.get(w, 0), w),
                    )
                    self.metrics.counter("sched.quarantine_reroutes").inc()
        self.coordinator.scheduler.notify_start(task.wid)
        task.running = True
        jr.outstanding += 1
        self._inflight_total += 1
        self._wid_inflight[task.wid] = self._wid_inflight.get(task.wid, 0) + 1
        self.metrics.counter("sched.tasks_dispatched").inc()
        self.metrics.counter(f"sched.job.{jr.job_uid}.tasks_dispatched").inc()
        if task.kind == "reduce":
            self._issue(task, task.wid, "run_reduce", {"job": jr.wire})
            return
        if task.mode is None:
            task.mode = "map"
            if jr.job.reuse_intermediates:
                marker = self.coordinator.marker_for(
                    jr.job.app_id, jr.job.input_file, task.desc.index
                )
                if marker is not None:
                    groups = marker.by_dest()
                    if any(dest not in self.coordinator.addresses
                           for dest in groups):
                        self.metrics.counter("cluster.replay_fallbacks").inc()
                    else:
                        task.mode = "replay"
                        task.marker = marker
                        task.groups = list(groups.items())
                        task.dest_idx = 0
                        task.applied = []
                        task.acc = {"spills": 0, "bytes": 0,
                                    "hits": 0, "misses": 0}
        if task.mode == "replay":
            if task.groups:
                self._issue_replay_step(task)
            else:
                # An empty marker (every spill was combined away): nothing
                # to re-deliver, the replay succeeds vacuously.
                self._finish_replay(task)
        else:
            self._issue_map(task)

    def _issue_map(self, task: _Task) -> None:
        jr = task.jr
        holders = [
            (a.worker_id, a.host, a.port)
            for a in self.coordinator.block_holders(
                jr.wire["input_file"], task.desc.index
            )
        ]
        # Every map execution is a numbered attempt; spill deliveries
        # carry it so the reduce-side stores reject late duplicates from
        # executions the scheduler already moved past.
        n = jr.tracker.next_attempt(task.desc.index)
        self._issue(task, task.wid, "run_map",
                    {"job": jr.wire, "name": jr.wire["input_file"],
                     "index": task.desc.index, "holders": holders,
                     "attempt": n},
                    attempt_no=n)

    def _issue_replay_step(self, task: _Task) -> None:
        jr = task.jr
        dest, entries = task.groups[task.dest_idx]
        self._issue(task, dest, "replay_intermediates",
                    {"app_id": jr.job.app_id, "spills": entries,
                     "ttl": jr.job.intermediate_ttl, "job_uid": jr.job_uid})

    def _issue(self, task: _Task, target: str, method: str, args: dict,
               tries: int = 1, spec: bool = False, attempt_no: int = 0,
               slot_held: bool = False) -> None:
        deadline = time.monotonic() + self.config.net.call_timeout
        attempt = _Attempt(task, target, method, args, tries, deadline,
                           spec=spec, attempt_no=attempt_no,
                           slot_held=slot_held)
        try:
            addr = self.coordinator.address_of(target).addr
            fut = self.coordinator.pool.call_async(addr, method, args)
        except (WorkerLost, NetworkError, OSError) as exc:
            self._transport_failure(attempt, exc)
            return
        self._inflight.add(attempt)
        self._push_timer(deadline, "deadline", attempt)
        fut.add_done_callback(
            lambda f, a=attempt: self._events.put(("done", a, f))
        )

    # -- speculative execution ----------------------------------------------------------

    def _check_speculation(self) -> None:
        """Launch backup copies of straggling maps (spec.* knobs).

        A map attempt that has run longer than ``slow_factor`` times the
        job's median map service time (at least ``min_runtime_s``, and
        only once ``min_samples`` maps have finished) gets a duplicate
        attempt on the least-loaded eligible worker -- if a dispatch
        slot is spare; speculation never displaces primary work.  First
        finisher wins; the loser becomes a zombie whose late deliveries
        the attempt-numbered stores arbitrate.
        """
        spec = self.config.spec
        if not spec.enabled or not self._inflight:
            return
        cap = self.config.jobs.max_inflight_tasks
        if self._inflight_total >= cap:
            return
        now = time.monotonic()
        oldest: dict[_Task, _Attempt] = {}
        copies: dict[_Task, int] = {}
        for a in self._inflight:
            if a.settled or a.method != "run_map":
                continue
            copies[a.task] = copies.get(a.task, 0) + 1
            prior = oldest.get(a.task)
            if prior is None or a.started_at < prior.started_at:
                oldest[a.task] = a
        for task, attempt in oldest.items():
            if self._inflight_total >= cap or self._deaths:
                return
            jr = task.jr
            if not jr.live or task.won or task.mode != "map":
                continue
            if copies[task] >= spec.max_copies:
                continue
            if jr.map_times.count < spec.min_samples:
                continue
            threshold = max(spec.slow_factor * jr.map_times.p50,
                            spec.min_runtime_s)
            if now - attempt.started_at <= threshold:
                continue
            running_on = {a.target for a in self._inflight
                          if a.task is task and not a.settled}
            wid = self._pick_backup_worker(running_on)
            if wid is None:
                continue
            self.coordinator.health.observe_slow_task(attempt.target)
            self._launch_speculative(task, wid)

    def _pick_backup_worker(self, exclude: set) -> Optional[str]:
        """Least-loaded live worker not already running this task;
        quarantined workers are skipped while any clean one exists."""
        health = self.coordinator.health
        alive = [w for w in self.coordinator.alive_ids() if w not in exclude]
        eligible = [w for w in alive if not health.is_quarantined(w)]
        if not eligible:
            eligible = alive
        if not eligible:
            return None
        return min(eligible, key=lambda w: (self._wid_inflight.get(w, 0), w))

    def _launch_speculative(self, task: _Task, wid: str) -> None:
        """Dispatch a backup copy; it holds its own per-attempt slot."""
        jr = task.jr
        n = jr.tracker.next_attempt(task.desc.index)
        self.coordinator.scheduler.notify_start(wid)
        jr.outstanding += 1
        self._inflight_total += 1
        self._wid_inflight[wid] = self._wid_inflight.get(wid, 0) + 1
        self.metrics.counter("sched.tasks_speculated").inc()
        self.metrics.counter(f"sched.job.{jr.job_uid}.tasks_speculated").inc()
        holders = [
            (a.worker_id, a.host, a.port)
            for a in self.coordinator.block_holders(
                jr.wire["input_file"], task.desc.index
            )
        ]
        self._issue(task, wid, "run_map",
                    {"job": jr.wire, "name": jr.wire["input_file"],
                     "index": task.desc.index, "holders": holders,
                     "attempt": n},
                    spec=True, attempt_no=n, slot_held=True)

    # -- completion plumbing ------------------------------------------------------------

    def _on_done(self, attempt: _Attempt, future) -> None:
        if attempt.settled:
            # Superseded by a timeout or a retry.  The worker may still
            # have run the map and delivered spills after the job's
            # cleanup broadcast swept the stores -- an empty store
            # accepts any attempt number -- so a successful late result
            # is retracted rather than merely ignored.
            if future.exception() is None:
                value = future.result()
                jr = attempt.task.jr
                if (attempt.method == "run_map" and jr.cleaned
                        and isinstance(value, dict)):
                    self._retract_late_spills(jr, attempt, value)
            return
        exc = future.exception()
        if exc is None:
            self._settle_success(attempt, future.result())
            return
        if isinstance(exc, RpcRemoteError):
            if self._absorb_failure(attempt):
                return  # another attempt carries (or carried) the task
            if exc.etype == "SpillDeliveryLost" and exc.data:
                # The mapper is fine; its reduce-side *target* is gone.
                self._settle_failure(
                    attempt, WorkerLost(exc.data["target"], "spill push failed")
                )
            else:
                self._settle_failure(attempt, ClusterError(
                    f"worker {attempt.target!r} failed {attempt.method}: {exc}"
                ))
            return
        if isinstance(exc, NetworkError):
            self._transport_failure(attempt, exc)
            return
        self._settle_failure(attempt, exc)

    def _transport_failure(self, attempt: _Attempt, exc: Exception) -> None:
        """Mirror of the blocking pool's retry policy, asynchronously.

        Connection-level failures redial with exponential backoff up to
        ``net.retry_attempts`` total tries; anything else (timeouts,
        framing) immediately becomes :class:`WorkerLost` evidence.
        """
        if self._absorb_failure(attempt):
            return  # another attempt carries (or carried) the task
        net = self.config.net
        if (isinstance(exc, RpcConnectionError)
                and attempt.tries < net.retry_attempts):
            attempt.settled = True  # the retry timer owns it now
            self._inflight.discard(attempt)
            retry = _Attempt(attempt.task, attempt.target, attempt.method,
                             attempt.args, attempt.tries, attempt.deadline,
                             spec=attempt.spec, attempt_no=attempt.attempt_no,
                             slot_held=attempt.slot_held)
            attempt.slot_held = False  # the slot travels with the retry
            delay = min(net.retry_base_delay * (2 ** (attempt.tries - 1)),
                        net.retry_max_delay)
            self.metrics.counter("rpc.retries").inc()
            self._push_timer(time.monotonic() + delay, "retry", retry)
            return
        self._settle_failure(attempt, WorkerLost(attempt.target, str(exc)))

    def _release(self, task: _Task) -> None:
        """Return the task's dispatch slot and scheduler load."""
        if not task.running:
            return
        task.running = False
        self.coordinator.scheduler.notify_finish(task.wid)
        task.jr.outstanding -= 1
        self._inflight_total -= 1
        self._wid_inflight[task.wid] = max(0, self._wid_inflight.get(task.wid, 1) - 1)

    def _release_any(self, attempt: _Attempt) -> None:
        """Return whichever slot the attempt holds: a speculative copy's
        own per-attempt slot, or the primary's task-level one."""
        if attempt.spec:
            if not attempt.slot_held:
                return
            attempt.slot_held = False
            self.coordinator.scheduler.notify_finish(attempt.target)
            attempt.task.jr.outstanding -= 1
            self._inflight_total -= 1
            self._wid_inflight[attempt.target] = max(
                0, self._wid_inflight.get(attempt.target, 1) - 1
            )
        else:
            self._release(attempt.task)

    def _other_live(self, task: _Task, attempt: _Attempt) -> bool:
        return any(a.task is task and a is not attempt and not a.settled
                   for a in self._inflight)

    def _absorb_failure(self, attempt: _Attempt) -> bool:
        """Quietly settle a failed attempt whose task no longer depends
        on it -- another attempt already won, or is still running.

        This is the gray-failure stance: a straggling attempt's timeout
        is *slowness* evidence (fed to the health plane), not death
        evidence -- the worker is never failed over for losing a race.
        Only ever true with speculation enabled; a lone attempt always
        escalates exactly as before."""
        task = attempt.task
        if task.kind != "map" or not self.config.spec.enabled:
            return False
        if not (task.won or attempt.zombie or self._other_live(task, attempt)):
            return False
        self.metrics.counter("sched.attempt_failures_absorbed").inc()
        self.coordinator.health.observe_timeout(attempt.target)
        self._settle_quiet(attempt)
        return True

    def _settle_quiet(self, attempt: _Attempt) -> None:
        """Settle without recording, escalating, or failing anything."""
        attempt.settled = True
        self._inflight.discard(attempt)
        jr = attempt.task.jr
        if attempt.zombie:
            jr.zombie_outstanding -= 1
            attempt.zombie = False
        self._release_any(attempt)
        if jr.live:
            self._advance(jr)
        else:
            self._maybe_cleanup(jr)

    def _mark_won(self, task: _Task, winner: _Attempt, manifest) -> None:
        """First finisher wins; every other live attempt becomes a zombie."""
        task.won = True
        task.winner_sids = frozenset(sid for _, sid, _ in manifest)
        jr = task.jr
        if winner.spec:
            self.metrics.counter("sched.speculation_wins").inc()
        for a in self._inflight:
            if a.task is task and a is not winner and not a.settled:
                a.zombie = True
                jr.zombie_outstanding += 1
                if a.spec:
                    self.metrics.counter("sched.speculation_losses").inc()
                self.coordinator.health.observe_slow_task(a.target)

    def _finish_zombie(self, attempt: _Attempt, value: dict) -> None:
        """A losing attempt completed after the task was already won.

        Its slot returns, and any spill it delivered that the winner's
        manifest does *not* cover is retracted at exactly its attempt
        number -- deterministic re-execution makes the manifests
        identical in the common case (the loser's deliveries merely
        overwrote the winner's with identical content), so the diff is
        usually empty and a winner's data can never be retracted."""
        task = attempt.task
        jr = task.jr
        if attempt.zombie:
            jr.zombie_outstanding -= 1
            attempt.zombie = False
        self._release_any(attempt)
        self.metrics.counter("sched.zombie_results").inc()
        winner_sids = task.winner_sids or frozenset()
        by_dest: dict[str, list[str]] = {}
        for dest, sid, _ in value.get("manifest") or ():
            if sid not in winner_sids:
                by_dest.setdefault(dest, []).append(sid)
        alive = set(self.coordinator.alive_ids())
        for dest, sids in by_dest.items():
            if dest not in alive:
                continue
            try:
                self.rt._call_worker(dest, "discard_spills", {
                    "app_id": jr.job.app_id, "spill_ids": sids,
                    "job_uid": jr.job_uid, "attempt": attempt.attempt_no,
                })
            except (WorkerLost, ClusterError):
                self.metrics.counter("sched.zombie_discard_failures").inc()
        self._maybe_cleanup(jr)

    def _retract_late_spills(self, jr: _JobRun, attempt: _Attempt,
                             value: dict) -> None:
        """Un-deliver a map result that landed after the job's cleanup.

        The end-of-job ``discard_job`` broadcast is eager (the winner's
        data is freed the moment the output leaves the cluster), so a
        straggling attempt still *executing* at that point re-inserts
        its spills into stores that are already empty.  Nothing can want
        the data -- the job is terminal -- so the whole manifest is
        retracted at exactly this attempt's number; a resubmission runs
        under a fresh job uid and cannot be touched by it."""
        by_dest: dict[str, list[str]] = {}
        for dest, sid, _ in value.get("manifest") or ():
            by_dest.setdefault(dest, []).append(sid)
        if not by_dest:
            return
        alive = set(self.coordinator.alive_ids())
        retracted = 0
        for dest, sids in by_dest.items():
            if dest not in alive:
                continue
            try:
                retracted += self.rt._call_worker(dest, "discard_spills", {
                    "app_id": jr.job.app_id, "spill_ids": sids,
                    "job_uid": jr.job_uid, "attempt": attempt.attempt_no,
                })
            except (WorkerLost, ClusterError):
                self.metrics.counter("sched.zombie_discard_failures").inc()
        if retracted:
            self.metrics.counter("sched.late_spills_retracted").inc(retracted)

    def _settle_failure(self, attempt: _Attempt, exc: Exception) -> None:
        attempt.settled = True
        self._inflight.discard(attempt)
        task = attempt.task
        jr = task.jr
        if attempt.zombie:
            jr.zombie_outstanding -= 1
            attempt.zombie = False
        self._release_any(attempt)
        if isinstance(exc, WorkerLost):
            # Death evidence; the task itself is rebuilt by the re-plan.
            self._note_death(exc)
            if not jr.live:
                self._maybe_cleanup(jr)
            return
        if jr.live:
            self._fail_job(jr, exc)
        self._maybe_cleanup(jr)

    def _settle_success(self, attempt: _Attempt, value: Any) -> None:
        attempt.settled = True
        self._inflight.discard(attempt)
        task = attempt.task
        jr = task.jr
        if not jr.live:
            # Cancelled, failed, or already finished: the value is not
            # needed.  But a lost race settling after the end-of-job
            # cleanup re-created its spills in stores the broadcast
            # already swept (attempt-number arbitration cannot reject a
            # push into an empty store), so the manifest is retracted
            # outright instead of dropped on the floor.
            if attempt.zombie:
                jr.zombie_outstanding -= 1
                attempt.zombie = False
                self.metrics.counter("sched.zombie_results").inc()
            self._release_any(attempt)
            if (jr.cleaned and attempt.method == "run_map"
                    and isinstance(value, dict)):
                self._retract_late_spills(jr, attempt, value)
            self._maybe_cleanup(jr)
            return
        if task.kind == "reduce":
            self._release(task)
            jr.reduce_results[task.wid] = reassemble_reduce(value)
            self._advance(jr)
            return
        if task.mode == "replay":
            self._replay_step_done(task, value)
            return
        if task.won or attempt.zombie:
            self._finish_zombie(attempt, value)
            return
        jr.map_times.observe(max(0.0, time.monotonic() - attempt.started_at))
        self._mark_won(task, attempt, value.get("manifest") or ())
        self._release_any(attempt)
        self._record_map(task, value, server=attempt.target,
                         attempt_no=attempt.attempt_no)

    def _replay_step_done(self, task: _Task, result: dict) -> None:
        jr = task.jr
        if not result["ok"]:
            # A spill fell out of oCache *and* the persisted store:
            # un-deliver what already landed and re-map instead.
            self._discard_partial_replay(jr, task)
            self.metrics.counter("cluster.replay_fallbacks").inc()
            task.mode = "map"
            self._issue_map(task)
            return
        dest, _ = task.groups[task.dest_idx]
        task.applied.append(dest)
        task.acc["spills"] += result["spills"]
        task.acc["bytes"] += result["bytes"]
        task.acc["hits"] += result["ocache_hits"]
        task.acc["misses"] += result["ocache_misses"]
        task.dest_idx += 1
        if task.dest_idx < len(task.groups):
            self._issue_replay_step(task)
            return
        self._finish_replay(task)

    def _finish_replay(self, task: _Task) -> None:
        self._release(task)
        self.metrics.counter("cluster.maps_replayed").inc()
        self._record_map(task, {
            "replayed": True,
            "spills": task.acc["spills"],
            "bytes_shuffled": task.acc["bytes"],
            "ocache_hits": task.acc["hits"],
            "ocache_misses": task.acc["misses"],
            "manifest": [list(e) for e in task.marker.entries],
        })

    def _discard_partial_replay(self, jr: _JobRun, task: _Task) -> None:
        """Best-effort un-delivery of a partially replayed map's spills."""
        groups = dict(task.groups)
        for dest in task.applied:
            try:
                self.rt._call_worker(dest, "discard_spills", {
                    "app_id": jr.job.app_id,
                    "spill_ids": [sid for sid, _ in groups[dest]],
                    "job_uid": jr.job_uid,
                })
            except (WorkerLost, ClusterError):
                self.metrics.counter("cluster.replay_discard_failures").inc()
        task.applied = []

    def _record_map(self, task: _Task, result: dict, server: str | None = None,
                    attempt_no: int = 0) -> None:
        jr = task.jr
        jr.tracker.record(task.desc, server or task.wid, result,
                          attempt=attempt_no)
        try:
            if result.get("replayed"):
                hook = self.rt.on_replay_complete
                if hook is not None:
                    hook(jr.tracker.replays)
            else:
                if jr.job.cache_intermediates:
                    self.coordinator.record_marker(CompletionMarker(
                        app_id=jr.job.app_id,
                        input_file=jr.job.input_file,
                        block_index=task.desc.index,
                        entries=tuple(tuple(e) for e in result["manifest"] or ()),
                    ))
                hook = self.rt.on_map_complete
                if hook is not None:
                    hook(jr.tracker.maps_run)
        except WorkerLost as lost:
            self._note_death(lost)
            return
        self._advance(jr)

    def _advance(self, jr: _JobRun) -> None:
        """Move a job forward when its current phase has fully landed."""
        if not jr.live or self._deaths:
            return
        if jr.phase == "map":
            # Zombies (lost races still limping home) hold slots but do
            # not gate the phase: the job moves on, their late results
            # are arbitrated by attempt number.
            if (len(jr.tracker.completed) == len(jr.tracker.blocks)
                    and not any(t.kind == "map" for t in jr.ready)
                    and jr.outstanding - jr.zombie_outstanding == 0):
                self._start_reduce(jr)
            return
        if (jr.phase == "reduce"
                and len(jr.reduce_results) == len(jr.reduce_alive)):
            self._finish_job(jr)

    def _start_reduce(self, jr: _JobRun) -> None:
        jr.phase = "reduce"
        jr.reduce_alive = self.coordinator.alive_ids()
        jr.reduce_results = {}
        jr.ready.extend(_Task(jr, "reduce", wid) for wid in jr.reduce_alive)

    def _finish_job(self, jr: _JobRun) -> None:
        output: dict[Any, Any] = {}
        reduced_on: list[str] = []
        for wid in jr.reduce_alive:  # merge order: alive order, not completion
            result = jr.reduce_results[wid]
            if result["pairs"] == 0:
                continue
            for k, v in result["output"].items():
                if k in output:
                    self._fail_job(jr, ClusterError(
                        f"intermediate key {k!r} reduced on two servers"
                    ))
                    return
                output[k] = v
            reduced_on.append(wid)
        self._cleanup(jr)
        stats = self._finalize_stats(jr.tracker, reduced_on)
        jr.handle._resolve(result=JobResult(
            app_id=jr.job.app_id, output=output, stats=stats
        ))
        self.metrics.counter("sched.jobs_completed").inc()
        self.metrics.gauge(f"sched.job.{jr.job_uid}.makespan_s").set(
            jr.handle.finished_at - jr.handle.submitted_at
        )
        self.metrics.gauge("sched.active_jobs").set(
            sum(1 for j in self._active if j.live)
        )

    def _finalize_stats(self, tracker: _MapTracker,
                        reduced_on: list[str]) -> JobStats:
        """Fold the tracker's *final* per-block outcomes into JobStats.

        On a failure-free run this is identical to counting at dispatch
        time, so sequential-equality of ``tasks_per_server`` is
        preserved; after failovers it reports the work that actually
        produced the output, with ``task_retries`` counting the completed
        maps that had to re-execute."""
        stats = JobStats(
            tasks_per_server={wid: 0 for wid in tracker.initial_alive}
        )
        for entry in tracker.completed.values():
            result = entry.result
            stats.spills += result["spills"]
            stats.spill_recombines += result.get("recombines", 0)
            stats.bytes_shuffled += result["bytes_shuffled"]
            stats.tasks_per_server[entry.server] = (
                stats.tasks_per_server.get(entry.server, 0) + 1
            )
            if result.get("replayed"):
                stats.maps_skipped_by_reuse += 1
                stats.ocache_hits += result["ocache_hits"]
                stats.ocache_misses += result["ocache_misses"]
                continue
            stats.map_tasks += 1
            if result["source"] == "icache":
                stats.icache_hits += 1
            else:
                stats.icache_misses += 1
                if result["source"] == "local":
                    stats.local_block_reads += 1
                else:
                    stats.remote_block_reads += 1
        for wid in reduced_on:
            stats.reduce_tasks += 1
            stats.tasks_per_server[wid] = stats.tasks_per_server.get(wid, 0) + 1
        stats.task_retries = tracker.reexecuted
        return stats

    # -- failure handling ---------------------------------------------------------------

    def _note_death(self, lost: WorkerLost) -> None:
        if lost.worker_id in self._dead_noted:
            return
        self._dead_noted.add(lost.worker_id)
        self._deaths.append(lost)

    def _process_deaths(self) -> None:
        """Fail over drained deaths, then re-plan every surviving job.

        Runs only with nothing in flight (the drain preserved every late
        success as a salvage candidate, like the legacy round drain).
        Each real death costs every live job one budget unit; a job out
        of budget fails alone, the others recover.
        """
        processed = False
        while self._deaths:
            lost = self._deaths.popleft()
            self._dead_noted.discard(lost.worker_id)
            if lost.worker_id not in self.coordinator.addresses:
                continue  # already failed over (duplicate evidence)
            # Every job that has touched the cluster pays: live active jobs
            # and deferred activations waiting at the queue head (their
            # budget was drawn before the death surfaced, so one spend
            # leaves exactly the remaining allowance the legacy in-place
            # spend-and-retry loop would).
            with self._lock:
                deferred = [j for j in self._queued if j.budget is not None]
            for jr in [j for j in self._active if j.live] + deferred:
                try:
                    jr.budget.spend(lost)
                except ClusterError as exc:
                    self._fail_job(jr, exc)
            with self._lock:
                anyone_left = (any(j.live for j in self._active)
                               or bool(self._queued))
            if not anyone_left:
                # Nobody left to recover for; mirror the legacy behavior
                # of raising out of the budget before touching the ring.
                continue
            self.rt._failover(lost.worker_id)
            processed = True
        if not processed:
            return
        for jr in [j for j in self._active if j.live]:
            try:
                self._replan(jr)
            except WorkerLost as exc:  # a cascade mid-replan: go around again
                self._note_death(exc)
                return
            self._advance(jr)

    def _replan(self, jr: _JobRun) -> None:
        """Salvage / doom / re-draw one job after a failover (legacy logic)."""
        alive = set(self.coordinator.alive_ids())
        tracker = jr.tracker
        doomed = [idx for idx, entry in tracker.completed.items()
                  if not entry.dests <= alive]
        salvaged = len(tracker.completed) - len(doomed)
        self.metrics.counter("failover.tasks_salvaged").inc(salvaged)
        self.metrics.counter("failover.tasks_reexecuted").inc(len(doomed))
        self.metrics.counter("cluster.tasks_reexecuted").inc(len(doomed))
        for idx in doomed:
            entry = tracker.completed.pop(idx)
            tracker.reexecuted += 1
            self._discard_stale_spills(jr, entry, alive)
        pending = [desc for desc in tracker.blocks
                   if desc.index not in tracker.completed]
        sched = self.coordinator.scheduler
        jr.ready = []
        with sched.at_zero_load():
            for desc in pending:
                a = sched.assign(hash_key=desc.key)
                jr.ready.append(_Task(jr, "map", a.server, desc=desc,
                                      wait_limit=a.wait_limit))
        # Any partial reduce wave is void: re-run doomed maps first, then
        # the whole wave re-issues on the post-failover membership.
        jr.phase = "map"
        jr.reduce_alive = []
        jr.reduce_results = {}

    def _discard_stale_spills(self, jr: _JobRun, entry: _MapOutcome,
                              alive: set) -> None:
        """Drop a doomed map's spills from its surviving destinations.

        Best-effort: the re-executed map's deterministic spill ids
        overwrite every stale spill anyway, so an unreachable destination
        is counted (``failover.discard_failures``) and skipped rather
        than cascading a second failover out of mere housekeeping."""
        by_dest: dict[str, list[str]] = {}
        for dest, spill_id, _ in entry.manifest:
            by_dest.setdefault(dest, []).append(spill_id)
        for dest, spill_ids in by_dest.items():
            if dest not in alive:
                continue
            try:
                self.rt._call_worker(dest, "discard_spills",
                                     {"app_id": jr.job.app_id,
                                      "spill_ids": spill_ids,
                                      "job_uid": jr.job_uid,
                                      "attempt": entry.attempt})
            except (WorkerLost, ClusterError):
                self.metrics.counter("failover.discard_failures").inc()

    def _fail_job(self, jr: _JobRun, exc: BaseException) -> None:
        if jr.handle.done():
            return
        jr.ready = []
        with self._lock:
            if jr in self._queued:
                self._queued.remove(jr)
                self.metrics.gauge("sched.queue_depth").set(len(self._queued))
        jr.handle._resolve(exception=exc)
        if isinstance(exc, JobCancelled):
            self.metrics.counter("sched.jobs_cancelled").inc()
        else:
            self.metrics.counter("sched.jobs_failed").inc()
        self.metrics.gauge("sched.active_jobs").set(
            sum(1 for j in self._active if j.live)
        )
        self._maybe_cleanup(jr)

    def _cancel_job(self, jr: _JobRun) -> None:
        if jr.handle.done():
            return
        self._fail_job(jr, JobCancelled(f"job {jr.job_uid!r} cancelled"))

    def _maybe_cleanup(self, jr: _JobRun) -> None:
        """A terminal job's slate clears once its last attempt drains."""
        if (jr.handle.done() and jr.activated and not jr.cleaned
                and jr.outstanding == 0):
            self._cleanup(jr)

    def _cleanup(self, jr: _JobRun) -> None:
        """Drop the job's in-flight intermediates on every worker.

        Failures are swallowed and counted (``cluster.cleanup_failures``):
        whoever missed the broadcast is either dead (its store died with
        it) or will shed the entries when the next job's start-of-attempt
        ``discard_job`` reaches it."""
        if jr.cleaned:
            return
        jr.cleaned = True
        try:
            self.rt._broadcast("discard_job", {"app_id": jr.job.app_id,
                                               "job_uid": jr.job_uid})
        except Exception:
            self.metrics.counter("cluster.cleanup_failures").inc()

    def _reap_finished(self) -> None:
        self._active = [jr for jr in self._active
                        if not (jr.handle.done() and jr.outstanding == 0)]

    def _abort_everything(self, exc: Exception) -> None:
        with self._lock:
            self._stopping = True
            stranded = list(self._queued)
            self._queued.clear()
            pending_ops = list(self._membership)
            self._membership.clear()
            self.metrics.gauge("sched.queue_depth").set(0)
        for _, _, fut in pending_ops:
            if fut.set_running_or_notify_cancel():
                fut.set_exception(exc)
        for jr in stranded:
            jr.handle._resolve(exception=exc)
        for jr in list(self._active):
            if not jr.handle.done():
                jr.handle._resolve(exception=exc)


class ClusterSession:
    """A context-managed cluster + job scheduler for many-job clients::

        with ClusterSession(workers=4) as session:
            session.upload("corpus.txt", data)
            handles = session.submit_many(jobs)
            results = [h.result() for h in handles]

    Wraps an existing runtime when given one (and then leaves its
    lifecycle to the caller); otherwise owns the runtime it creates.
    """

    def __init__(self, workers: int | Sequence[str] = 3,
                 config=None, scheduler: str = "laf",
                 runtime=None, policy: Optional[str] = None) -> None:
        from repro.cluster.runtime import ClusterRuntime

        self._owned = runtime is None
        self.runtime = runtime or ClusterRuntime(workers, config, scheduler)
        self.jobs = (JobScheduler(self.runtime, policy=policy)
                     if policy is not None else self.runtime.jobs)

    def upload(self, name: str, data: bytes, **kwargs: Any) -> None:
        self.runtime.upload(name, data, **kwargs)

    def submit(self, job: MapReduceJob, weight: float = 1.0) -> JobHandle:
        return self.jobs.submit(job, weight=weight)

    def submit_many(self, jobs: Sequence[MapReduceJob],
                    weight: float = 1.0) -> list[JobHandle]:
        return self.jobs.submit_many(jobs, weight=weight)

    def run(self, job: MapReduceJob) -> JobResult:
        return self.submit(job).result()

    def close(self) -> None:
        if self._owned:
            self.runtime.shutdown()

    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
