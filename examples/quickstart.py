#!/usr/bin/env python
"""Quickstart: word count on an in-process EclipseMR cluster.

Demonstrates the functional plane end to end: upload a corpus into the
DHT file system, run a MapReduce job under the LAF scheduler, and inspect
the cache statistics that make EclipseMR interesting.

Run:  python examples/quickstart.py
"""

from repro import EclipseMR
from repro.apps.workloads import pack_records, text_corpus
from repro.common.config import ClusterConfig, DFSConfig, CacheConfig
from repro.common.units import KB, MB


def main() -> None:
    config = ClusterConfig(
        num_nodes=8,
        rack_size=4,
        dfs=DFSConfig(block_size=16 * KB),
        cache=CacheConfig(capacity_per_server=4 * MB),
    )
    mr = EclipseMR(workers=8, scheduler="laf", config=config)

    # 1. Generate a deterministic corpus and upload it; the DHT file system
    #    splits it into blocks spread over the ring by hash key.
    lines = text_corpus(seed=42, num_words=20_000, vocab_size=200, zipf_a=1.4)
    mr.upload("corpus.txt", pack_records(lines, config.dfs.block_size))
    meta = mr.runtime.dfs.stat("corpus.txt")
    print(f"uploaded corpus.txt: {meta.size} bytes in {meta.num_blocks} blocks")
    spread = mr.runtime.dfs.stored_bytes_per_server()
    print("primary bytes per server:", {str(k): v for k, v in spread.items()})

    # 2. Run word count twice: the second run is served from iCache.
    def word_map(block: bytes):
        for word in block.decode().split():
            yield word, 1

    for run_no in (1, 2):
        result = mr.map_reduce(f"wc-{run_no}", "corpus.txt", word_map, lambda w, c: sum(c))
        s = result.stats
        print(
            f"run {run_no}: {s.map_tasks} map tasks, {s.reduce_tasks} reduce tasks, "
            f"iCache {s.icache_hits} hits / {s.icache_misses} misses"
        )

    top = sorted(result.output.items(), key=lambda kv: -kv[1])[:5]
    print("top words:", top)

    # 3. The LAF scheduler's hash key table after the workload.
    print("\nLAF hash key table (server, range start, range end):")
    for server, start, end in mr.scheduler.range_table():
        print(f"  {server}: [{start} ~ {end})  width={end - start}")


if __name__ == "__main__":
    main()
