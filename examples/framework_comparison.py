#!/usr/bin/env python
"""Regenerate the paper's headline comparison (Fig. 9) from the command line.

Runs the discrete-event performance model for EclipseMR, Hadoop and Spark
over the six evaluation applications and prints absolute and normalized
execution times.  Pass ``--fast`` for a smaller dataset.

Run:  python examples/framework_comparison.py [--fast]
"""

import argparse

from repro.experiments.fig9_frameworks import format_table, run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="quarter-size inputs")
    parser.add_argument("--blocks", type=int, default=None, help="override block count")
    args = parser.parse_args()

    blocks = args.blocks or (64 if args.fast else 256)
    print(f"simulating the 40-node testbed, {blocks} x 128 MB input blocks per app...\n")
    result = run(base_blocks=blocks)
    print(format_table(result))
    print(
        "\npaper shape: EclipseMR fastest except page rank (Spark ~15% ahead);"
        "\nkmeans ~3.5x and logreg ~2.5x faster than Spark; Hadoop slowest."
    )


if __name__ == "__main__":
    main()
