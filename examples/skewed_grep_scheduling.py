#!/usr/bin/env python
"""LAF vs delay scheduling under a skewed workload (the Fig. 7 story).

Runs the same stream of grep-like tasks -- whose input popularity follows
two merged normal distributions over the hash key space -- through the LAF
scheduler and the delay scheduler, then compares task balance and how the
LAF hash key ranges adapted.

Run:  python examples/skewed_grep_scheduling.py
"""

import numpy as np

from repro.common.config import SchedulerConfig
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.laf import LAFScheduler


def bimodal_stream(space: HashSpace, count: int, seed: int = 3) -> list[int]:
    rng = derive_rng(seed, "example-skew")
    half = count // 2
    keys = np.concatenate([
        rng.normal(0.30 * space.size, 0.05 * space.size, size=half),
        rng.normal(0.70 * space.size, 0.05 * space.size, size=count - half),
    ]).astype(np.int64) % space.size
    rng.shuffle(keys)
    return [int(k) for k in keys]


def drive(scheduler, keys):
    """Feed the task stream; tasks 'complete' immediately after assignment
    so the comparison isolates the placement decisions."""
    for key in keys:
        a = scheduler.assign(hash_key=key)
        scheduler.notify_start(a.server)
        scheduler.notify_finish(a.server)
    return scheduler


def main() -> None:
    space = HashSpace(1 << 20)
    servers = [f"worker-{i}" for i in range(8)]
    keys = bimodal_stream(space, count=4000)

    laf = drive(LAFScheduler(space, servers, SchedulerConfig(alpha=0.01, window_tasks=64)), keys)
    delay = drive(DelayScheduler(space, servers), keys)

    print("tasks per server (4000 bimodal-key tasks, 8 workers):")
    print(f"{'server':>12} | {'LAF':>6} | {'Delay':>6}")
    for s in servers:
        print(f"{s:>12} | {laf.assigned_counts[s]:>6} | {delay.assigned_counts[s]:>6}")
    print(f"{'stddev':>12} | {laf.assignment_stddev():>6.1f} | {delay.assignment_stddev():>6.1f}")
    print("\n(the paper reports tasks-per-slot stddev 4.07 for LAF vs 13.07 for delay)")

    print(f"\nLAF re-partitioned the hash key space {laf.repartition_count} times; final table:")
    for server, start, end in laf.range_table():
        width_pct = 100 * (end - start) / space.size
        print(f"  {server}: [{start:>8} ~ {end:>8})  {width_pct:5.1f}% of key space")
    print("\nnarrow ranges sit on the two popular key regions -- Fig. 3's mechanism")


if __name__ == "__main__":
    main()
