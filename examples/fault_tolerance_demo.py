#!/usr/bin/env python
"""Fault tolerance demo: task retry with intermediate reuse.

EclipseMR persists map-task intermediate results in the DHT file system
so a failed task's successor "can restart failed tasks and reuse the
intermediate results of the previous failed tasks" (paper §II-C).  This
example injects map-task failures and shows (1) the retried job still
produces exact results and (2) a re-submitted job skips the maps whose
intermediates were persisted.

Run:  python examples/fault_tolerance_demo.py
"""

from repro import EclipseMR, MapReduceJob
from repro.apps.workloads import pack_records, text_corpus
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig
from repro.common.units import KB, MB
from repro.mapreduce.runtime import FailureInjector


def word_map(block: bytes):
    for word in block.decode().split():
        yield word, 1


def main() -> None:
    config = ClusterConfig(
        num_nodes=6,
        rack_size=3,
        dfs=DFSConfig(block_size=8 * KB),
        cache=CacheConfig(capacity_per_server=4 * MB),
    )
    # Fail the first two attempts of map task 0 and one attempt of task 2.
    injector = FailureInjector({("wc", 0): 2, ("wc", 2): 1})
    mr = EclipseMR(workers=6, scheduler="laf", config=config, failure_injector=injector)

    lines = text_corpus(seed=5, num_words=5000, vocab_size=100)
    data = pack_records(lines, config.dfs.block_size)
    mr.upload("corpus.txt", data)
    expected_total = sum(len(l.split()) for l in lines)

    job = MapReduceJob(
        app_id="wc",
        input_file="corpus.txt",
        map_fn=word_map,
        reduce_fn=lambda w, c: sum(c),
        cache_intermediates=True,
    )
    result = mr.run(job)
    total = sum(result.output.values())
    print(f"injected failures: {injector.injected}, task retries: {result.stats.task_retries}")
    print(f"word total {total} == expected {expected_total}: {total == expected_total}")

    # Re-submit with reuse: every map is skipped, results identical.
    rerun = MapReduceJob(
        app_id="wc",
        input_file="corpus.txt",
        map_fn=word_map,
        reduce_fn=lambda w, c: sum(c),
        cache_intermediates=True,
        reuse_intermediates=True,
    )
    result2 = mr.run(rerun)
    print(
        f"\nre-submitted job: {result2.stats.maps_skipped_by_reuse} maps skipped "
        f"(of {result.stats.map_tasks}), {result2.stats.ocache_hits} oCache hits"
    )
    assert result2.output == result.output
    print("outputs identical -- intermediates reused instead of recomputed")


if __name__ == "__main__":
    main()
