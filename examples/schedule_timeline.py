#!/usr/bin/env python
"""Visualize a schedule: LAF vs delay task timelines under skew.

Runs the same skewed task stream through both schedulers on the simulated
cluster with task tracing enabled, then prints per-server Gantt charts.
The delay scheduler's static ranges pile tasks onto the hot servers
(long busy rows, idle neighbors, 5 s stalls); LAF's adaptive ranges fill
the cluster evenly.

Run:  python examples/schedule_timeline.py
"""

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout, skewed_task_keys
from repro.perfmodel.profiles import APP_PROFILES
from repro.perfmodel.trace import TaskTrace, gantt


def run_traced(scheduler: str):
    config = ClusterConfig(
        num_nodes=8,
        rack_size=4,
        map_slots_per_node=4,
        reduce_slots_per_node=4,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=2 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=32),
        page_cache_per_node=2 * GB,
    )
    engine = PerfEngine(config, eclipse_framework(scheduler))
    engine.trace = TaskTrace()
    blocks = dht_layout(engine.space, engine.ring, "input", 48, config.dfs.block_size)
    tasks = skewed_task_keys(blocks, 200, seed=9)
    timing = engine.run_job(SimJobSpec(app=APP_PROFILES["grep"], tasks=tasks, label=scheduler))
    return engine, timing


def main() -> None:
    for scheduler in ("delay", "laf"):
        engine, timing = run_traced(scheduler)
        trace = engine.trace
        print(f"\n===== {scheduler.upper()} scheduler =====")
        print(
            f"makespan {timing.makespan:.1f}s | reassignments {timing.reassignments} | "
            f"total queue wait {trace.total_wait():.0f}s | "
            f"tasks/slot stddev {timing.tasks_per_slot_stddev(4):.2f}"
        )
        print(gantt(trace, width=70))
    print(
        "\nThe delay rows show the hot servers saturated while others idle;"
        "\nLAF's adapted hash ranges spread the same tasks across all rows."
    )


if __name__ == "__main__":
    main()
