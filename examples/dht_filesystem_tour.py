#!/usr/bin/env python
"""A tour of the DHT file system: placement, routing, failure recovery.

Walks through the paper's §II-A mechanics on a 6-server ring (the Fig. 1
layout): decentralized metadata, block spreading, one-hop finger tables,
and surviving a server crash via neighbor replicas.

Run:  python examples/dht_filesystem_tour.py
"""

from repro.common.config import DFSConfig
from repro.common.hashing import HashSpace
from repro.dfs.fault import recover_from_failure
from repro.dfs.filesystem import DHTFileSystem
from repro.dht.finger import RoutingTable


def main() -> None:
    # Recreate Fig. 1's six servers; positions come from hashing their ids.
    fs = DHTFileSystem(list("ABCDEF"), DFSConfig(block_size=64, replication=2))

    print("ring order:", fs.ring.nodes)
    for node in fs.ring.nodes:
        r = fs.ring.range_of(node)
        print(f"  server {node}: owns [{r.start} ~ {r.end})")

    # Upload a file: metadata goes to the owner of hash(name); blocks spread.
    payload = bytes(range(256)) * 3
    fs.upload("dataset.bin", payload, owner="alice")
    print(f"\nuploaded dataset.bin ({len(payload)} bytes)")
    print("metadata owner:", fs.metadata_owner("dataset.bin"))
    for desc, holders in fs.block_locations("dataset.bin"):
        print(f"  block {desc.index}: key={desc.key} primary+replicas on {holders}")

    # Any server can route to any block with one hop (complete finger table).
    routing = RoutingTable(fs.ring, one_hop=True)
    key = fs.space.block_key("dataset.bin", 0)
    route = routing.route("A", key)
    print(f"\nrouting block 0 (key {key}) from server A: {route.hops} ({route.hop_count} hop)")

    chord = RoutingTable(fs.ring, one_hop=False)
    print(f"classic Chord routing path: {chord.route('A', key).hops}")

    # Crash the primary holder of block 0 and recover.
    victim = fs.block_owner("dataset.bin", 0)
    print(f"\ncrashing server {victim} (primary of block 0)...")
    report = recover_from_failure(fs, victim)
    print(
        f"recovery: {report.blocks_promoted} replicas promoted, "
        f"{report.blocks_recopied} copies re-made, fully_recovered={report.fully_recovered}"
    )
    assert fs.read("dataset.bin", user="alice") == payload
    print("dataset.bin reads back intact after the crash")


if __name__ == "__main__":
    main()
