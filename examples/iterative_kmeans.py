#!/usr/bin/env python
"""Iterative k-means with oCache-backed iteration outputs.

Shows the paper's §II-C iterative story: each iteration's centroids are
cached in oCache and persisted to the DHT file system, so a *restarted*
driver resumes from the last completed iteration instead of recomputing.

Run:  python examples/iterative_kmeans.py
"""

import numpy as np

from repro import EclipseMR
from repro.apps.kmeans import kmeans_driver
from repro.apps.workloads import pack_records, points
from repro.common.config import CacheConfig, ClusterConfig, DFSConfig
from repro.common.units import KB, MB


def main() -> None:
    config = ClusterConfig(
        num_nodes=6,
        rack_size=3,
        dfs=DFSConfig(block_size=8 * KB),
        cache=CacheConfig(capacity_per_server=4 * MB),
    )
    mr = EclipseMR(workers=6, scheduler="laf", config=config)

    records, true_centers = points(seed=7, num_points=3000, dim=2, num_clusters=4, spread=0.03)
    mr.upload("points.csv", pack_records(records, config.dfs.block_size))
    print(f"uploaded {len(records)} points; true centers:\n{np.round(true_centers, 3)}")

    init = np.random.default_rng(0).random((4, 2))
    driver = kmeans_driver(mr, "points.csv", init, iterations=8, tolerance=1e-5)
    final = np.asarray(driver.run(init))
    print(f"\nconverged after {driver.iterations_run} iterations:")
    print(np.round(final, 3))

    # Match each found centroid to its nearest true center.
    errs = [float(np.min(np.linalg.norm(true_centers - c, axis=1))) for c in final]
    print("distance to nearest true center per centroid:", np.round(errs, 4))

    # Restart: a fresh driver resumes from the persisted iteration outputs.
    driver2 = kmeans_driver(mr, "points.csv", init, iterations=8, tolerance=1e-5)
    final2 = driver2.run(init)
    print(
        f"\nrestarted driver: {driver2.iterations_resumed} iterations resumed from "
        f"oCache/DHT-FS, {driver2.iterations_run} recomputed"
    )
    assert np.allclose(final, final2)
    print("restart reproduced the same centroids, without re-running the jobs")


if __name__ == "__main__":
    main()
