#!/usr/bin/env python
"""Kill a node mid-job on the simulated cluster and watch the recovery.

Runs the same wordcount twice on the discrete-event cluster -- once
undisturbed, once with a node crashing during the map phase -- and shows
the task restarts, the replica-fallback reads, and the makespan cost.
Then prices a full DHT-FS re-replication after the failure.

Run:  python examples/failure_injection.py
"""

from repro.common.config import CacheConfig, ClusterConfig, DFSConfig, SchedulerConfig
from repro.common.units import GB, MB
from repro.experiments.supp_recovery import simulate_recovery_time
from repro.perfmodel.engine import PerfEngine, SimJobSpec
from repro.perfmodel.framework import eclipse_framework
from repro.perfmodel.placement import dht_layout
from repro.perfmodel.profiles import APP_PROFILES
from repro.perfmodel.trace import TaskTrace, gantt


def build_engine():
    config = ClusterConfig(
        num_nodes=8,
        rack_size=4,
        map_slots_per_node=4,
        reduce_slots_per_node=4,
        dfs=DFSConfig(block_size=128 * MB),
        cache=CacheConfig(capacity_per_server=2 * GB, icache_fraction=1.0),
        scheduler=SchedulerConfig(window_tasks=32),
        page_cache_per_node=2 * GB,
    )
    engine = PerfEngine(config, eclipse_framework("laf"))
    engine.trace = TaskTrace()
    blocks = dht_layout(engine.space, engine.ring, "input", 48, config.dfs.block_size)
    return engine, SimJobSpec(app=APP_PROFILES["wordcount"], tasks=blocks, label="wc")


def main() -> None:
    engine, spec = build_engine()
    baseline = engine.run_job(spec)
    print(f"baseline run: makespan {baseline.makespan:.1f}s, no failures")
    # Crash the busiest server while its first wave is surely running.
    victim = max(baseline.tasks_per_server, key=baseline.tasks_per_server.get)

    engine, spec = build_engine()
    engine.schedule_failure(node=victim, at=2.0)
    timing = engine.run_job(spec)
    print(
        f"\nwith node {victim} crashing at t=2s: makespan {timing.makespan:.1f}s "
        f"({timing.makespan - baseline.makespan:+.1f}s), "
        f"{timing.task_restarts} tasks restarted on survivors"
    )
    print(gantt(engine.trace, width=66))
    print(f"  (node {victim}'s row goes dark after the crash; its work reappears elsewhere)")

    print("\npricing the DHT file system repair (re-replication) after one failure:")
    for nodes in (10, 20, 40):
        t, recopied = simulate_recovery_time(nodes, data_blocks=160)
        print(
            f"  {nodes:>2} nodes: {recopied / (1 << 20):7.0f} MB recopied "
            f"in {t:5.1f}s (paper §II-A: successor takeover + neighbor replicas)"
        )


if __name__ == "__main__":
    main()
