"""Tests for partitions, histograms, and the LAF / delay / fair schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import SchedulerConfig
from repro.common.errors import SchedulingError
from repro.common.hashing import HashSpace
from repro.common.rng import derive_rng
from repro.dht.ring import ConsistentHashRing
from repro.scheduler.base import Scheduler
from repro.scheduler.delay import DelayScheduler
from repro.scheduler.fair import FairScheduler
from repro.scheduler.histogram import AccessHistogram, MovingAverageDistribution
from repro.scheduler.laf import LAFScheduler
from repro.scheduler.partition import SpacePartition


class TestSpacePartition:
    def test_figure3_layout(self):
        """The paper's Fig. 3 table: 5 servers over [0, 140)."""
        space = HashSpace(140)
        p = SpacePartition(
            space, [1, 2, 3, 4, 5], [0, 35, 47, 91, 102, 140]
        )
        # "new task T1 (HK=43) ... scheduled in server 2"
        assert p.owner_of(43) == 2
        # "new task T2 (HK=69) ... scheduled in server 3"
        assert p.owner_of(69) == 3
        assert p.segment_of(2) == (35, 47)
        assert p.width_of(4) == 11

    def test_uniform(self):
        p = SpacePartition.uniform(HashSpace(100), ["a", "b", "c", "d"])
        assert p.boundaries == [0, 25, 50, 75, 100]
        assert p.owner_of(0) == "a"
        assert p.owner_of(99) == "d"

    def test_degenerate_ranges_hot_key(self):
        """The paper's extreme example: all mass on key 40 gives ranges
        [0,40) [40,40) [40,40) [40,140); every pinned server is a candidate."""
        space = HashSpace(140)
        p = SpacePartition(space, ["w1", "w2", "w3", "w4"], [0, 40, 40, 40, 140])
        assert p.owner_of(40) == "w4"
        assert p.owner_of(39) == "w1"
        cands = p.candidates(40)
        assert set(cands) == {"w2", "w3", "w4"}
        assert p.candidates(39) == ["w1"]

    def test_validation(self):
        space = HashSpace(100)
        with pytest.raises(SchedulingError):
            SpacePartition(space, [], [0, 100])
        with pytest.raises(SchedulingError):
            SpacePartition(space, ["a"], [0, 50])  # wrong boundary count
        with pytest.raises(SchedulingError):
            SpacePartition(space, ["a", "b"], [5, 50, 100])  # must start at 0
        with pytest.raises(SchedulingError):
            SpacePartition(space, ["a", "b"], [0, 60, 50])  # decreasing

    def test_as_table(self):
        p = SpacePartition.uniform(HashSpace(100), ["a", "b"])
        assert p.as_table() == [("a", 0, 50), ("b", 50, 100)]


@given(
    n_servers=st.integers(1, 10),
    cuts=st.lists(st.integers(0, 999), max_size=9),
    key=st.integers(0, 999),
)
@settings(max_examples=100)
def test_partition_owner_total_function(n_servers, cuts, key):
    """Every key has exactly one owner whose segment truly contains it."""
    space = HashSpace(1000)
    cuts = sorted(cuts)[: n_servers - 1]
    while len(cuts) < n_servers - 1:
        cuts.append(1000)
    bounds = [0] + sorted(cuts) + [1000]
    servers = [f"s{i}" for i in range(n_servers)]
    p = SpacePartition(space, servers, bounds)
    owner = p.owner_of(key)
    start, end = p.segment_of(owner)
    assert start <= key < end


class TestAccessHistogram:
    def test_record_spreads_kernel_mass(self):
        h = AccessHistogram(HashSpace(1000), num_bins=100, bandwidth=5)
        h.record(500)
        assert h.counts.sum() == pytest.approx(1.0)
        assert (h.counts > 0).sum() == 5
        assert h.size == 1

    def test_bandwidth_one_is_plain_histogram(self):
        h = AccessHistogram(HashSpace(1000), num_bins=100, bandwidth=1)
        h.record(505)
        assert h.counts[50] == pytest.approx(1.0)

    def test_kernel_wraps_at_edges(self):
        h = AccessHistogram(HashSpace(1000), num_bins=100, bandwidth=5)
        h.record(0)  # bin 0; kernel spills into the top bins
        assert h.counts[98:].sum() > 0
        assert h.counts.sum() == pytest.approx(1.0)

    def test_reset(self):
        h = AccessHistogram(HashSpace(1000), num_bins=10, bandwidth=1)
        h.record_many([5, 105, 205])
        h.reset()
        assert h.size == 0 and h.counts.sum() == 0

    def test_pdf_uniform_when_empty(self):
        h = AccessHistogram(HashSpace(1000), num_bins=10, bandwidth=1)
        assert np.allclose(h.pdf(), 0.1)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            AccessHistogram(HashSpace(100), num_bins=0)
        with pytest.raises(SchedulingError):
            AccessHistogram(HashSpace(100), num_bins=10, bandwidth=11)


class TestMovingAverage:
    def test_alpha_one_tracks_current_window(self):
        space = HashSpace(1000)
        ma = MovingAverageDistribution(space, num_bins=100, alpha=1.0)
        h = AccessHistogram(space, num_bins=100, bandwidth=1)
        h.record_many([10] * 50)
        ma.merge(h)
        assert ma.ma[1] == pytest.approx(1.0)

    def test_alpha_zero_never_moves(self):
        space = HashSpace(1000)
        ma = MovingAverageDistribution(space, num_bins=100, alpha=0.0)
        before = ma.ma.copy()
        h = AccessHistogram(space, num_bins=100, bandwidth=1)
        h.record_many([10] * 50)
        ma.merge(h)
        assert np.allclose(ma.ma, before)

    def test_cdf_monotone_and_normalized(self):
        space = HashSpace(1000)
        ma = MovingAverageDistribution(space, num_bins=64, alpha=0.5)
        h = AccessHistogram(space, num_bins=64, bandwidth=4)
        rng = derive_rng(0, "cdf")
        h.record_many(rng.integers(0, 1000, size=200).tolist())
        ma.merge(h)
        cdf = ma.cdf()
        assert cdf[0] == 0.0 and cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_partition_uniform_data_gives_equal_ranges(self):
        space = HashSpace(1000)
        ma = MovingAverageDistribution(space, num_bins=100, alpha=1.0)
        p = ma.partition(["a", "b", "c", "d"])  # uniform prior, no data
        widths = [p.width_of(s) for s in "abcd"]
        assert all(abs(w - 250) <= 10 for w in widths)

    def test_partition_narrows_popular_ranges(self):
        """The core LAF behaviour (paper Fig. 3): popular keys near 40 and 90
        (scaled into [0, 1400)) make their owners' ranges narrow."""
        space = HashSpace(1400)
        ma = MovingAverageDistribution(space, num_bins=140, alpha=1.0)
        h = AccessHistogram(space, num_bins=140, bandwidth=8)
        rng = derive_rng(1, "fig3")
        keys = np.concatenate([
            rng.normal(400, 60, size=3000),
            rng.normal(900, 40, size=3000),
        ]).astype(int) % 1400
        h.record_many(keys.tolist())
        ma.merge(h)
        p = ma.partition([1, 2, 3, 4, 5])
        widths = [p.width_of(s) for s in (1, 2, 3, 4, 5)]
        # The middle servers sit on the two modes: strictly narrower ranges
        # than the flanks; every range has ~equal probability by construction.
        assert widths[1] < widths[0]
        assert widths[3] < widths[4] or widths[3] < widths[0]
        hot_owner = p.owner_of(900)
        cold_width = max(widths)
        assert p.width_of(hot_owner) < cold_width

    def test_partition_probability_equal(self):
        """Each assigned range carries ~1/n of the smoothed PDF mass."""
        space = HashSpace(10_000)
        ma = MovingAverageDistribution(space, num_bins=500, alpha=1.0)
        h = AccessHistogram(space, num_bins=500, bandwidth=8)
        rng = derive_rng(2, "equalprob")
        keys = (rng.normal(3000, 500, size=5000).astype(int)) % 10_000
        h.record_many(keys.tolist())
        ma.merge(h)
        n = 5
        p = ma.partition([f"s{i}" for i in range(n)])
        cdf = ma.cdf()
        edges = np.linspace(0, 10_000, 501)
        for server in p.servers:
            start, end = p.segment_of(server)
            mass = np.interp(end, edges, cdf) - np.interp(start, edges, cdf)
            assert mass == pytest.approx(1 / n, abs=0.03)


class _DummyScheduler(Scheduler):
    def assign(self, hash_key=None, locations=None):
        raise NotImplementedError


class TestSchedulerBase:
    def test_load_tracking(self):
        s = _DummyScheduler(["a", "b"])
        s.notify_start("a")
        assert s.load_of("a") == 1
        s.notify_finish("a")
        assert s.load_of("a") == 0
        with pytest.raises(SchedulingError):
            s.notify_finish("a")

    def test_least_loaded_stable_tiebreak(self):
        s = _DummyScheduler(["a", "b", "c"])
        assert s.least_loaded(["c", "b"]) == "b"
        s.notify_start("b")
        assert s.least_loaded(["c", "b"]) == "c"

    def test_unknown_server_rejected(self):
        s = _DummyScheduler(["a"])
        with pytest.raises(SchedulingError):
            s.notify_start("zz")

    def test_empty_servers_rejected(self):
        with pytest.raises(SchedulingError):
            _DummyScheduler([])


class TestLAFScheduler:
    def _laf(self, n=4, space_size=1 << 16, **cfg):
        space = HashSpace(space_size)
        servers = [f"s{i}" for i in range(n)]
        config = SchedulerConfig(**{"window_tasks": 32, "num_bins": 256, **cfg})
        return LAFScheduler(space, servers, config), space

    def test_same_key_same_server(self):
        laf, space = self._laf()
        key = space.key_of("block-7")
        first = laf.assign(hash_key=key).server
        for _ in range(10):
            assert laf.assign(hash_key=key).server == first

    def test_requires_hash_key(self):
        laf, _ = self._laf()
        with pytest.raises(SchedulingError):
            laf.assign()

    def test_no_wait_limit(self):
        laf, space = self._laf()
        assert laf.assign(hash_key=123).wait_limit is None

    def test_repartitions_every_window(self):
        laf, space = self._laf(window_tasks=16)
        rng = derive_rng(3, "laf")
        for key in rng.integers(0, space.size, size=64).tolist():
            laf.assign(hash_key=int(key))
        assert laf.repartition_count == 4

    def test_skewed_workload_balances_assignments(self):
        """Zipf-like skew: LAF spreads tasks far more evenly than a static
        partition would."""
        laf, space = self._laf(n=8, space_size=1 << 16, window_tasks=64, alpha=0.5)
        rng = derive_rng(4, "skew")
        # 80% of accesses in 5% of the key space.
        hot = rng.integers(0, space.size // 20, size=1600)
        cold = rng.integers(0, space.size, size=400)
        keys = np.concatenate([hot, cold])
        rng.shuffle(keys)
        for key in keys.tolist():
            a = laf.assign(hash_key=int(key))
            laf.notify_start(a.server)
            laf.notify_finish(a.server)
        counts = np.array(list(laf.assigned_counts.values()), dtype=float)
        # Static uniform ranges would send ~80% to one server
        # (cv ~ 2.6); LAF must be dramatically flatter.
        cv = counts.std() / counts.mean()
        assert cv < 0.9

    def test_hot_single_key_spreads_over_servers(self):
        """Paper §II-E extreme case: one key hogging the workload ends up
        shared by multiple workers via degenerate ranges."""
        laf, space = self._laf(n=4, window_tasks=32, alpha=1.0, kde_bandwidth=1)
        key = space.size // 2
        servers_used = set()
        for _ in range(300):
            a = laf.assign(hash_key=key)
            servers_used.add(a.server)
            laf.notify_start(a.server)
            laf.notify_finish(a.server)
        assert len(servers_used) >= 2

    def test_range_table_covers_space(self):
        laf, space = self._laf()
        table = laf.range_table()
        assert table[0][1] == 0
        assert table[-1][2] == space.size


class TestDelayScheduler:
    def test_static_uniform_partition(self):
        space = HashSpace(1000)
        d = DelayScheduler(space, ["a", "b"], SchedulerConfig())
        assert d.assign(hash_key=10).server == "a"
        assert d.assign(hash_key=510).server == "b"

    def test_wait_limit_is_configured_delay(self):
        space = HashSpace(1000)
        d = DelayScheduler(space, ["a", "b"], SchedulerConfig(delay_wait=5.0))
        assert d.assign(hash_key=10).wait_limit == 5.0

    def test_aligned_with_ring(self):
        space = HashSpace(60)
        ring = ConsistentHashRing(space)
        for name, pos in [("A", 5), ("B", 15), ("C", 26)]:
            ring.add_node(name, pos)
        d = DelayScheduler(space, ["A", "B", "C"], ring=ring)
        assert d.assign(hash_key=10).server == "B"  # B owns [5, 15)
        assert d.assign(hash_key=59).server == "A"

    def test_ring_must_contain_servers(self):
        space = HashSpace(60)
        ring = ConsistentHashRing(space)
        ring.add_node("A", 5)
        with pytest.raises(SchedulingError):
            DelayScheduler(space, ["A", "B"], ring=ring)

    def test_static_ranges_never_adapt(self):
        space = HashSpace(1000)
        d = DelayScheduler(space, ["a", "b"], SchedulerConfig())
        for _ in range(500):
            d.assign(hash_key=10)  # hammer one key
        assert d.assigned_counts["a"] == 500
        assert d.assigned_counts["b"] == 0

    def test_reassign_goes_least_loaded_without_wait(self):
        space = HashSpace(1000)
        d = DelayScheduler(space, ["a", "b"], SchedulerConfig())
        d.notify_start("a")
        fallback = d.reassign()
        assert fallback.server == "b"
        assert fallback.wait_limit is None

    def test_requires_hash_key(self):
        d = DelayScheduler(HashSpace(1000), ["a"])
        with pytest.raises(SchedulingError):
            d.assign()


class TestFairScheduler:
    def test_prefers_local(self):
        f = FairScheduler(["a", "b", "c"])
        a = f.assign(locations=["b"])
        assert a.server == "b" and a.reason == "node-local"
        assert f.local_assignments == 1

    def test_gives_up_locality_when_overloaded(self):
        f = FairScheduler(["a", "b"], locality_slack=1)
        for _ in range(3):
            f.notify_start("b")
        a = f.assign(locations=["b"])
        assert a.server == "a"
        assert f.remote_assignments == 1

    def test_rack_preference(self):
        rack = {"a": 0, "b": 0, "c": 1}.__getitem__
        f = FairScheduler(["a", "b", "c"], rack_of=rack, locality_slack=10)
        f.notify_start("b")
        f.notify_start("b")  # local server loaded but within slack via rack
        a = f.assign(locations=["b"])
        # node-local b is within slack (load 2 <= 0 + 10) so still chosen
        assert a.server == "b"

    def test_no_locations_least_loaded(self):
        f = FairScheduler(["a", "b"])
        f.notify_start("a")
        assert f.assign().server == "b"

    def test_unknown_locations_ignored(self):
        f = FairScheduler(["a", "b"])
        a = f.assign(locations=["zz"])
        assert a.server in ("a", "b")

    def test_assignment_stddev(self):
        f = FairScheduler(["a", "b"])
        for _ in range(10):
            a = f.assign()
            f.notify_start(a.server)  # tasks stay running: load alternates
        assert f.assignment_stddev() == pytest.approx(0.0)
        assert f.assigned_counts == {"a": 5, "b": 5}
